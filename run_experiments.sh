#!/bin/sh
# Regenerates every table/figure of the paper (plus the ablation and
# generality experiments) into results/. Takes ~30 minutes; run on an
# otherwise idle machine for clean timing.
set -e
cargo build --release -p spl-bench
mkdir -p results
for b in table1 fig2 fig3 fig5 fig6 codesize ablation transforms; do
  echo "== $b =="
  ./target/release/$b > results/$b.txt
done
echo "== fig4 =="
./target/release/fig4 --max-log2 18 > results/fig4.txt
echo "done; see results/"
