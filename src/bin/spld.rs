//! `spld` — the transform-serving daemon.
//!
//! Serves complex DFTs over a length-prefixed framed protocol on a
//! Unix socket (or stdin/stdout with `--stdio`), keeping wisdom,
//! resolved VM programs, and native kernels warm across requests and —
//! through the state directory — across restarts. See `docs/SPLD.md`
//! for the protocol and operational semantics.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use spl::serve::{ChaosConfig, Server, ServerConfig};

const USAGE: &str = "spld - fault-tolerant transform-serving daemon

usage: spld --socket <path> [options]
       spld --stdio [options]

transport:
  --socket <path>   listen on a Unix domain socket at <path>
  --stdio           serve exactly one session over stdin/stdout

serving state:
  --state-dir <dir> kernel cache + plan journal (restarts come back warm)
  --wisdom <file>   preload searched plans (splsearch --wisdom-out format)
  --wisdom-db <dir> preload the cross-run wisdom database (splsearch
                    --wisdom-db); the W control verb re-reads it live

capacity:
  --workers <n>         worker threads (default 2)
  --queue-cap <n>       admission queue bound; beyond it requests get
                        an explicit OVERLOADED reply (default 64)
  --batch-max <n>       max same-size requests fused into one
                        I_m (x) A dispatch (default 16; 1 disables)
  --batch-window-ms <n> how long a lone request waits for same-size
                        company before dispatching (default 0)
  --max-size <n>        largest servable transform size (default 65536)
  --no-native           serve from the VM only (skip native kernels)

chaos (deterministic fault injection, for soak testing):
  --chaos-seed <n>            seed for the injection stream
  --chaos-kernel-fault <p>    probability a native run simulates a crash
  --chaos-latency-p <p>       probability a request is delayed
  --chaos-latency-ms <n>      the injected delay (default 20)
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("spld: {msg}");
    eprintln!("run with --help for usage");
    ExitCode::from(2)
}

struct Options {
    socket: Option<PathBuf>,
    stdio: bool,
    config: ServerConfig,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        socket: None,
        stdio: false,
        config: ServerConfig::default(),
    };
    let mut chaos = ChaosConfig::default();
    let mut chaos_used = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--help" | "-h" => return Ok(None),
            "--socket" => opts.socket = Some(PathBuf::from(value("--socket")?)),
            "--stdio" => opts.stdio = true,
            "--state-dir" => opts.config.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--wisdom" => opts.config.wisdom = Some(PathBuf::from(value("--wisdom")?)),
            "--wisdom-db" => {
                opts.config.wisdom_db = Some(PathBuf::from(value("--wisdom-db")?));
            }
            "--workers" => opts.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue-cap" => {
                opts.config.queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?;
            }
            "--batch-max" => {
                opts.config.batch_max = parse_num(&value("--batch-max")?, "--batch-max")?;
            }
            "--batch-window-ms" => {
                let ms: u64 = parse_num(&value("--batch-window-ms")?, "--batch-window-ms")?;
                opts.config.batch_window = Duration::from_millis(ms);
            }
            "--max-size" => opts.config.max_size = parse_num(&value("--max-size")?, "--max-size")?,
            "--no-native" => opts.config.native = false,
            "--chaos-seed" => {
                chaos.seed = parse_num(&value("--chaos-seed")?, "--chaos-seed")?;
                chaos_used = true;
            }
            "--chaos-kernel-fault" => {
                chaos.p_kernel_fault =
                    parse_prob(&value("--chaos-kernel-fault")?, "--chaos-kernel-fault")?;
                chaos_used = true;
            }
            "--chaos-latency-p" => {
                chaos.p_latency = parse_prob(&value("--chaos-latency-p")?, "--chaos-latency-p")?;
                chaos_used = true;
            }
            "--chaos-latency-ms" => {
                let ms: u64 = parse_num(&value("--chaos-latency-ms")?, "--chaos-latency-ms")?;
                chaos.latency = Duration::from_millis(ms);
                chaos_used = true;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if chaos_used {
        opts.config.chaos = Some(chaos);
    }
    match (&opts.socket, opts.stdio) {
        (None, false) => Err("one of --socket or --stdio is required".into()),
        (Some(_), true) => Err("--socket and --stdio are mutually exclusive".into()),
        _ => Ok(Some(opts)),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: bad value {s:?}"))
}

fn parse_prob(s: &str, flag: &str) -> Result<f64, String> {
    let p: f64 = parse_num(s, flag)?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("{flag}: probability {s} outside [0, 1]"));
    }
    Ok(p)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            spl::telemetry::out!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => return fail(&msg),
    };
    let server = match Server::new(opts.config) {
        Ok(server) => server,
        Err(e) => return fail(&e.to_string()),
    };
    if opts.stdio {
        let mut stdin = std::io::stdin().lock();
        let mut stdout = std::io::stdout().lock();
        server.serve_stream(&mut stdin, &mut stdout);
        return ExitCode::SUCCESS;
    }
    let socket = opts.socket.expect("validated by parse_args");
    match server.serve_unix(&socket) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("serving {}: {e}", socket.display())),
    }
}
