//! `splsearch` — the SPIRAL-style FFT plan search as a command-line
//! tool.
//!
//! Runs the paper's dynamic-programming search (small sizes by
//! Equation 10, large sizes by k-best binary splits) under a
//! fault-tolerant evaluation chain, and prints the winning plans as
//! wisdom text. With `--journal` the search persists every completed
//! size to a crash-safe journal and resumes from it after a kill; with
//! `--faulty` it injects deterministic faults to exercise the
//! degradation path end-to-end.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use spl::search::{
    large_search_journaled, large_search_traced, small_search_journaled, small_search_traced,
    Evaluator, FaultyEvaluator, MeasuredEvaluator, NativeEvaluator, OpCountEvaluator,
    ResilientEvaluator, SearchConfig, SizeResult,
};
use spl::telemetry::{RunReport, Telemetry};

const USAGE: &str = "\
usage: splsearch [options]

  --max-log <k>      search FFT sizes 2^1 ... 2^k (default 6)
  --leaf-max <n>     largest leaf transform / small-search boundary
                     (default 64, as in the paper)
  --keep <k>         k-best plans kept per large size (default 3)
  -B <n>             unroll threshold handed to the compiler (default 64)
  --eval resilient|native|vm|opcount
                     cost evaluator (default resilient: native timing,
                     degrading per candidate to VM timing, then to the
                     operation-count model)
  --min-time <ms>    measurement budget per candidate (default 10)
  --eval-timeout <s> sandbox timeout per candidate kernel (default 30)
  --no-verify        skip dense-reference verification of candidates
  --journal <file>   crash-safe wisdom journal: resume completed sizes
                     from it, append new ones as they finish (large-size
                     records go to <file>.large)
  --faulty <seed>    inject deterministic faults at the primary
                     evaluation tier, degrading failed candidates to the
                     operation-count model
  --fault-rate <p>   total injected-fault probability (default 0.1)
  --wisdom-out <file>
                     also write the winners as wisdom text to <file>
  --stats            print search telemetry to stderr
  --trace-json <file>
                     write the telemetry run report to <file> as JSON
  -h, --help         print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("splsearch: {msg}");
    ExitCode::FAILURE
}

/// The human-readable `--stats` table (same shape as `splc --stats`).
fn render_stats(tel: &Telemetry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !tel.spans().is_empty() {
        let _ = writeln!(out, "phase timings:");
        for s in tel.spans() {
            let _ = writeln!(
                out,
                "  {:<36} {:>12.1} us  ({} call{})",
                s.name,
                s.wall_ns as f64 / 1e3,
                s.calls,
                if s.calls == 1 { "" } else { "s" }
            );
        }
    }
    if !tel.counters().is_empty() {
        let _ = writeln!(out, "search counters:");
        for c in tel.counters() {
            let _ = writeln!(out, "  {:<36} {:>12}", c.name, c.value);
        }
    }
    if !tel.metrics().is_empty() {
        let _ = writeln!(out, "metrics:");
        for (name, value) in tel.metrics() {
            let _ = writeln!(out, "  {name:<36} {value:>12.6}");
        }
    }
    out
}

struct Options {
    max_log: u32,
    config: SearchConfig,
    eval: String,
    min_time: Duration,
    eval_timeout: Duration,
    verify: bool,
    journal: Option<PathBuf>,
    faulty: Option<u64>,
    fault_rate: f64,
    wisdom_out: Option<String>,
    stats: bool,
    trace_json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_log: 6,
            config: SearchConfig::default(),
            eval: "resilient".to_string(),
            min_time: Duration::from_millis(10),
            eval_timeout: Duration::from_secs(30),
            verify: true,
            journal: None,
            faulty: None,
            fault_rate: 0.1,
            wisdom_out: None,
            stats: false,
            trace_json: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-log" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if (1..=24).contains(&k) => opts.max_log = k,
                _ => return Err("--max-log requires an integer in 1..=24".into()),
            },
            "--leaf-max" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n.is_power_of_two() && n >= 2 => opts.config.leaf_max = n,
                _ => return Err("--leaf-max requires a power of two >= 2".into()),
            },
            "--keep" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if k >= 1 => opts.config.keep = k,
                _ => return Err("--keep requires an integer >= 1".into()),
            },
            "-B" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.config.unroll_threshold = n,
                None => return Err("-B requires an integer".into()),
            },
            "--eval" => match it.next().map(String::as_str) {
                Some(e @ ("resilient" | "native" | "vm" | "opcount")) => opts.eval = e.to_string(),
                _ => return Err("--eval requires resilient, native, vm, or opcount".into()),
            },
            "--min-time" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => opts.min_time = Duration::from_millis(ms),
                None => return Err("--min-time requires milliseconds".into()),
            },
            "--eval-timeout" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.eval_timeout = Duration::from_secs(s),
                None => return Err("--eval-timeout requires seconds".into()),
            },
            "--no-verify" => opts.verify = false,
            "--journal" => match it.next() {
                Some(path) => opts.journal = Some(PathBuf::from(path)),
                None => return Err("--journal requires a file path".into()),
            },
            "--faulty" => match it.next().and_then(|v| v.parse().ok()) {
                Some(seed) => opts.faulty = Some(seed),
                None => return Err("--faulty requires an integer seed".into()),
            },
            "--fault-rate" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=1.0).contains(&p) => opts.fault_rate = p,
                _ => return Err("--fault-rate requires a probability in 0..=1".into()),
            },
            "--wisdom-out" => match it.next() {
                Some(path) => opts.wisdom_out = Some(path.clone()),
                None => return Err("--wisdom-out requires a file path".into()),
            },
            "--stats" => opts.stats = true,
            "--trace-json" => match it.next() {
                Some(path) => opts.trace_json = Some(path.clone()),
                None => return Err("--trace-json requires a file path".into()),
            },
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(Some(opts))
}

/// Builds the evaluation chain the flags describe. Everything is boxed
/// so fault injection can wrap any chain uniformly.
fn build_evaluator(opts: &Options) -> Box<dyn Evaluator> {
    let base: Box<dyn Evaluator> = match opts.eval.as_str() {
        "native" => Box::new(
            NativeEvaluator::new(opts.config.unroll_threshold, opts.min_time)
                .with_timeout(opts.eval_timeout)
                .with_verify(opts.verify),
        ),
        "vm" => Box::new(
            MeasuredEvaluator::new(opts.config.unroll_threshold, opts.min_time)
                .with_verify(opts.verify),
        ),
        "opcount" => Box::new(OpCountEvaluator::default()),
        _ => Box::new(
            ResilientEvaluator::new()
                .tier(
                    "native",
                    Box::new(
                        NativeEvaluator::new(opts.config.unroll_threshold, opts.min_time)
                            .with_timeout(opts.eval_timeout)
                            .with_verify(opts.verify),
                    ),
                )
                .tier(
                    "vm",
                    Box::new(
                        MeasuredEvaluator::new(opts.config.unroll_threshold, opts.min_time)
                            .with_verify(opts.verify),
                    ),
                )
                .tier("opcount", Box::new(OpCountEvaluator::default())),
        ),
    };
    match opts.faulty {
        // Faults are injected at the primary tier with the op-count
        // model as the fallback, so `--faulty` exercises the full
        // degradation path rather than merely skipping candidates.
        Some(seed) => Box::new(
            ResilientEvaluator::new()
                .tier(
                    "faulty",
                    Box::new(FaultyEvaluator::new(base, seed, opts.fault_rate)),
                )
                .tier("opcount", Box::new(OpCountEvaluator::default())),
        ),
        None => base,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => return fail(&msg),
    };

    let small_max_k = opts.config.leaf_max.trailing_zeros().min(opts.max_log);
    let mut eval = build_evaluator(&opts);
    let mut tel = Telemetry::new();

    let small = match &opts.journal {
        Some(path) => small_search_journaled(small_max_k, &opts.config, &mut eval, &mut tel, path),
        None => small_search_traced(small_max_k, &opts.config, &mut eval, &mut tel),
    };
    let small = match small {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };

    let large = if opts.max_log > small_max_k {
        let result = match &opts.journal {
            Some(path) => {
                let large_path = path.with_extension(match path.extension() {
                    Some(ext) => format!("{}.large", ext.to_string_lossy()),
                    None => "large".to_string(),
                });
                large_search_journaled(
                    &small,
                    opts.max_log,
                    &opts.config,
                    &mut eval,
                    &mut tel,
                    &large_path,
                )
            }
            None => large_search_traced(&small, opts.max_log, &opts.config, &mut eval, &mut tel),
        };
        match result {
            Ok(l) => l,
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        Vec::new()
    };

    // One winner per size, small sizes first, as wisdom text.
    let mut winners: Vec<SizeResult> = small;
    winners.extend(large.iter().map(|plans| SizeResult {
        tree: plans[0].tree.clone(),
        cost: plans[0].cost,
    }));
    let wisdom = spl::search::wisdom_to_string(&winners);
    print!("{wisdom}");
    for w in &winners {
        eprintln!(
            "splsearch: n={:<6} cost={:<12.6e} {}",
            w.tree.size(),
            w.cost,
            w.tree.describe()
        );
    }

    if let Some(path) = &opts.wisdom_out {
        if let Err(e) = std::fs::write(path, &wisdom) {
            return fail(&format!("writing {path}: {e}"));
        }
    }
    if opts.stats {
        eprint!("{}", render_stats(&tel));
    }
    if let Some(path) = &opts.trace_json {
        let mut report = RunReport::new("splsearch");
        report.meta("max_log", &opts.max_log.to_string());
        report.meta("eval", &opts.eval);
        report.meta("verify", if opts.verify { "on" } else { "off" });
        if let Some(seed) = opts.faulty {
            report.meta("faulty_seed", &seed.to_string());
            report.meta("fault_rate", &opts.fault_rate.to_string());
        }
        report.push_section("search", tel);
        if let Err(e) = report.write_to_file(Path::new(path)) {
            return fail(&format!("writing {path}: {e}"));
        }
    }
    ExitCode::SUCCESS
}
