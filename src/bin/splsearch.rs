//! `splsearch` — the SPIRAL-style FFT plan search as a command-line
//! tool.
//!
//! Runs the paper's dynamic-programming search (small sizes by
//! Equation 10, large sizes by k-best binary splits) under a
//! fault-tolerant evaluation chain, and prints the winning plans as
//! wisdom text. With `--journal` the search persists every completed
//! size to a crash-safe journal and resumes from it after a kill; with
//! `--faulty` it injects deterministic faults to exercise the
//! degradation path end-to-end.
//!
//! Candidate evaluation is parallel (`--jobs`, defaulting to the
//! machine's parallelism): compilation, `cc`, and verification fan out
//! over a worker pool while wall-clock timing stays serialized behind a
//! single measurement token, and results merge deterministically — the
//! winners are bit-identical to `--jobs 1` under any deterministic
//! evaluator. Native kernel builds go through a content-addressed
//! cache (in-memory by default; `--kernel-cache <dir>` persists it
//! across runs) so identical generated C is compiled at most once.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use spl::native::KernelCache;
use spl::search::{
    large_search_journaled_parallel, large_search_parallel, large_search_wisdom_parallel,
    small_search_journaled_parallel, small_search_parallel, small_search_wisdom_parallel,
    Evaluator, EvaluatorPool, FaultyEvaluator, MeasuredEvaluator, NativeEvaluator,
    OpCountEvaluator, PruneConfig, ResilientEvaluator, SearchConfig, SizeResult, WisdomDb,
    WisdomSession, WorkerContext,
};
use spl::telemetry::cli::ReportOptions;
use spl::telemetry::out;
use spl::telemetry::{RunReport, Telemetry};

const USAGE: &str = "\
usage: splsearch [options]

  --max-log <k>      search FFT sizes 2^1 ... 2^k (default 6)
  --leaf-max <n>     largest leaf transform / small-search boundary
                     (default 64, as in the paper)
  --keep <k>         k-best plans kept per large size (default 3)
  -B <n>             unroll threshold handed to the compiler (default 64)
  --eval resilient|native|vm|opcount
                     cost evaluator (default resilient: native timing,
                     degrading per candidate to VM timing, then to the
                     operation-count model)
  --jobs <n>         parallel evaluation workers (default: the machine's
                     available parallelism); timing is always serialized
                     behind a single measurement token, and winners are
                     bit-identical to --jobs 1 under deterministic
                     evaluators
  --kernel-cache <dir>
                     persist the content-addressed compiled-kernel cache
                     to <dir>, so a rerun reuses every shared object
                     whose generated C, build options, and cc version
                     are unchanged (default: in-memory only)
  --min-time <ms>    measurement budget per candidate (default 10)
  --eval-timeout <s> sandbox timeout per candidate kernel (default 30)
  --no-verify        skip dense-reference verification of candidates
  --journal <file>   crash-safe wisdom journal: resume completed sizes
                     from it, append new ones as they finish (large-size
                     records go to <file>.large)
  --wisdom-db <dir>  keyed, mergeable wisdom database: reuse winners
                     recorded under the current compiler + machine
                     fingerprints, record new ones, and share the store
                     safely with concurrent searches (mutually exclusive
                     with --journal); enables cost-model pruning unless
                     --no-prune is given
  --prune[=K]        prune each size's candidates with the calibrated
                     cost model before compiling anything: measure the
                     top-K (default 3) plus everything within the slack
                     factor of the modeled best (requires --wisdom-db,
                     which stores the calibration)
  --no-prune         measure every candidate even with --wisdom-db
  --faulty <seed>    inject deterministic faults at the primary
                     evaluation tier, degrading failed candidates to the
                     operation-count model (faults are keyed per
                     candidate, so the pattern is identical at any --jobs)
  --fault-rate <p>   total injected-fault probability (default 0.1)
  --wisdom-out <file>
                     also write the winners as wisdom text to <file>
  -h, --help         print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("splsearch: {msg}");
    ExitCode::FAILURE
}

struct Options {
    max_log: u32,
    config: SearchConfig,
    eval: String,
    jobs: Option<usize>,
    kernel_cache: Option<PathBuf>,
    min_time: Duration,
    eval_timeout: Duration,
    verify: bool,
    journal: Option<PathBuf>,
    wisdom_db: Option<PathBuf>,
    prune: Option<bool>,
    prune_top_k: usize,
    faulty: Option<u64>,
    fault_rate: f64,
    wisdom_out: Option<String>,
    report: ReportOptions,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_log: 6,
            config: SearchConfig::default(),
            eval: "resilient".to_string(),
            jobs: None,
            kernel_cache: None,
            min_time: Duration::from_millis(10),
            eval_timeout: Duration::from_secs(30),
            verify: true,
            journal: None,
            wisdom_db: None,
            prune: None,
            prune_top_k: PruneConfig::default().top_k,
            faulty: None,
            fault_rate: 0.1,
            wisdom_out: None,
            report: ReportOptions::default(),
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if opts.report.accept(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--max-log" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if (1..=24).contains(&k) => opts.max_log = k,
                _ => return Err("--max-log requires an integer in 1..=24".into()),
            },
            "--leaf-max" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n.is_power_of_two() && n >= 2 => opts.config.leaf_max = n,
                _ => return Err("--leaf-max requires a power of two >= 2".into()),
            },
            "--keep" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if k >= 1 => opts.config.keep = k,
                _ => return Err("--keep requires an integer >= 1".into()),
            },
            "-B" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.config.unroll_threshold = n,
                None => return Err("-B requires an integer".into()),
            },
            "--eval" => match it.next().map(String::as_str) {
                Some(e @ ("resilient" | "native" | "vm" | "opcount")) => opts.eval = e.to_string(),
                _ => return Err("--eval requires resilient, native, vm, or opcount".into()),
            },
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if (1..=256).contains(&n) => opts.jobs = Some(n),
                _ => return Err("--jobs requires an integer in 1..=256".into()),
            },
            "--kernel-cache" => match it.next() {
                Some(dir) => opts.kernel_cache = Some(PathBuf::from(dir)),
                None => return Err("--kernel-cache requires a directory path".into()),
            },
            "--min-time" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => opts.min_time = Duration::from_millis(ms),
                None => return Err("--min-time requires milliseconds".into()),
            },
            "--eval-timeout" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => opts.eval_timeout = Duration::from_secs(s),
                None => return Err("--eval-timeout requires seconds".into()),
            },
            "--no-verify" => opts.verify = false,
            "--journal" => match it.next() {
                Some(path) => opts.journal = Some(PathBuf::from(path)),
                None => return Err("--journal requires a file path".into()),
            },
            "--wisdom-db" => match it.next() {
                Some(dir) => opts.wisdom_db = Some(PathBuf::from(dir)),
                None => return Err("--wisdom-db requires a directory path".into()),
            },
            "--prune" => opts.prune = Some(true),
            "--no-prune" => opts.prune = Some(false),
            prune_k if prune_k.starts_with("--prune=") => {
                match prune_k["--prune=".len()..].parse::<usize>() {
                    Ok(k) if k >= 1 => {
                        opts.prune = Some(true);
                        opts.prune_top_k = k;
                    }
                    _ => return Err("--prune=K requires an integer K >= 1".into()),
                }
            }
            "--faulty" => match it.next().and_then(|v| v.parse().ok()) {
                Some(seed) => opts.faulty = Some(seed),
                None => return Err("--faulty requires an integer seed".into()),
            },
            "--fault-rate" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=1.0).contains(&p) => opts.fault_rate = p,
                _ => return Err("--fault-rate requires a probability in 0..=1".into()),
            },
            "--wisdom-out" => match it.next() {
                Some(path) => opts.wisdom_out = Some(path.clone()),
                None => return Err("--wisdom-out requires a file path".into()),
            },
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    if opts.journal.is_some() && opts.wisdom_db.is_some() {
        return Err("--journal and --wisdom-db are mutually exclusive".into());
    }
    if opts.prune == Some(true) && opts.wisdom_db.is_none() {
        return Err("--prune requires --wisdom-db (the DB stores the calibration)".into());
    }
    Ok(Some(opts))
}

/// Builds one worker's evaluation chain. Measured evaluators adopt the
/// worker's measurement gate so at most one kernel is ever being timed
/// across the pool; native evaluators share the pool-wide kernel cache
/// so identical generated C is compiled once.
fn build_evaluator(
    opts: &Options,
    ctx: &WorkerContext,
    cache: &Arc<KernelCache>,
) -> Box<dyn Evaluator> {
    let native = || {
        NativeEvaluator::new(opts.config.unroll_threshold, opts.min_time)
            .with_timeout(opts.eval_timeout)
            .with_verify(opts.verify)
            .with_gate(ctx.gate.clone())
            .with_kernel_cache(Arc::clone(cache))
    };
    let vm = || {
        MeasuredEvaluator::new(opts.config.unroll_threshold, opts.min_time)
            .with_verify(opts.verify)
            .with_gate(ctx.gate.clone())
    };
    let base: Box<dyn Evaluator> = match opts.eval.as_str() {
        "native" => Box::new(native()),
        "vm" => Box::new(vm()),
        "opcount" => Box::new(OpCountEvaluator::default()),
        _ => Box::new(
            ResilientEvaluator::new()
                .tier("native", Box::new(native()))
                .tier("vm", Box::new(vm()))
                .tier("opcount", Box::new(OpCountEvaluator::default())),
        ),
    };
    match opts.faulty {
        // Faults are injected at the primary tier with the op-count
        // model as the fallback, so `--faulty` exercises the full
        // degradation path rather than merely skipping candidates.
        // Keyed injection draws per candidate, not per call, so the
        // fault pattern is identical at any worker count.
        Some(seed) => Box::new(
            ResilientEvaluator::new()
                .tier(
                    "faulty",
                    Box::new(FaultyEvaluator::keyed(base, seed, opts.fault_rate)),
                )
                .tier("opcount", Box::new(OpCountEvaluator::default())),
        ),
        None => base,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            out!("{USAGE}{}", spl::telemetry::cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(msg) => return fail(&msg),
    };

    let jobs = opts.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    let cache = match &opts.kernel_cache {
        Some(dir) => match KernelCache::with_dir(dir) {
            Ok(c) => Arc::new(c),
            Err(e) => return fail(&format!("opening kernel cache {}: {e}", dir.display())),
        },
        None => Arc::new(KernelCache::in_memory()),
    };

    let small_max_k = opts.config.leaf_max.trailing_zeros().min(opts.max_log);
    let mut tel = Telemetry::new();
    tel.set("search.jobs", jobs as u64);
    // Root of the hierarchical trace: everything below nests under it,
    // so `--trace-chrome` renders the whole run as one flame chart.
    tel.begin_span("splsearch");
    tel.begin_span("build_pool");
    let mut pool = EvaluatorPool::new(jobs, |ctx| build_evaluator(&opts, ctx, &cache));
    tel.end_span();

    // With --wisdom-db, pruning defaults to on; --no-prune turns it off.
    let mut session = match &opts.wisdom_db {
        Some(dir) => {
            let db = match WisdomDb::open(dir) {
                Ok(db) => db,
                Err(e) => return fail(&format!("opening wisdom db {}: {e}", dir.display())),
            };
            let prune = match opts.prune {
                Some(false) => None,
                _ => Some(PruneConfig {
                    top_k: opts.prune_top_k,
                    ..PruneConfig::default()
                }),
            };
            Some(WisdomSession::new(db, prune))
        }
        None => None,
    };

    let small = match (&opts.journal, &mut session) {
        (Some(path), _) => {
            small_search_journaled_parallel(small_max_k, &opts.config, &mut pool, &mut tel, path)
        }
        (None, Some(session)) => {
            small_search_wisdom_parallel(small_max_k, &opts.config, &mut pool, &mut tel, session)
        }
        (None, None) => small_search_parallel(small_max_k, &opts.config, &mut pool, &mut tel),
    };
    let small = match small {
        Ok(s) => s,
        Err(e) => return fail(&e.to_string()),
    };

    let large = if opts.max_log > small_max_k {
        let result = match (&opts.journal, &mut session) {
            (Some(path), _) => {
                let large_path = path.with_extension(match path.extension() {
                    Some(ext) => format!("{}.large", ext.to_string_lossy()),
                    None => "large".to_string(),
                });
                large_search_journaled_parallel(
                    &small,
                    opts.max_log,
                    &opts.config,
                    &mut pool,
                    &mut tel,
                    &large_path,
                )
            }
            (None, Some(session)) => large_search_wisdom_parallel(
                &small,
                opts.max_log,
                &opts.config,
                &mut pool,
                &mut tel,
                session,
            ),
            (None, None) => {
                large_search_parallel(&small, opts.max_log, &opts.config, &mut pool, &mut tel)
            }
        };
        match result {
            Ok(l) => l,
            Err(e) => return fail(&e.to_string()),
        }
    } else {
        Vec::new()
    };

    // Cache activity not yet drained through any evaluator (take
    // semantics make this the remainder) still belongs in the report.
    tel.merge(&cache.drain_telemetry());
    tel.end_span(); // splsearch

    // One winner per size, small sizes first, as wisdom text.
    let mut winners: Vec<SizeResult> = small;
    winners.extend(large.iter().map(|plans| SizeResult {
        tree: plans[0].tree.clone(),
        cost: plans[0].cost,
    }));
    let wisdom = spl::search::wisdom_to_string(&winners);
    out!("{wisdom}");
    for w in &winners {
        eprintln!(
            "splsearch: n={:<6} cost={:<12.6e} {}",
            w.tree.size(),
            w.cost,
            w.tree.describe()
        );
    }

    if let Some(path) = &opts.wisdom_out {
        if let Err(e) = std::fs::write(path, &wisdom) {
            return fail(&format!("writing {path}: {e}"));
        }
    }
    let mut report = RunReport::new("splsearch");
    report.meta("max_log", &opts.max_log.to_string());
    report.meta("eval", &opts.eval);
    report.meta("jobs", &jobs.to_string());
    report.meta("verify", if opts.verify { "on" } else { "off" });
    if let Some(dir) = &opts.kernel_cache {
        report.meta("kernel_cache", &dir.display().to_string());
    }
    if let Some(dir) = &opts.wisdom_db {
        report.meta("wisdom_db", &dir.display().to_string());
        report.meta(
            "prune",
            &match (opts.prune, opts.prune_top_k) {
                (Some(false), _) => "off".to_string(),
                (_, k) => format!("top{k}"),
            },
        );
    }
    if let Some(seed) = opts.faulty {
        report.meta("faulty_seed", &seed.to_string());
        report.meta("fault_rate", &opts.fault_rate.to_string());
    }
    report.push_section("search", tel);
    if let Err(e) = opts.report.finish(&report) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}
