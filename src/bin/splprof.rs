//! `splprof` — deep profiling of compiled SPL programs.
//!
//! Compiles a formula (or the fixed radix-8 FFT benchmark plan of
//! `vmbench`), executes it through the VM's *profiled* resolved engine,
//! and reports where the time went: a hot-spot table over dynamic op
//! classes, per-formula-node time/flop attribution (exact by
//! telescoping — node self times sum to the whole instrumented run),
//! loop-block figures, and the achieved cost against the analytic model
//! of `spl-minifft`'s estimate mode.

use std::process::ExitCode;
use std::rc::Rc;

use spl::compiler::{Compiler, CompilerOptions, OptLevel};
use spl::generator::fft::{ct_sequence, Rule};
use spl::minifft::estimate::node_cost;
use spl::minifft::{Codelet, PlanNode};
use spl::search::compile_tree;
use spl::telemetry::cli::{ReportOptions, USAGE as REPORT_USAGE};
use spl::telemetry::json::Json;
use spl::telemetry::{out, outln};
use spl::telemetry::{RunReport, Telemetry};
use spl::vm::profile::OP_CLASS_NAMES;
use spl::vm::{VmProfile, VmProgram, VmState};

const USAGE: &str = "\
usage: splprof [options]

  --size <k>     profile the fixed radix-8 FFT of size 2^k (default 8),
                 the same plan vmbench times
  --formula <file>
                 profile the first formula in <file> instead
  --unroll <n>   fully unroll sub-formulas with input size <= n
                 (default 64, the paper's setting)
  --reps <r>     profiled repetitions; the last (warmed) one is
                 reported (default 3)
  --top <n>      rows in the hot-spot tables (default 12)
  --json <file>  write the profile report as JSON
  --check-attribution
                 exit nonzero unless per-node attribution sums to
                 within 5% of the instrumented wall time
  --force-scalar profile with the VM's lane-wide (SIMD) loop execution
                 disabled (same results bit-for-bit; vector op classes
                 rebin into their scalar counterparts)
  -h, --help     print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("splprof: {msg}");
    ExitCode::FAILURE
}

/// The fixed radix-8 factorization of 2^k (kept in sync with vmbench).
fn factors(k: u32) -> Vec<usize> {
    let mut rem = k;
    let mut f = Vec::new();
    while rem > 3 {
        f.push(8);
        rem -= 3;
    }
    if rem > 0 {
        f.push(1 << rem);
    }
    f
}

/// Models the factorization as a right-expanded minifft plan and
/// charges it through the estimate-mode cost model.
fn predicted_cost(factors: &[usize]) -> f64 {
    fn build(f: &[usize]) -> PlanNode {
        let n: usize = f.iter().product();
        if f.len() == 1 {
            PlanNode::Leaf(Codelet::new(n))
        } else {
            let r = f[0];
            PlanNode::Split {
                r,
                s: n / r,
                codelet: Codelet::new(r),
                twiddles: Vec::new(),
                child: Rc::new(build(&f[1..])),
            }
        }
    }
    node_cost(&build(factors))
}

fn truncate_label(label: &str, budget: usize) -> String {
    if label.chars().count() <= budget {
        return label.to_string();
    }
    let cut: String = label.chars().take(budget.saturating_sub(1)).collect();
    format!("{cut}\u{2026}")
}

struct Options {
    size: u32,
    formula: Option<String>,
    unroll: usize,
    reps: usize,
    top: usize,
    json: Option<String>,
    check_attribution: bool,
    force_scalar: bool,
    report: ReportOptions,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut o = Options {
        size: 8,
        formula: None,
        unroll: 64,
        reps: 3,
        top: 12,
        json: None,
        check_attribution: false,
        force_scalar: false,
        report: ReportOptions::default(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if o.report.accept(a, &mut it)? {
            continue;
        }
        match a.as_str() {
            "--size" => match it.next().and_then(|v| v.parse().ok()) {
                Some(k) if (1..=24).contains(&k) => o.size = k,
                _ => return Err("--size requires a log2 exponent in 1..=24".into()),
            },
            "--formula" => match it.next() {
                Some(path) => o.formula = Some(path.clone()),
                None => return Err("--formula requires a file path".into()),
            },
            "--unroll" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => o.unroll = n,
                None => return Err("--unroll requires an integer".into()),
            },
            "--reps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) if r >= 1 => o.reps = r,
                _ => return Err("--reps requires an integer >= 1".into()),
            },
            "--top" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => o.top = n,
                None => return Err("--top requires an integer".into()),
            },
            "--json" => match it.next() {
                Some(path) => o.json = Some(path.clone()),
                None => return Err("--json requires a file path".into()),
            },
            "--check-attribution" => o.check_attribution = true,
            "--force-scalar" => o.force_scalar = true,
            "-h" | "--help" => {
                out!("{USAGE}\nshared reporting flags:\n{REPORT_USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown option {other} (try --help)")),
        }
    }
    Ok(Some(o))
}

/// Builds the program to profile: either the vmbench plan for 2^k or
/// the first formula of a source file.
fn build_program(o: &Options) -> Result<(VmProgram, String, Option<f64>), String> {
    match &o.formula {
        Some(path) => {
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let mut compiler = Compiler::with_options(CompilerOptions {
                unroll_threshold: Some(o.unroll),
                opt_level: OptLevel::Default,
                ..Default::default()
            });
            let units = compiler
                .compile_source(&source)
                .map_err(|e| e.to_string())?;
            let unit = units
                .into_iter()
                .next()
                .ok_or_else(|| format!("no formulas in {path}"))?;
            let vm = spl::vm::lower(&unit.program).map_err(|e| e.to_string())?;
            Ok((vm, format!("{path}:{}", unit.name), None))
        }
        None => {
            let f = factors(o.size);
            let tree = ct_sequence(&f, Rule::CooleyTukey);
            let vm = compile_tree(&tree, o.unroll).map_err(|e| e.to_string())?;
            Ok((
                vm,
                format!("2^{} FFT, plan {}", o.size, tree.describe()),
                Some(predicted_cost(&f)),
            ))
        }
    }
}

fn print_profile(prof: &VmProfile, top: usize, predicted: Option<f64>) {
    let total_ns = prof.total_ns.max(1) as f64;

    // Hot-spot table: dynamic op classes, busiest first.
    let mut classes: Vec<(usize, u64)> = prof
        .op_counts
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .collect();
    classes.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let dyn_ops: u64 = prof.op_counts.iter().sum();
    outln!("\nop classes (dynamic)");
    outln!("{:<14} {:>12} {:>8}", "class", "count", "share");
    for &(class, count) in classes.iter().take(top) {
        outln!(
            "{:<14} {:>12} {:>7.1}%",
            OP_CLASS_NAMES[class],
            count,
            100.0 * count as f64 / dyn_ops.max(1) as f64
        );
    }
    outln!(
        "{} ops, {} flops, fused utilization {:.1}%",
        dyn_ops,
        prof.flops(),
        100.0 * prof.fused_utilization()
    );
    outln!(
        "vector lane-ops {} ({:.1}% of float ops; backend {}, width {})",
        prof.vector_lane_ops(),
        100.0 * prof.vector_utilization(),
        spl::vm::simd::backend_name(),
        spl::vm::simd::width()
    );

    // Per-node attribution, hottest self time first.
    if prof.nodes.is_empty() {
        outln!("\n(no formula-node provenance: per-node attribution unavailable)");
    } else {
        let incl = prof.inclusive_ns();
        let mut by_self: Vec<usize> = (0..prof.nodes.len()).collect();
        by_self.sort_by(|&a, &b| prof.nodes[b].self_ns.cmp(&prof.nodes[a].self_ns));
        outln!("\nformula-node attribution (self time)");
        outln!(
            "{:>6} {:>10} {:>10} {:>9} {:>10}  node",
            "self%",
            "self us",
            "incl us",
            "flops",
            "ops"
        );
        for &id in by_self.iter().take(top) {
            let n = &prof.nodes[id];
            if n.ops == 0 && n.self_ns == 0 {
                continue;
            }
            outln!(
                "{:>5.1}% {:>10.1} {:>10.1} {:>9} {:>10}  #{id} {}",
                100.0 * n.self_ns as f64 / total_ns,
                n.self_ns as f64 / 1e3,
                incl[id] as f64 / 1e3,
                n.flops,
                n.ops,
                truncate_label(&n.label, 48)
            );
        }
        let attributed = prof.attributed_ns();
        outln!(
            "attributed {:.2}% of {:.1} us ({} nodes; telescoped, remainder {:.1} us unattributed)",
            100.0 * attributed as f64 / total_ns,
            prof.total_ns as f64 / 1e3,
            prof.nodes.len(),
            prof.unattributed_ns as f64 / 1e3
        );
    }

    // Loop blocks, most expensive first.
    if !prof.loops.is_empty() {
        let mut loops = prof.loops.clone();
        loops.sort_by_key(|l| std::cmp::Reverse(l.wall_ns));
        outln!("\nloop blocks (inclusive wall time)");
        outln!(
            "{:>6} {:>6} {:>9} {:>11} {:>10}",
            "node",
            "depth",
            "entries",
            "iterations",
            "wall us"
        );
        for l in loops.iter().take(top) {
            outln!(
                "{:>6} {:>6} {:>9} {:>11} {:>10.1}",
                l.node,
                l.depth,
                l.entries,
                l.iterations,
                l.wall_ns as f64 / 1e3
            );
        }
    }

    // Achieved vs. the analytic cost model.
    if let Some(pred) = predicted {
        outln!("\ncost model (minifft estimate mode)");
        outln!("predicted cost          {pred:>12.0} units");
        outln!("achieved flops          {:>12}", prof.flops());
        outln!(
            "flops per unit          {:>12.3}",
            prof.flops() as f64 / pred
        );
        outln!(
            "achieved ns per unit    {:>12.3}",
            prof.total_ns as f64 / pred
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => return fail(&e),
    };

    if o.force_scalar {
        spl::vm::simd::set_force_scalar(true);
    }

    let mut tel = Telemetry::new();
    tel.begin_span("splprof");
    tel.begin_span("compile");
    let built = build_program(&o);
    tel.end_span();
    let (vm, describe, predicted) = match built {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    if !vm.is_resolved() {
        return fail(&format!(
            "program fell back to the reference executor ({}); \
             the profiled engine needs a resolved program",
            vm.resolve_fallback().unwrap_or("unknown")
        ));
    }

    let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 0.7).sin()).collect();
    let mut y = vec![0.0; vm.n_out];
    let mut st = VmState::new(&vm);
    let mut prof = None;
    for rep in 0..o.reps {
        tel.begin_span(&format!("profiled run {}", rep + 1));
        prof = vm.run_profiled(&x, &mut y, &mut st);
        tel.end_span();
    }
    tel.end_span(); // splprof
    let prof = prof.expect("resolved program profiles");

    outln!(
        "profiling {describe}  ({} -> {} reals, {} static float ops)",
        vm.n_in,
        vm.n_out,
        vm.float_ops()
    );
    print_profile(&prof, o.top, predicted);

    if let Some(path) = &o.json {
        let mut pairs = vec![
            ("tool", Json::Str("splprof".into())),
            ("program", Json::Str(describe.clone())),
            ("reps", Json::Num(o.reps as f64)),
        ];
        if let Some(pred) = predicted {
            pairs.push(("predicted_cost", Json::Num(pred)));
        }
        pairs.push(("profile", prof.to_json()));
        let json = Json::obj(pairs).to_string();
        if let Err(e) = std::fs::write(path, json + "\n") {
            return fail(&format!("writing {path}: {e}"));
        }
        eprintln!("wrote {path}");
    }

    prof.record(&mut tel);
    if let Some(rs) = vm.resolve_stats() {
        rs.record(&mut tel);
    }
    let mut report = RunReport::new("splprof");
    report.meta("program", &describe);
    report.push_section("profile", tel);
    if let Err(e) = o.report.finish(&report) {
        return fail(&e);
    }

    if o.check_attribution {
        if prof.nodes.is_empty() {
            return fail("--check-attribution: program carries no provenance");
        }
        let attributed = prof.attributed_ns() as f64;
        let share = attributed / prof.total_ns.max(1) as f64;
        if share < 0.95 {
            return fail(&format!(
                "--check-attribution: only {:.1}% of {} ns attributed to formula nodes",
                100.0 * share,
                prof.total_ns
            ));
        }
        eprintln!(
            "attribution check: {:.2}% of {} ns attributed across {} nodes",
            100.0 * share,
            prof.total_ns,
            prof.nodes.len()
        );
    }
    ExitCode::SUCCESS
}
