//! `splc` — the SPL compiler as a command-line tool.
//!
//! Mirrors the paper's compiler driver: reads an SPL program, prints one
//! Fortran or C subroutine per formula. `--stats` and `--trace-json`
//! expose the compiler's telemetry (per-phase wall times and per-pass
//! work counters); see the usage text below.

use std::io::Read;
use std::process::ExitCode;

use spl::compiler::{Compiler, CompilerOptions, OptLevel};
use spl::frontend::ast::Language;
use spl::numeric::Complex;
use spl::telemetry::cli::ReportOptions;
use spl::telemetry::RunReport;
use spl::telemetry::{out, outln};

const USAGE: &str = "\
usage: splc [options] [file.spl]        (stdin when no file)

  -B <n>         fully unroll sub-formulas with input size <= n
  -U <k>         partially unroll remaining loops by factor k
  -O0 | -O1 | -O2
                 optimization level: none / scalar temporaries /
                 default optimizations (default -O2)
  --language c|fortran
                 override the program's #language directives
  --peephole     enable the machine-dependent peepholes (Section 3.4)
  --io-params    add offset/stride parameters to subroutines
  --vectorize <m>
                 compile A (x) I_m instead of A (Section 3.5)
  --max-depth <n>
                 maximum formula nesting depth accepted by the parser
  --max-unrolled-ops <n>
                 maximum unrolled i-code instruction count
  --opt-level <n>
                 alias for -O<n> (0, 1 or 2)
  --verify-passes
                 replay each optimization pass's output on probe
                 vectors against the interpreter; abort compilation
                 naming the pass on the first mismatch
  --verify-passes-quarantine
                 like --verify-passes, but roll back the offending
                 pass and quarantine it for the rest of compilation
  --inject-buggy-pass
                 append a deliberately miscompiling pass (drops the
                 last arithmetic instruction); for exercising the
                 pass-validation machinery
  --list-passes  print the registered optimization passes and exit
  --icode        print the optimized i-code instead of target code
  --run          execute each unit on a deterministic workload and
                 print the output vector (uses the interpreter)
  --run-vm       execute each unit through the VM's resolved engine
                 instead; with --stats, fusion and strength-reduction
                 counters (vm.fuse.*, vm.lsr.*) join the report
  -h, --help     print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("splc: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CompilerOptions::default();
    let mut file: Option<String> = None;
    let mut print_icode = false;
    let mut run = false;
    let mut run_vm = false;
    let mut reporting = ReportOptions::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match reporting.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return fail(&e),
        }
        match a.as_str() {
            "-B" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.unroll_threshold = Some(n),
                None => return fail("-B requires an integer"),
            },
            "-U" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.partial_unroll = Some(n),
                None => return fail("-U requires an integer"),
            },
            "-O0" => opts.opt_level = OptLevel::None,
            "-O1" => opts.opt_level = OptLevel::ScalarTemps,
            "-O2" => opts.opt_level = OptLevel::Default,
            "--language" => match it.next().map(String::as_str) {
                Some("c") => opts.language_override = Some(Language::C),
                Some("fortran") => opts.language_override = Some(Language::Fortran),
                _ => return fail("--language requires c or fortran"),
            },
            "--peephole" => opts.peephole = true,
            "--io-params" => opts.io_params = true,
            "--vectorize" => match it.next().and_then(|v| v.parse().ok()) {
                Some(m) => opts.vectorize = Some(m),
                None => return fail("--vectorize requires an integer"),
            },
            "--max-depth" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.limits.max_depth = n,
                None => return fail("--max-depth requires an integer"),
            },
            "--max-unrolled-ops" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.limits.max_unrolled_ops = n,
                None => return fail("--max-unrolled-ops requires an integer"),
            },
            "--opt-level" => match it.next().map(String::as_str) {
                Some("0") => opts.opt_level = OptLevel::None,
                Some("1") => opts.opt_level = OptLevel::ScalarTemps,
                Some("2") => opts.opt_level = OptLevel::Default,
                _ => return fail("--opt-level requires 0, 1 or 2"),
            },
            "--verify-passes" => {
                opts.verify_passes = Some(spl::compiler::passes::Validation::default());
            }
            "--verify-passes-quarantine" => {
                opts.verify_passes = Some(spl::compiler::passes::Validation::quarantining());
            }
            "--inject-buggy-pass" => opts.inject_buggy_pass = true,
            "--list-passes" => {
                for p in spl::compiler::passes::registered_passes() {
                    outln!("{:<20} {}", p.name(), p.description());
                }
                return ExitCode::SUCCESS;
            }
            "--icode" => print_icode = true,
            "--run" => run = true,
            "--run-vm" => run_vm = true,
            "-h" | "--help" => {
                out!("{USAGE}{}", spl::telemetry::cli::USAGE);
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string());
            }
            other => return fail(&format!("unknown option {other} (try --help)")),
        }
    }

    let opt_name = match opts.opt_level {
        OptLevel::None => "O0",
        OptLevel::ScalarTemps => "O1",
        OptLevel::Default => "O2",
    };

    let source = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => return fail(&format!("reading {path}: {e}")),
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                return fail("reading stdin");
            }
            s
        }
    };

    let mut compiler = Compiler::with_options(opts);
    let units = match compiler.compile_source(&source) {
        Ok(u) => u,
        Err(e) => return fail(&e.to_string()),
    };
    let mut quarantined: Vec<String> = compiler.quarantined_passes().iter().cloned().collect();
    quarantined.sort();
    for name in quarantined {
        eprintln!("splc: warning: pass '{name}' miscompiled a unit and was quarantined");
    }
    let mut tel = compiler.take_telemetry();
    if units.is_empty() {
        eprintln!("splc: no formulas in input (templates/defines were processed)");
    }
    for unit in &units {
        if print_icode {
            outln!(
                "; {} ({} -> {} reals)",
                unit.name,
                unit.program.n_in,
                unit.program.n_out
            );
            out!("{}", unit.program);
        } else {
            out!("{}", unit.emit_traced(&mut tel));
        }
        if run {
            let x: Vec<Complex> = (0..unit.program.n_in)
                .map(|i| Complex::real(((i as f64) * 0.7).sin()))
                .collect();
            match spl::icode::interp::run(&unit.program, &x) {
                Ok(y) => {
                    outln!("; {} output on sin-ramp input:", unit.name);
                    for (k, v) in y.iter().enumerate() {
                        outln!(";   y({}) = {v}", k + 1);
                    }
                }
                Err(e) => return fail(&format!("running {}: {e}", unit.name)),
            }
        }
        if run_vm {
            let vm = match spl::vm::lower(&unit.program) {
                Ok(vm) => vm,
                Err(e) => return fail(&format!("lowering {}: {e}", unit.name)),
            };
            let x: Vec<f64> = (0..vm.n_in).map(|i| ((i as f64) * 0.7).sin()).collect();
            let mut y = vec![0.0; vm.n_out];
            let mut st = spl::vm::VmState::new(&vm);
            vm.run(&x, &mut y, &mut st);
            outln!(
                "; {} via VM ({}) on sin-ramp input:",
                unit.name,
                match vm.resolve_fallback() {
                    None => "resolved engine".to_string(),
                    Some(why) => format!("reference executor: {why}"),
                }
            );
            for (k, v) in y.iter().enumerate() {
                outln!(";   y({}) = {v}", k + 1);
            }
            if let Some(rs) = vm.resolve_stats() {
                rs.record(&mut tel);
            }
        }
        outln!();
    }
    let mut report = RunReport::new("splc");
    report.meta("opt_level", opt_name);
    report.meta("input", file.as_deref().unwrap_or("<stdin>"));
    report.meta("units", &units.len().to_string());
    report.push_section("compile", tel);
    if let Err(e) = reporting.finish(&report) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}
