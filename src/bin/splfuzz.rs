//! `splfuzz` — differential fuzzing for the SPL compiler pipeline.
//!
//! Generates seeded random formulas over the full SPL operator
//! vocabulary, checks the dense-matrix reference against the i-code
//! interpreter (and, with `--native`, the sandboxed C kernel), and
//! writes a minimized reproducer for the first bug of every class.
//! Exits nonzero when any bug is found, so it slots directly into CI.

use std::path::PathBuf;
use std::process::ExitCode;

use spl::fuzz::{run, FuzzConfig};
use spl::telemetry::cli::ReportOptions;
use spl::telemetry::RunReport;
use spl::telemetry::{out, outln};

const USAGE: &str = "\
usage: splfuzz [options]

  --seed <n>     master seed for the formula generator (default 1)
  --count <n>    number of formulas to generate (default 100)
  --max-size <n> largest vector size generated (default 64)
  --max-depth <n>
                 deepest operator nesting generated (default 8)
  --p-invalid <f>
                 probability a formula is mutated invalid (default 0.15)
  --native       also run the cc-compiled kernel in a fork sandbox
  --vm-engine    also cross-check the VM's resolved engine against its
                 reference executor (bit-identical outputs required)
  --localize     recompile each shrunk reproducer under per-pass
                 translation validation and name the optimization pass
                 (if any) that miscompiles it
  --inject-buggy-pass
                 append a deliberately miscompiling pass to every
                 compile (implies --vm-engine; exercises --localize)
  --no-shrink    report bugs unminimized
  --out <dir>    reproducer directory (default results/fuzz)
  --no-out       do not write reproducer files
  -h, --help     print this help
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("splfuzz: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FuzzConfig::default();
    let mut reporting = ReportOptions::default();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match reporting.accept(a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => return fail(&e),
        }
        match a.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.seed = n,
                None => return fail("--seed requires an integer"),
            },
            "--count" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.count = n,
                None => return fail("--count requires an integer"),
            },
            "--max-size" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.gen.max_size = n,
                None => return fail("--max-size requires an integer"),
            },
            "--max-depth" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cfg.gen.max_depth = n,
                None => return fail("--max-depth requires an integer"),
            },
            "--p-invalid" => match it.next().and_then(|v| v.parse().ok()) {
                Some(p) => cfg.gen.p_invalid = p,
                None => return fail("--p-invalid requires a probability"),
            },
            "--native" => cfg.oracle.native = true,
            "--vm-engine" => cfg.oracle.vm_engine = true,
            "--localize" => cfg.localize = true,
            "--inject-buggy-pass" => {
                cfg.oracle.inject_buggy_pass = true;
                cfg.oracle.vm_engine = true;
            }
            "--no-shrink" => cfg.shrink = false,
            "--out" => match it.next() {
                Some(dir) => cfg.out_dir = Some(PathBuf::from(dir)),
                None => return fail("--out requires a directory"),
            },
            "--no-out" => cfg.out_dir = None,
            "-h" | "--help" => {
                out!("{USAGE}{}", spl::telemetry::cli::USAGE);
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown option {other} (try --help)")),
        }
    }

    let report = run(&cfg);
    outln!(
        "splfuzz: {} cases (seed {}): {} agree-ok, {} agree-reject, {} skipped, {} bug class{}{}",
        report.total(),
        cfg.seed,
        report.agree_ok,
        report.agree_reject,
        report.skipped,
        report.bugs.len(),
        if report.bugs.len() == 1 { "" } else { "es" },
        if report.duplicate_bugs > 0 {
            format!(" (+{} duplicates)", report.duplicate_bugs)
        } else {
            String::new()
        },
    );
    for bug in &report.bugs {
        outln!(
            "  [{}] case {}: {} ({})",
            bug.bug.class,
            bug.case,
            bug.shrunk,
            bug.bug.detail
        );
        if let Some(pass) = &bug.guilty_pass {
            outln!("        guilty pass: {pass}");
        } else if cfg.localize {
            outln!("        guilty pass: none (not an optimizer miscompile)");
        }
        if let Some(path) = &bug.file {
            outln!("        reproducer: {}", path.display());
        }
    }
    let mut rep = RunReport::new("splfuzz");
    rep.meta("seed", &cfg.seed.to_string());
    rep.meta("count", &cfg.count.to_string());
    rep.meta("bug_classes", &report.bugs.len().to_string());
    rep.push_section("fuzz", report.telemetry);
    if let Err(e) = reporting.finish(&rep) {
        return fail(&e);
    }
    if report.bugs.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
