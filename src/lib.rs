#![warn(missing_docs)]

//! **spl** — a from-scratch Rust reproduction of
//! *“SPL: A Language and Compiler for DSP Algorithms”* (Xiong, Johnson,
//! Johnson, Padua; PLDI 2001).
//!
//! SPL is a domain-specific language whose programs are matrix formulas:
//!
//! ```text
//! (define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))
//! #subname fft16
//! (compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
//! ```
//!
//! The compiler translates such formulas into Fortran or C subroutines
//! computing `y = M x`, via template-driven code generation, loop
//! unrolling, compile-time intrinsic evaluation, complex→real type
//! transformation, and a value-numbering optimizer. Around it sit the
//! SPIRAL-style components the paper's evaluation uses: a formula
//! generator, a dynamic-programming search engine, an execution substrate
//! (native via the host C compiler, or a portable register VM), and an
//! FFTW-like baseline library.
//!
//! This umbrella crate re-exports every component:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`frontend`] | `spl-frontend` | lexer, parser, AST, directives |
//! | [`formula`] | `spl-formula` | formula algebra + dense-matrix oracle |
//! | [`icode`] | `spl-icode` | the four-tuple IR and its interpreter |
//! | [`templates`] | `spl-templates` | the template mechanism (Section 3.2) |
//! | [`compiler`] | `spl-compiler` | the five-phase SPL compiler |
//! | [`vm`] | `spl-vm` | portable register VM for compiled code |
//! | [`native`] | `spl-native` | generated C through the host compiler |
//! | [`generator`] | `spl-generator` | FFT/WHT/DCT breakdown rules |
//! | [`search`] | `spl-search` | DP search with k-best plans |
//! | [`serve`] | `spl-serve` | fault-tolerant transform-serving daemon |
//! | [`resilience`] | `spl-resilience` | sandboxing, timeouts, crash-safe journal |
//! | [`fuzz`] | `spl-fuzz` | differential formula fuzzing + shrinking |
//! | [`minifft`] | `spl-minifft` | the FFTW-like baseline |
//! | [`numeric`] | `spl-numeric` | complex numbers, references, metrics |
//! | [`telemetry`] | `spl-telemetry` | phase spans, counters, run reports |
//!
//! # Quick start
//!
//! ```
//! use spl::compiler::Compiler;
//!
//! let mut compiler = Compiler::new();
//! let units = compiler
//!     .compile_source("#subname fft4\n(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))")
//!     .unwrap();
//! println!("{}", units[0].emit()); // Fortran for the 4-point FFT
//! # assert!(units[0].emit().contains("subroutine fft4"));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use spl_compiler as compiler;
pub use spl_formula as formula;
pub use spl_frontend as frontend;
pub use spl_fuzz as fuzz;
pub use spl_generator as generator;
pub use spl_icode as icode;
pub use spl_minifft as minifft;
pub use spl_native as native;
pub use spl_numeric as numeric;
pub use spl_resilience as resilience;
pub use spl_search as search;
pub use spl_serve as serve;
pub use spl_telemetry as telemetry;
pub use spl_templates as templates;
pub use spl_vm as vm;
