//! Property tests of the optimizer over *random i-code* (not just code
//! the expander happens to produce): value numbering, forward
//! substitution, DCE, and compaction must preserve the interpreter's
//! semantics on arbitrary straight-line and looped programs.

use proptest::prelude::*;

use spl_compiler::optimize::{dce, forward_substitute, optimize, value_number};
use spl_icode::{Affine, BinOp, IProgram, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
use spl_numeric::Complex;

const N_IN: usize = 6;
const N_OUT: usize = 6;
const N_F: u32 = 5;
const N_TEMP: usize = 4;

fn place_strategy(with_loop: Option<LoopVar>) -> BoxedStrategy<Place> {
    let scalar = (0..N_F).prop_map(Place::F);
    let outv = (0..N_OUT as i64).prop_map(|i| {
        Place::Vec(VecRef {
            kind: VecKind::Out,
            idx: Affine::constant(i),
        })
    });
    let tempv = (0..N_TEMP as i64).prop_map(|i| {
        Place::Vec(VecRef {
            kind: VecKind::Temp(0),
            idx: Affine::constant(i),
        })
    });
    match with_loop {
        Some(lv) => {
            let looped = (0..2i64).prop_map(move |c| {
                Place::Vec(VecRef {
                    kind: VecKind::Out,
                    idx: {
                        let mut a = Affine::constant(c);
                        a.add_term(1, lv);
                        a
                    },
                })
            });
            prop_oneof![scalar, outv, tempv, looped].boxed()
        }
        None => prop_oneof![scalar, outv, tempv].boxed(),
    }
}

fn value_strategy(with_loop: Option<LoopVar>) -> BoxedStrategy<Value> {
    let consts = prop_oneof![
        Just(Complex::ZERO),
        Just(Complex::ONE),
        Just(Complex::real(-1.0)),
        (-2.0..2.0f64).prop_map(Complex::real),
    ]
    .prop_map(Value::Const);
    let invec = (0..N_IN as i64).prop_map(|i| Value::vec(VecKind::In, i));
    let place = place_strategy(with_loop).prop_map(Value::Place);
    prop_oneof![consts, invec, place].boxed()
}

fn instr_strategy(with_loop: Option<LoopVar>) -> BoxedStrategy<Instr> {
    let bin = (
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
        ],
        place_strategy(with_loop),
        value_strategy(with_loop),
        value_strategy(with_loop),
    )
        .prop_map(|(op, dst, a, b)| Instr::Bin { op, dst, a, b });
    let un = (
        prop_oneof![Just(UnOp::Copy), Just(UnOp::Neg)],
        place_strategy(with_loop),
        value_strategy(with_loop),
    )
        .prop_map(|(op, dst, a)| Instr::Un { op, dst, a });
    prop_oneof![bin, un].boxed()
}

fn straight_line_program() -> impl Strategy<Value = IProgram> {
    proptest::collection::vec(instr_strategy(None), 1..30).prop_map(|instrs| IProgram {
        instrs,
        n_in: N_IN,
        n_out: N_OUT,
        temps: vec![N_TEMP],
        tables: vec![],
        n_f: N_F,
        n_r: 0,
        n_loop: 0,
        complex: false,
    })
}

fn looped_program() -> impl Strategy<Value = IProgram> {
    let lv = LoopVar(0);
    (
        proptest::collection::vec(instr_strategy(None), 0..6),
        proptest::collection::vec(instr_strategy(Some(lv)), 1..8),
        proptest::collection::vec(instr_strategy(None), 0..6),
    )
        .prop_map(move |(pre, body, post)| {
            let mut instrs = pre;
            instrs.push(Instr::DoStart {
                var: lv,
                lo: 0,
                hi: 3,
                unroll: false,
            });
            instrs.extend(body);
            instrs.push(Instr::DoEnd);
            instrs.extend(post);
            IProgram {
                instrs,
                n_in: N_IN,
                n_out: N_OUT,
                temps: vec![N_TEMP],
                tables: vec![],
                n_f: N_F,
                n_r: 0,
                n_loop: 1,
                complex: false,
            }
        })
}

fn inputs(seed: u64) -> Vec<Complex> {
    (0..N_IN)
        .map(|i| Complex::real(((seed as f64) * 0.37 + i as f64 * 1.3).sin()))
        .collect()
}

fn outputs_match(a: &[Complex], b: &[Complex]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, 1e-9))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn optimize_preserves_straight_line_semantics(
        p in straight_line_program(),
        seed in 0u64..100,
    ) {
        prop_assume!(p.validate().is_ok());
        let x = inputs(seed);
        let want = spl_icode::interp::run(&p, &x).unwrap();
        for (name, q) in [
            ("vn", value_number(&p)),
            ("fs", forward_substitute(&p)),
            ("dce", dce(&p)),
            ("all", optimize(&p)),
        ] {
            q.validate().unwrap();
            let got = spl_icode::interp::run(&q, &x).unwrap();
            prop_assert!(outputs_match(&got, &want), "{name} changed semantics");
        }
    }

    #[test]
    fn optimize_preserves_loop_semantics(
        p in looped_program(),
        seed in 0u64..100,
    ) {
        prop_assume!(p.validate().is_ok());
        let x = inputs(seed);
        let want = spl_icode::interp::run(&p, &x).unwrap();
        for (name, q) in [
            ("vn", value_number(&p)),
            ("fs", forward_substitute(&p)),
            ("all", optimize(&p)),
        ] {
            q.validate().unwrap();
            let got = spl_icode::interp::run(&q, &x).unwrap();
            prop_assert!(outputs_match(&got, &want), "{name} changed semantics");
        }
    }

    #[test]
    fn optimize_never_grows_code(p in straight_line_program()) {
        prop_assume!(p.validate().is_ok());
        let o = optimize(&p);
        prop_assert!(o.static_instr_count() <= p.static_instr_count());
    }
}
