//! Property-style tests of the optimizer over *random i-code* (not just
//! code the expander happens to produce): value numbering, forward
//! substitution, DCE, and compaction must preserve the interpreter's
//! semantics on arbitrary straight-line and looped programs.
//!
//! Programs are drawn deterministically from `spl_numeric::rng` with
//! fixed seeds, so every run checks the same case set.

use spl_compiler::optimize::{dce, forward_substitute, optimize, value_number};
use spl_icode::{Affine, BinOp, IProgram, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
use spl_numeric::rng::Rng;
use spl_numeric::Complex;

const N_IN: usize = 6;
const N_OUT: usize = 6;
const N_F: u32 = 5;
const N_TEMP: usize = 4;

fn random_place(rng: &mut Rng, with_loop: Option<LoopVar>) -> Place {
    let choices = if with_loop.is_some() { 4 } else { 3 };
    match rng.below(choices) {
        0 => Place::F(rng.below(N_F as u64) as u32),
        1 => Place::Vec(VecRef {
            kind: VecKind::Out,
            idx: Affine::constant(rng.below(N_OUT as u64) as i64),
        }),
        2 => Place::Vec(VecRef {
            kind: VecKind::Temp(0),
            idx: Affine::constant(rng.below(N_TEMP as u64) as i64),
        }),
        _ => {
            let lv = with_loop.unwrap();
            let mut a = Affine::constant(rng.below(2) as i64);
            a.add_term(1, lv);
            Place::Vec(VecRef {
                kind: VecKind::Out,
                idx: a,
            })
        }
    }
}

fn random_value(rng: &mut Rng, with_loop: Option<LoopVar>) -> Value {
    match rng.below(3) {
        0 => Value::Const(match rng.below(4) {
            0 => Complex::ZERO,
            1 => Complex::ONE,
            2 => Complex::real(-1.0),
            _ => Complex::real(rng.uniform(-2.0, 2.0)),
        }),
        1 => Value::vec(VecKind::In, rng.below(N_IN as u64) as i64),
        _ => Value::Place(random_place(rng, with_loop)),
    }
}

fn random_instr(rng: &mut Rng, with_loop: Option<LoopVar>) -> Instr {
    if rng.chance(0.5) {
        let op = *rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
        Instr::Bin {
            op,
            dst: random_place(rng, with_loop),
            a: random_value(rng, with_loop),
            b: random_value(rng, with_loop),
        }
    } else {
        let op = *rng.pick(&[UnOp::Copy, UnOp::Neg]);
        Instr::Un {
            op,
            dst: random_place(rng, with_loop),
            a: random_value(rng, with_loop),
        }
    }
}

fn straight_line_program(rng: &mut Rng) -> IProgram {
    let len = rng.range(1, 29) as usize;
    IProgram {
        instrs: (0..len).map(|_| random_instr(rng, None)).collect(),
        n_in: N_IN,
        n_out: N_OUT,
        temps: vec![N_TEMP],
        tables: vec![],
        n_f: N_F,
        n_r: 0,
        n_loop: 0,
        complex: false,
        ..IProgram::empty()
    }
}

fn looped_program(rng: &mut Rng) -> IProgram {
    let lv = LoopVar(0);
    let mut instrs: Vec<Instr> = (0..rng.below(6)).map(|_| random_instr(rng, None)).collect();
    instrs.push(Instr::DoStart {
        var: lv,
        lo: 0,
        hi: 3,
        unroll: false,
    });
    instrs.extend((0..rng.range(1, 7)).map(|_| random_instr(rng, Some(lv))));
    instrs.push(Instr::DoEnd);
    instrs.extend((0..rng.below(6)).map(|_| random_instr(rng, None)));
    IProgram {
        instrs,
        n_in: N_IN,
        n_out: N_OUT,
        temps: vec![N_TEMP],
        tables: vec![],
        n_f: N_F,
        n_r: 0,
        n_loop: 1,
        complex: false,
        ..IProgram::empty()
    }
}

fn inputs(seed: u64) -> Vec<Complex> {
    (0..N_IN)
        .map(|i| Complex::real(((seed as f64) * 0.37 + i as f64 * 1.3).sin()))
        .collect()
}

fn outputs_match(a: &[Complex], b: &[Complex]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.approx_eq(*y, 1e-9))
}

#[test]
fn optimize_preserves_straight_line_semantics() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(0x51_0000 + seed);
        let p = straight_line_program(&mut rng);
        if p.validate().is_err() {
            continue;
        }
        let x = inputs(seed);
        let want = spl_icode::interp::run(&p, &x).unwrap();
        for (name, q) in [
            ("vn", value_number(&p)),
            ("fs", forward_substitute(&p).unwrap()),
            ("dce", dce(&p).unwrap()),
            ("all", optimize(&p).unwrap()),
        ] {
            q.validate().unwrap();
            let got = spl_icode::interp::run(&q, &x).unwrap();
            assert!(
                outputs_match(&got, &want),
                "seed {seed}: {name} changed semantics"
            );
        }
    }
}

#[test]
fn optimize_preserves_loop_semantics() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(0x100_0000 + seed);
        let p = looped_program(&mut rng);
        if p.validate().is_err() {
            continue;
        }
        let x = inputs(seed);
        let want = spl_icode::interp::run(&p, &x).unwrap();
        for (name, q) in [
            ("vn", value_number(&p)),
            ("fs", forward_substitute(&p).unwrap()),
            ("all", optimize(&p).unwrap()),
        ] {
            q.validate().unwrap();
            let got = spl_icode::interp::run(&q, &x).unwrap();
            assert!(
                outputs_match(&got, &want),
                "seed {seed}: {name} changed semantics"
            );
        }
    }
}

#[test]
fn optimize_never_grows_code() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(0x9120_0000 + seed);
        let p = straight_line_program(&mut rng);
        if p.validate().is_err() {
            continue;
        }
        let o = optimize(&p).unwrap();
        assert!(
            o.static_instr_count() <= p.static_instr_count(),
            "seed {seed}"
        );
    }
}
