//! Forward substitution: sinks the definition of a scalar register into
//! a later copy of it, producing the paper-style direct stores visible
//! in its generated-code listings.

use std::collections::HashMap;

use spl_icode::{IProgram, Instr, Place, UnOp, Value, VecRef};

use super::{OptStats, Pass, PassResult};
use crate::error::CompileError;

/// The forward-substitution pass; see [`forward_substitute_counted`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ForwardSubstitute;

impl Pass for ForwardSubstitute {
    fn name(&self) -> &'static str {
        "forward-substitute"
    }

    fn description(&self) -> &'static str {
        "sinks single-use scalar definitions into the copies that consume them \
         (loop-back-edge aware)"
    }

    fn run(&self, prog: &mut IProgram, stats: &mut OptStats) -> Result<PassResult, CompileError> {
        super::check_prov_alignment(self.name(), prog)?;
        let new = forward_substitute_counted(prog, stats)?;
        Ok(super::replace_if_changed(prog, new))
    }
}

fn may_alias(a: &VecRef, b: &VecRef) -> bool {
    if a.kind != b.kind {
        return false;
    }
    match (a.idx.as_const(), b.idx.as_const()) {
        (Some(x), Some(y)) => x == y,
        _ => {
            // Same symbolic terms, different constant: provably disjoint.
            !(a.idx.terms == b.idx.terms && a.idx.c != b.idx.c)
        }
    }
}

fn place_conflicts(written: &Place, used: &Place) -> bool {
    match (written, used) {
        (Place::Vec(a), Place::Vec(b)) => may_alias(a, b),
        (a, b) => a == b,
    }
}

fn instr_accesses_place(ins: &Instr, p: &Place) -> bool {
    let mut hit = false;
    if let Some(dst) = ins.dst() {
        hit |= place_conflicts(dst, p) || place_conflicts(p, dst);
    }
    ins.for_each_value(&mut |v| {
        fn scan(v: &Value, p: &Place, hit: &mut bool) {
            match v {
                Value::Place(q) => *hit |= place_conflicts(p, q) || place_conflicts(q, p),
                Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, p, hit)),
                _ => {}
            }
        }
        scan(v, p, &mut hit);
    });
    hit
}

/// The *outermost* enclosing loop region of each instruction (the whole
/// program when not inside any loop). A value written inside nested
/// loops can flow to a positionally-earlier read anywhere within this
/// window via a back-edge, so the forward-substitution safety check uses
/// it rather than the innermost region.
fn outermost_regions(instrs: &[Instr]) -> Vec<(usize, usize)> {
    let mut regions = vec![(0usize, instrs.len()); instrs.len()];
    let mut depth = 0usize;
    let mut top_start = 0usize; // body start of the depth-1 loop
    let mut members: Vec<usize> = Vec::new();
    for (k, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::DoStart { .. } => {
                if depth == 0 {
                    top_start = k + 1;
                    members.clear();
                } else {
                    members.push(k);
                }
                depth += 1;
            }
            Instr::DoEnd => {
                depth -= 1;
                if depth == 0 {
                    for &m in &members {
                        regions[m] = (top_start, k);
                    }
                    members.clear();
                } else {
                    members.push(k);
                }
            }
            _ => {
                if depth > 0 {
                    members.push(k);
                }
            }
        }
    }
    regions
}

/// Scalar-register identity for the position tables.
fn scalar_id(p: &Place) -> Option<(bool, u32)> {
    match p {
        Place::F(k) => Some((true, *k)),
        Place::R(k) => Some((false, *k)),
        Place::Vec(_) => None,
    }
}

/// Sorted read/write positions per scalar register, kept up to date as
/// fixes are applied (positions are stable because removed instructions
/// are tombstoned, not spliced out).
#[derive(Default)]
struct ScalarIndex {
    reads: HashMap<(bool, u32), Vec<usize>>,
    writes: HashMap<(bool, u32), Vec<usize>>,
}

impl ScalarIndex {
    fn build(instrs: &[Instr]) -> ScalarIndex {
        let mut idx = ScalarIndex::default();
        for (k, ins) in instrs.iter().enumerate() {
            if let Some(dst) = ins.dst() {
                if let Some(id) = scalar_id(dst) {
                    idx.writes.entry(id).or_default().push(k);
                }
            }
            ins.for_each_value(&mut |v| {
                fn scan(v: &Value, k: usize, idx: &mut ScalarIndex) {
                    match v {
                        Value::Place(p) => {
                            if let Some(id) = scalar_id(p) {
                                idx.reads.entry(id).or_default().push(k);
                            }
                        }
                        Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, k, idx)),
                        _ => {}
                    }
                }
                scan(v, k, &mut idx);
            });
        }
        idx
    }

    fn remove(positions: &mut Vec<usize>, pos: usize) {
        if let Ok(k) = positions.binary_search(&pos) {
            positions.remove(k);
        }
    }

    /// First position in `list` strictly greater than `after` and below
    /// `before`.
    fn first_in(list: Option<&Vec<usize>>, after: usize, before: usize) -> Option<usize> {
        let list = list?;
        let k = list.partition_point(|&p| p <= after);
        list.get(k).copied().filter(|&p| p < before)
    }

    /// Last position in `list` within `[from, to)`.
    fn last_in(list: Option<&Vec<usize>>, from: usize, to: usize) -> Option<usize> {
        let list = list?;
        let k = list.partition_point(|&p| p < to);
        k.checked_sub(1).map(|k| list[k]).filter(|&p| p >= from)
    }
}

/// Does the instruction read place `p` (non-allocating)?
fn reads_place(ins: &Instr, p: &Place) -> bool {
    let mut hit = false;
    ins.for_each_value(&mut |v| {
        fn scan(v: &Value, p: &Place, hit: &mut bool) {
            match v {
                Value::Place(q) => *hit |= q == p,
                Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, p, hit)),
                _ => {}
            }
        }
        scan(v, p, &mut hit);
    });
    hit
}

/// Does the instruction write anything that may alias one of `places`?
fn clobbers_any(ins: &Instr, places: &[Place]) -> bool {
    match ins.dst() {
        Some(w) => places.iter().any(|q| place_conflicts(w, q)),
        None => false,
    }
}

fn operand_places(ins: &Instr) -> Vec<Place> {
    let mut out = Vec::new();
    ins.for_each_value(&mut |v| {
        fn scan(v: &Value, out: &mut Vec<Place>) {
            match v {
                Value::Place(p) => out.push(p.clone()),
                Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, out)),
                _ => {}
            }
        }
        scan(v, &mut out);
    });
    out
}

/// Sinks the definition of a scalar register into a later copy of it:
/// `f0 = a ⊕ b; ...; y = f0` becomes `y = a ⊕ b`.
///
/// A rewrite is applied only when, within the copy's straight-line
/// neighbourhood and innermost loop region, the register's value flowing
/// from that definition is consumed *only* by the copy — including across
/// the loop back-edge.
#[allow(clippy::mut_range_bound)] // `i` advances only when leaving the scan
pub(crate) fn forward_substitute_counted(
    prog: &IProgram,
    stats: &mut OptStats,
) -> Result<IProgram, CompileError> {
    let mut instrs = prog.instrs.clone();
    let outer = outermost_regions(&instrs);
    let mut alive = vec![true; instrs.len()];
    let mut idx = ScalarIndex::build(&instrs);
    loop {
        let mut changed = false;
        let mut i = 0;
        'outer: while i < instrs.len() {
            if !alive[i] {
                i += 1;
                continue;
            }
            let Instr::Un {
                op: UnOp::Copy,
                dst,
                a: Value::Place(p @ (Place::F(_) | Place::R(_))),
            } = &instrs[i]
            else {
                i += 1;
                continue;
            };
            let (dst, p) = (dst.clone(), p.clone());
            let Some(pid) = scalar_id(&p) else {
                return Err(CompileError::MalformedIcode(format!(
                    "forward-substitute: copy at {i} has non-scalar source {p:?}"
                )));
            };
            // Never move a definition across register classes: an `$r`
            // definition executes integer arithmetic, and retargeting it
            // to an `$f`/vector destination (or vice versa) would change
            // its semantics.
            match (&p, &dst) {
                (Place::R(_), Place::R(_)) => {}
                (Place::R(_), _) | (_, Place::R(_)) => {
                    i += 1;
                    continue;
                }
                _ => {}
            }
            // Find the defining instruction within this straight-line run.
            let mut j = i;
            let mut found = false;
            while j > 0 {
                j -= 1;
                if !alive[j] {
                    continue;
                }
                match &instrs[j] {
                    Instr::DoStart { .. } | Instr::DoEnd => break,
                    ins if ins.dst() == Some(&p) => {
                        found = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !found {
                i += 1;
                continue;
            }
            // (a) No other read of p between the definition and the copy,
            // (b) the copy destination is untouched in between,
            // (c) the definition's operands are not clobbered in between.
            let def_ops = operand_places(&instrs[j]);
            let blocked = ((j + 1)..i).any(|k| {
                alive[k]
                    && (reads_place(&instrs[k], &p)
                        || instr_accesses_place(&instrs[k], &dst)
                        || clobbers_any(&instrs[k], &def_ops))
            });
            if blocked {
                i += 1;
                continue 'outer;
            }
            // (d) After the copy, the next access to p anywhere in the
            // remaining program must be a write (its current value dies
            // before being read again). An instruction that reads *and*
            // writes p (a recurrence) appears in both tables at the same
            // position: the read matters first, hence `<=`.
            let end = instrs.len();
            let next_read = ScalarIndex::first_in(idx.reads.get(&pid), i, end);
            let next_write = ScalarIndex::first_in(idx.writes.get(&pid), i, end);
            if let Some(r) = next_read {
                if next_write.is_none_or(|w| r <= w) {
                    i += 1;
                    continue;
                }
            }
            // (e) Across a loop back-edge: a read of p positionally before
            // the definition — anywhere inside the *outermost* loop
            // enclosing it — observes the previous iteration's last write
            // of p. Unsafe if such a read exists and the definition being
            // retargeted is that last write.
            let (ostart, oend) = outer[j.min(outer.len() - 1)];
            if oend != instrs.len() {
                // The window includes j itself: a definition that also
                // READS p (a recurrence like `f0 = in - f0`) is its own
                // back-edge consumer.
                let head_read =
                    ScalarIndex::first_in(idx.reads.get(&pid), ostart.wrapping_sub(1), j + 1)
                        .is_some();
                if head_read {
                    let last_write = ScalarIndex::last_in(idx.writes.get(&pid), ostart, oend);
                    if last_write == Some(j) {
                        i += 1;
                        continue;
                    }
                }
            }
            // Apply: retarget the definition, tombstone the copy, and
            // update the position tables.
            match &mut instrs[j] {
                Instr::Bin { dst: d, .. } | Instr::Un { dst: d, .. } => *d = dst.clone(),
                other => {
                    return Err(CompileError::MalformedIcode(format!(
                        "forward-substitute: definition of {p:?} at {j} is not \
                         arithmetic: {other:?}"
                    )))
                }
            }
            alive[i] = false;
            if let Some(w) = idx.writes.get_mut(&pid) {
                ScalarIndex::remove(w, j);
            }
            if let Some(r) = idx.reads.get_mut(&pid) {
                ScalarIndex::remove(r, i);
            }
            if let Some(did) = scalar_id(&dst) {
                let w = idx.writes.entry(did).or_default();
                ScalarIndex::remove(w, i);
                if let Err(k) = w.binary_search(&j) {
                    w.insert(k, j);
                }
            }
            stats.copies_propagated += 1;
            changed = true;
            i += 1;
        }
        if !changed {
            break;
        }
    }
    let mut out = prog.clone();
    // Tombstoned copies vanish; retargeted definitions stay in place,
    // so the survivor mask keeps provenance aligned.
    out.prov = prog
        .prov_slice()
        .iter()
        .zip(&alive)
        .filter_map(|(&p, &a)| a.then_some(p))
        .collect();
    out.instrs = instrs
        .into_iter()
        .zip(alive)
        .filter_map(|(ins, a)| a.then_some(ins))
        .collect();
    Ok(out)
}
