//! Value numbering (paper Section 3.4): constant folding, algebraic
//! simplification, copy propagation, and CSE "in a single pass using a
//! value numbering algorithm. Both scalar variables and array elements
//! are handled."
//!
//! Value numbers are tracked through straight-line regions; state is
//! reset at loop boundaries (conservative but simple — exactly what
//! generated SPL code needs, since loop bodies are self-contained).

use std::collections::HashMap;

use spl_icode::{BinOp, IProgram, Instr, LoopVar, Place, UnOp, Value, VecKind};
use spl_numeric::Complex;

use super::{pkey, replace_if_changed, OptStats, PKey, Pass, PassResult};
use crate::error::CompileError;

/// The value-numbering pass. With `cse` disabled it degrades to pure
/// constant folding / algebraic simplification (registered separately as
/// `constant-fold` so the cheap subset can be scheduled on its own).
#[derive(Debug, Clone, Copy)]
pub struct ValueNumber {
    cse: bool,
}

impl Default for ValueNumber {
    fn default() -> Self {
        ValueNumber { cse: true }
    }
}

impl ValueNumber {
    /// The constant-folding subset: no cross-instruction reuse of
    /// computed values, so no copies are introduced.
    pub fn constant_fold_only() -> Self {
        ValueNumber { cse: false }
    }
}

impl Pass for ValueNumber {
    fn name(&self) -> &'static str {
        if self.cse {
            "value-number"
        } else {
            "constant-fold"
        }
    }

    fn description(&self) -> &'static str {
        if self.cse {
            "constant folding, algebraic simplification, copy propagation and CSE \
             via value numbering over straight-line regions"
        } else {
            "constant folding and algebraic simplification only (value numbering \
             with reuse disabled)"
        }
    }

    fn run(&self, prog: &mut IProgram, stats: &mut OptStats) -> Result<PassResult, CompileError> {
        super::check_prov_alignment(self.name(), prog)?;
        let new = value_number_counted(prog, stats, self.cse);
        Ok(replace_if_changed(prog, new))
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(u64, u64),
    Loop(LoopVar),
    /// The bool separates integer-destination arithmetic from
    /// floating-point arithmetic: `$r = a / b` truncates where
    /// `$f = a / b` does not, so the two must never share a value number.
    Bin(BinOp, bool, u32, u32),
    Neg(u32),
}

#[derive(Default)]
struct Vn {
    next: u32,
    keys: HashMap<Key, u32>,
    place_vn: HashMap<PKey, u32>,
    vn_const: HashMap<u32, Complex>,
    vn_home: HashMap<u32, Place>,
    /// result-vn -> operand-vn for negations, so `-(-x)` folds to `x`.
    neg_src: HashMap<u32, u32>,
}

impl Vn {
    fn fresh(&mut self) -> u32 {
        self.next += 1;
        self.next - 1
    }

    fn reset(&mut self) {
        self.keys.clear();
        self.place_vn.clear();
        self.vn_const.clear();
        self.vn_home.clear();
        self.neg_src.clear();
    }

    fn const_vn(&mut self, c: Complex) -> u32 {
        let key = Key::Const(c.re.to_bits(), c.im.to_bits());
        if let Some(&vn) = self.keys.get(&key) {
            return vn;
        }
        let vn = self.fresh();
        self.keys.insert(key, vn);
        self.vn_const.insert(vn, c);
        vn
    }

    fn value_vn(&mut self, v: &Value) -> u32 {
        match v {
            Value::Const(c) => self.const_vn(*c),
            Value::Int(i) => self.const_vn(Complex::real(*i as f64)),
            Value::LoopIdx(lv) => {
                let key = Key::Loop(*lv);
                if let Some(&vn) = self.keys.get(&key) {
                    return vn;
                }
                let vn = self.fresh();
                self.keys.insert(key, vn);
                vn
            }
            Value::Place(p) => {
                let pk = pkey(p);
                if let Some(&vn) = self.place_vn.get(&pk) {
                    return vn;
                }
                let vn = self.fresh();
                self.place_vn.insert(pk, vn);
                self.vn_home.entry(vn).or_insert_with(|| p.clone());
                vn
            }
            Value::Intrinsic(_, _) => self.fresh(),
        }
    }

    /// The best operand for a value number: a constant if known, the
    /// value's current home if one is tracked, otherwise the original
    /// operand (which is always valid for operand positions, since it was
    /// just read). Reads of the read-only input and tables are kept as-is:
    /// renaming them through a register adds a copy for no benefit.
    fn best_operand(&self, vn: u32, original: &Value) -> Value {
        if let Some(&c) = self.vn_const.get(&vn) {
            return Value::Const(c);
        }
        if let Value::Place(Place::Vec(v)) = original {
            if matches!(v.kind, VecKind::In | VecKind::Table(_)) {
                return original.clone();
            }
        }
        match self.vn_home.get(&vn) {
            Some(home @ (Place::F(_) | Place::R(_))) => Value::Place(home.clone()),
            Some(home @ Place::Vec(v)) if matches!(v.kind, VecKind::In | VecKind::Table(_)) => {
                Value::Place(home.clone())
            }
            _ => original.clone(),
        }
    }

    /// An operand that *re-materializes* a value number without reference
    /// to any original operand: a constant or a live home. `None` when the
    /// value is no longer available anywhere.
    fn materialize(&self, vn: u32) -> Option<Value> {
        if let Some(&c) = self.vn_const.get(&vn) {
            return Some(Value::Const(c));
        }
        self.vn_home.get(&vn).map(|h| Value::Place(h.clone()))
    }

    /// Invalidates state for a write to `dst`.
    fn invalidate(&mut self, dst: &Place) {
        let dead: Vec<PKey> = match dst {
            Place::F(_) | Place::R(_) => vec![pkey(dst)],
            Place::Vec(v) => {
                let symbolic = v.idx.as_const().is_none();
                self.place_vn
                    .keys()
                    .filter(|pk| match pk {
                        PKey::Vec(kind, c, terms) => {
                            *kind == v.kind && (symbolic || !terms.is_empty() || *c == v.idx.c)
                        }
                        _ => false,
                    })
                    .cloned()
                    .collect()
            }
        };
        for pk in dead {
            self.place_vn.remove(&pk);
        }
        // Homes that live in the clobbered storage are no longer valid.
        match dst {
            Place::Vec(v) => {
                self.vn_home.retain(|_, home| match home {
                    Place::Vec(h) => {
                        h.kind != v.kind
                            || (v.idx.as_const().is_some()
                                && h.idx.as_const().is_some()
                                && h.idx.c != v.idx.c)
                    }
                    _ => true,
                });
            }
            scalar => {
                self.vn_home.retain(|_, home| home != scalar);
            }
        }
    }

    fn record_write(&mut self, dst: &Place, vn: u32) {
        self.invalidate(dst);
        self.place_vn.insert(pkey(dst), vn);
        match self.vn_home.get(&vn) {
            // Scalar homes are good; reads of the read-only input or a
            // constant table are even better (they can never be
            // invalidated) — keep either.
            Some(Place::F(_)) | Some(Place::R(_)) => {}
            Some(Place::Vec(v)) if matches!(v.kind, VecKind::In | VecKind::Table(_)) => {}
            _ => {
                self.vn_home.insert(vn, dst.clone());
            }
        }
    }
}

fn is_int_dst(dst: &Place) -> bool {
    matches!(dst, Place::R(_))
}

fn fold_bin(op: BinOp, a: Complex, b: Complex, int: bool) -> Option<Complex> {
    if int {
        // The interpreter rejects fractional or complex operands in
        // integer positions; folding must not paper over that.
        if !a.is_real() || !b.is_real() || a.re.fract() != 0.0 || b.re.fract() != 0.0 {
            return None;
        }
        let (x, y) = (a.re as i64, b.re as i64);
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x / y
            }
        };
        return Some(Complex::real(r as f64));
    }
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == Complex::ZERO {
                return None;
            }
            a / b
        }
    })
}

pub(crate) fn value_number_counted(prog: &IProgram, stats: &mut OptStats, cse: bool) -> IProgram {
    let mut st = Vn::default();
    let mut out = prog.clone();
    let mut instrs = Vec::with_capacity(prog.instrs.len());
    // Provenance is re-attached lazily: at each iteration's start, any
    // output emitted by the *previous* source instruction (each emits 0
    // or 1) inherits that instruction's formula-node id. The arms below
    // `continue` freely, so the top of the loop is the one safe place.
    let prov_in = prog.prov_slice();
    let has_prov = !prov_in.is_empty();
    let mut prov_out: Vec<u32> = Vec::with_capacity(if has_prov { prog.instrs.len() } else { 0 });
    let mut cur_prov = 0u32;
    for (src_idx, ins) in prog.instrs.iter().enumerate() {
        if has_prov {
            prov_out.resize(instrs.len(), cur_prov);
            cur_prov = prov_in[src_idx];
        }
        match ins {
            Instr::DoStart { .. } | Instr::DoEnd => {
                st.reset();
                instrs.push(ins.clone());
            }
            Instr::Un { op, dst, a } => {
                let a_vn = st.value_vn(a);
                match op {
                    UnOp::Copy => {
                        emit_result(&mut st, &mut instrs, dst, a_vn, None, a);
                    }
                    UnOp::Neg => {
                        if let Some(&c) = st.vn_const.get(&a_vn) {
                            stats.constants_folded += 1;
                            let vn = st.const_vn(-c);
                            emit_result(&mut st, &mut instrs, dst, vn, None, &Value::Const(-c));
                            continue;
                        }
                        // -(-x) = x: if the operand is itself a negation,
                        // reuse its source (when still available).
                        if let Some(&src) = st.neg_src.get(&a_vn) {
                            if let Some(val) = st.materialize(src) {
                                if st.place_vn.get(&pkey(dst)) == Some(&src) {
                                    continue;
                                }
                                st.record_write(dst, src);
                                if let Value::Place(p) = &val {
                                    if p == dst {
                                        continue;
                                    }
                                }
                                instrs.push(Instr::Un {
                                    op: UnOp::Copy,
                                    dst: dst.clone(),
                                    a: val,
                                });
                                continue;
                            }
                        }
                        let key = Key::Neg(a_vn);
                        let reuse = cse
                            .then(|| {
                                st.keys
                                    .get(&key)
                                    .copied()
                                    .and_then(|vn| st.materialize(vn).map(|val| (vn, val)))
                            })
                            .flatten();
                        match reuse {
                            Some((vn, val)) => {
                                stats.cse_hits += 1;
                                if st.place_vn.get(&pkey(dst)) == Some(&vn) {
                                    continue;
                                }
                                st.record_write(dst, vn);
                                if let Value::Place(p) = &val {
                                    if p == dst {
                                        continue;
                                    }
                                }
                                instrs.push(Instr::Un {
                                    op: UnOp::Copy,
                                    dst: dst.clone(),
                                    a: val,
                                });
                            }
                            None => {
                                let vn = match st.keys.get(&key) {
                                    Some(&vn) => vn,
                                    None => {
                                        let vn = st.fresh();
                                        st.keys.insert(key, vn);
                                        vn
                                    }
                                };
                                st.neg_src.insert(vn, a_vn);
                                let new = Instr::Un {
                                    op: UnOp::Neg,
                                    dst: dst.clone(),
                                    a: st.best_operand(a_vn, a),
                                };
                                st.record_write(dst, vn);
                                instrs.push(new);
                            }
                        }
                    }
                }
            }
            Instr::Bin { op, dst, a, b } => {
                let a_vn = st.value_vn(a);
                let b_vn = st.value_vn(b);
                let int = is_int_dst(dst);
                let ca = st.vn_const.get(&a_vn).copied();
                let cb = st.vn_const.get(&b_vn).copied();
                // Constant folding.
                if let (Some(x), Some(y)) = (ca, cb) {
                    if let Some(r) = fold_bin(*op, x, y, int) {
                        stats.constants_folded += 1;
                        let vn = st.const_vn(r);
                        emit_result(&mut st, &mut instrs, dst, vn, None, a);
                        continue;
                    }
                }
                // Algebraic simplifications. Each case carries the operand
                // (value number + original) that the result reduces to.
                let one = Complex::ONE;
                let zero = Complex::ZERO;
                let neg_one = Complex::real(-1.0);
                // Produces the value number for -oval, together with an
                // instruction computing it into dst: a copy when the
                // negation is still live somewhere, a recomputation
                // otherwise, nothing when it is a known constant (the
                // const branch of emit_result covers it).
                let neg_of = |st: &mut Vn, ovn: u32, oval: &Value, dst: &Place| {
                    // -(-x) = x when the operand is itself a negation.
                    if let Some(&src) = st.neg_src.get(&ovn) {
                        if let Some(val) = st.materialize(src) {
                            return (
                                src,
                                Some(Instr::Un {
                                    op: UnOp::Copy,
                                    dst: dst.clone(),
                                    a: val,
                                }),
                            );
                        }
                    }
                    let key = Key::Neg(ovn);
                    if let Some(&vn) = st.keys.get(&key) {
                        if st.vn_const.contains_key(&vn) {
                            return (vn, None);
                        }
                        let ins = match st.materialize(vn) {
                            Some(val) => Instr::Un {
                                op: UnOp::Copy,
                                dst: dst.clone(),
                                a: val,
                            },
                            None => Instr::Un {
                                op: UnOp::Neg,
                                dst: dst.clone(),
                                a: st.best_operand(ovn, oval),
                            },
                        };
                        return (vn, Some(ins));
                    }
                    let vn = st.fresh();
                    st.keys.insert(key, vn);
                    st.neg_src.insert(vn, ovn);
                    (
                        vn,
                        Some(Instr::Un {
                            op: UnOp::Neg,
                            dst: dst.clone(),
                            a: st.best_operand(ovn, oval),
                        }),
                    )
                };
                // (result vn, prebuilt instr, original operand for the vn)
                let simplified: Option<(u32, Option<Instr>, Value)> = match op {
                    BinOp::Add => {
                        if ca == Some(zero) {
                            Some((b_vn, None, b.clone()))
                        } else if cb == Some(zero) {
                            Some((a_vn, None, a.clone()))
                        } else {
                            None
                        }
                    }
                    BinOp::Sub => {
                        if cb == Some(zero) {
                            Some((a_vn, None, a.clone()))
                        } else if a_vn == b_vn {
                            let vn = st.const_vn(zero);
                            Some((vn, None, Value::Const(zero)))
                        } else if ca == Some(zero) {
                            let (vn, pre) = neg_of(&mut st, b_vn, b, dst);
                            Some((vn, pre, b.clone()))
                        } else {
                            None
                        }
                    }
                    BinOp::Mul => {
                        if ca == Some(one) {
                            Some((b_vn, None, b.clone()))
                        } else if cb == Some(one) {
                            Some((a_vn, None, a.clone()))
                        } else if ca == Some(zero) || cb == Some(zero) {
                            let vn = st.const_vn(zero);
                            Some((vn, None, Value::Const(zero)))
                        } else if ca == Some(neg_one) {
                            let (vn, pre) = neg_of(&mut st, b_vn, b, dst);
                            Some((vn, pre, b.clone()))
                        } else if cb == Some(neg_one) {
                            let (vn, pre) = neg_of(&mut st, a_vn, a, dst);
                            Some((vn, pre, a.clone()))
                        } else {
                            None
                        }
                    }
                    BinOp::Div => {
                        if cb == Some(one) {
                            Some((a_vn, None, a.clone()))
                        } else {
                            None
                        }
                    }
                };
                if let Some((vn, emit, orig)) = simplified {
                    emit_result(&mut st, &mut instrs, dst, vn, emit, &orig);
                    continue;
                }
                // CSE: canonicalize commutative operand order.
                let (ka, kb) = match op {
                    BinOp::Add | BinOp::Mul if a_vn > b_vn => (b_vn, a_vn),
                    _ => (a_vn, b_vn),
                };
                let key = Key::Bin(*op, int, ka, kb);
                let reuse = cse
                    .then(|| {
                        st.keys
                            .get(&key)
                            .copied()
                            .and_then(|vn| st.materialize(vn).map(|val| (vn, val)))
                    })
                    .flatten();
                if let Some((vn, val)) = reuse {
                    // The value is still available somewhere: reuse it.
                    stats.cse_hits += 1;
                    if st.place_vn.get(&pkey(dst)) == Some(&vn) {
                        continue; // already there
                    }
                    st.record_write(dst, vn);
                    if let Value::Place(p) = &val {
                        if p == dst {
                            continue;
                        }
                    }
                    instrs.push(Instr::Un {
                        op: UnOp::Copy,
                        dst: dst.clone(),
                        a: val,
                    });
                } else {
                    let vn = match st.keys.get(&key) {
                        Some(&vn) => vn, // known but unavailable: recompute
                        None => {
                            let vn = st.fresh();
                            st.keys.insert(key, vn);
                            vn
                        }
                    };
                    let new = Instr::Bin {
                        op: *op,
                        dst: dst.clone(),
                        a: st.best_operand(a_vn, a),
                        b: st.best_operand(b_vn, b),
                    };
                    st.record_write(dst, vn);
                    instrs.push(new);
                }
            }
        }
    }
    if has_prov {
        prov_out.resize(instrs.len(), cur_prov);
    }
    out.instrs = instrs;
    out.prov = prov_out;
    out
}

/// Emits the result of an instruction whose value number is already known:
/// either the provided replacement instruction, a copy from the value's
/// home, or nothing when the destination already holds the value.
fn emit_result(
    st: &mut Vn,
    instrs: &mut Vec<Instr>,
    dst: &Place,
    vn: u32,
    prebuilt: Option<Instr>,
    original: &Value,
) {
    // Destination already holds this value: the store is redundant.
    if st.place_vn.get(&pkey(dst)) == Some(&vn) {
        return;
    }
    if let Some(ins) = prebuilt {
        st.record_write(dst, vn);
        instrs.push(ins);
        return;
    }
    // `original` is contractually value-equal to `vn` here; prefer a known
    // constant, then the original operand.
    let a = match st.vn_const.get(&vn) {
        Some(&c) => Value::Const(c),
        None => original.clone(),
    };
    // A copy of a place onto itself is a no-op.
    if let Value::Place(p) = &a {
        if p == dst {
            st.record_write(dst, vn);
            return;
        }
    }
    st.record_write(dst, vn);
    instrs.push(Instr::Un {
        op: UnOp::Copy,
        dst: dst.clone(),
        a,
    });
}
