//! Dead code elimination: iteratively removes arithmetic instructions
//! whose destination is never read (output-vector writes are always
//! live), then prunes empty loops. The read sets are whole-program and
//! position-insensitive, which is sound in the presence of loops.

use std::collections::HashSet;

use spl_icode::{IProgram, Instr, Place, Value, VecKind, VecRef};

use super::{pkey, OptStats, PKey, Pass, PassResult};
use crate::error::CompileError;

/// The dead-code-elimination pass; see [`dce_counted`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn description(&self) -> &'static str {
        "removes arithmetic whose destination is never read, then prunes \
         empty loops (whole-program fixpoint)"
    }

    fn run(&self, prog: &mut IProgram, stats: &mut OptStats) -> Result<PassResult, CompileError> {
        super::check_prov_alignment(self.name(), prog)?;
        let new = dce_counted(prog, stats)?;
        Ok(super::replace_if_changed(prog, new))
    }
}

pub(crate) fn dce_counted(prog: &IProgram, stats: &mut OptStats) -> Result<IProgram, CompileError> {
    let initial = prog.instrs.len();
    let mut instrs = prog.instrs.clone();
    // The provenance mask below walks `prov` and `instrs` in lockstep, so
    // a misaligned map is rejected up front rather than panicking
    // mid-retain.
    if !prog.prov.is_empty() && prog.prov.len() != prog.instrs.len() {
        return Err(CompileError::MalformedIcode(format!(
            "dce: provenance map has {} entries for {} instructions",
            prog.prov.len(),
            prog.instrs.len()
        )));
    }
    let has_prov = !prog.prov_slice().is_empty();
    let mut prov = prog.prov_slice().to_vec();
    loop {
        // Whole-program read sets (position-insensitive: sound for loops).
        let mut scalar_reads: HashSet<PKey> = HashSet::new();
        let mut elem_reads: HashSet<(VecKind, i64)> = HashSet::new();
        let mut sym_reads: HashSet<VecKind> = HashSet::new();
        for ins in &instrs {
            ins.for_each_value(&mut |v| {
                collect_reads(v, &mut scalar_reads, &mut elem_reads, &mut sym_reads);
            });
        }
        let live = |dst: &Place| -> bool {
            match dst {
                Place::Vec(VecRef {
                    kind: VecKind::Out, ..
                }) => true,
                Place::F(_) | Place::R(_) => scalar_reads.contains(&pkey(dst)),
                Place::Vec(v) => {
                    if sym_reads.contains(&v.kind) {
                        return true;
                    }
                    match v.idx.as_const() {
                        Some(c) => elem_reads.contains(&(v.kind, c)),
                        None => {
                            // Symbolic write: live if any element of the
                            // vector is read.
                            elem_reads.iter().any(|(k, _)| *k == v.kind)
                        }
                    }
                }
            }
        };
        let before = instrs.len();
        let mut kept = Vec::with_capacity(instrs.len());
        instrs.retain(|ins| {
            let keep = match ins {
                Instr::Bin { dst, .. } | Instr::Un { dst, .. } => live(dst),
                _ => true,
            };
            kept.push(keep);
            keep
        });
        if has_prov {
            let mut it = kept.iter();
            prov.retain(|_| {
                it.next().copied().unwrap_or_else(|| {
                    // Alignment was checked above and is preserved by every
                    // mutation in this loop; running dry means the two went
                    // out of sync anyway, and keeping the entry is the
                    // conservative recovery.
                    debug_assert!(false, "kept mask shorter than prov");
                    true
                })
            });
        }
        // Remove empty loops.
        loop {
            let mut removed = false;
            let mut k = 0;
            while k + 1 < instrs.len() {
                if matches!(instrs[k], Instr::DoStart { .. })
                    && matches!(instrs[k + 1], Instr::DoEnd)
                {
                    instrs.drain(k..=k + 1);
                    if has_prov {
                        prov.drain(k..=k + 1);
                    }
                    removed = true;
                } else {
                    k += 1;
                }
            }
            if !removed {
                break;
            }
        }
        if instrs.len() == before {
            break;
        }
    }
    stats.dce_removed += (initial - instrs.len()) as u64;
    let mut out = prog.clone();
    out.instrs = instrs;
    out.prov = prov;
    Ok(out)
}

fn collect_reads(
    v: &Value,
    scalars: &mut HashSet<PKey>,
    elems: &mut HashSet<(VecKind, i64)>,
    syms: &mut HashSet<VecKind>,
) {
    match v {
        Value::Place(p @ (Place::F(_) | Place::R(_))) => {
            scalars.insert(pkey(p));
        }
        Value::Place(Place::Vec(vr)) => match vr.idx.as_const() {
            Some(c) => {
                elems.insert((vr.kind, c));
            }
            None => {
                syms.insert(vr.kind);
            }
        },
        Value::Intrinsic(_, args) => {
            for a in args {
                collect_reads(a, scalars, elems, syms);
            }
        }
        _ => {}
    }
}
