//! Register compaction: renumbers `$f`/`$r` registers densely and drops
//! unused temps and tables, so declarations in the generated code stay
//! tidy. Runs once, after the optimizing fixed point (renumbering inside
//! the loop would churn names without enabling any further optimization).

use std::collections::HashMap;

use spl_icode::{IProgram, Instr, Place, Value, VecKind, VecRef};

use super::{OptStats, Pass, PassResult};
use crate::error::CompileError;

/// The compaction pass; see [`compact`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Compact;

impl Pass for Compact {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn description(&self) -> &'static str {
        "renumbers registers densely and drops unused temps and tables"
    }

    fn run(&self, prog: &mut IProgram, _stats: &mut OptStats) -> Result<PassResult, CompileError> {
        super::check_prov_alignment(self.name(), prog)?;
        let new = compact(prog);
        Ok(super::replace_if_changed(prog, new))
    }
}

/// Renumbers `$f`/`$r` registers densely and drops unused temps and
/// tables.
pub(crate) fn compact(prog: &IProgram) -> IProgram {
    let mut f_map: HashMap<u32, u32> = HashMap::new();
    let mut r_map: HashMap<u32, u32> = HashMap::new();
    let mut t_map: HashMap<u32, u32> = HashMap::new();
    let mut tbl_map: HashMap<u32, u32> = HashMap::new();

    let note_place = |p: &Place,
                      f_map: &mut HashMap<u32, u32>,
                      r_map: &mut HashMap<u32, u32>,
                      t_map: &mut HashMap<u32, u32>,
                      tbl_map: &mut HashMap<u32, u32>| {
        match p {
            Place::F(k) => {
                let n = f_map.len() as u32;
                f_map.entry(*k).or_insert(n);
            }
            Place::R(k) => {
                let n = r_map.len() as u32;
                r_map.entry(*k).or_insert(n);
            }
            Place::Vec(v) => match v.kind {
                VecKind::Temp(t) => {
                    let n = t_map.len() as u32;
                    t_map.entry(t).or_insert(n);
                }
                VecKind::Table(t) => {
                    let n = tbl_map.len() as u32;
                    tbl_map.entry(t).or_insert(n);
                }
                _ => {}
            },
        }
    };
    fn walk_values(v: &Value, f: &mut dyn FnMut(&Place)) {
        match v {
            Value::Place(p) => f(p),
            Value::Intrinsic(_, args) => args.iter().for_each(|a| walk_values(a, f)),
            _ => {}
        }
    }
    for ins in &prog.instrs {
        if let Some(dst) = ins.dst() {
            note_place(dst, &mut f_map, &mut r_map, &mut t_map, &mut tbl_map);
        }
        ins.for_each_value(&mut |v| {
            walk_values(v, &mut |p| {
                note_place(p, &mut f_map, &mut r_map, &mut t_map, &mut tbl_map)
            });
        });
    }
    let remap_place = |p: &Place| -> Place {
        match p {
            Place::F(k) => Place::F(f_map[k]),
            Place::R(k) => Place::R(r_map[k]),
            Place::Vec(v) => Place::Vec(VecRef {
                kind: match v.kind {
                    VecKind::Temp(t) => VecKind::Temp(t_map[&t]),
                    VecKind::Table(t) => VecKind::Table(tbl_map[&t]),
                    other => other,
                },
                idx: v.idx.clone(),
            }),
        }
    };
    fn remap_value(v: &Value, f: &dyn Fn(&Place) -> Place) -> Value {
        match v {
            Value::Place(p) => Value::Place(f(p)),
            Value::Intrinsic(name, args) => Value::Intrinsic(
                name.clone(),
                args.iter().map(|a| remap_value(a, f)).collect(),
            ),
            other => other.clone(),
        }
    }
    let mut out = prog.clone();
    out.instrs = prog
        .instrs
        .iter()
        .map(|ins| match ins {
            Instr::Bin { op, dst, a, b } => Instr::Bin {
                op: *op,
                dst: remap_place(dst),
                a: remap_value(a, &remap_place),
                b: remap_value(b, &remap_place),
            },
            Instr::Un { op, dst, a } => Instr::Un {
                op: *op,
                dst: remap_place(dst),
                a: remap_value(a, &remap_place),
            },
            other => other.clone(),
        })
        .collect();
    out.n_f = f_map.len() as u32;
    out.n_r = r_map.len() as u32;
    let mut temps = vec![0usize; t_map.len()];
    for (&old, &new) in &t_map {
        temps[new as usize] = prog.temps[old as usize];
    }
    out.temps = temps;
    let mut tables = vec![Vec::new(); tbl_map.len()];
    for (&old, &new) in &tbl_map {
        tables[new as usize] = prog.tables[old as usize].clone();
    }
    out.tables = tables;
    out
}
