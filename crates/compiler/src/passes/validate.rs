//! Per-pass translation validation: capture the pipeline input's
//! behaviour on a handful of probe vectors, then replay every pass's
//! output through the i-code interpreter and demand agreement.
//!
//! The probe inputs are drawn from a fixed-seed [`Rng`] stream, so
//! validation is deterministic across runs and machines; the comparison
//! uses the same scaled elementwise tolerance as the fuzz oracle, which
//! ties the *input* program to the dense reference and thereby extends
//! the chain of custody through the optimizer.

use std::path::{Path, PathBuf};

use spl_icode::{interp, IProgram};
use spl_numeric::rng::Rng;
use spl_numeric::Complex;

use super::Validation;

/// Fixed seed for the probe-input stream (deterministic validation).
const PROBE_SEED: u64 = 0x5b1_9a55;

/// Captured reference behaviour of the pipeline-input program.
pub(crate) struct Validator {
    probes: Vec<Vec<Complex>>,
    expected: Vec<Vec<Complex>>,
    tolerance: f64,
}

impl Validator {
    /// Runs the input program on `cfg.probes` deterministic probe
    /// vectors. `None` when the reference itself cannot be replayed
    /// (structurally invalid or interpreter-rejected input, or zero
    /// probes requested) — validation is then reported inactive rather
    /// than blaming the first pass for a pre-existing problem.
    pub(crate) fn capture(cfg: &Validation, input: &IProgram) -> Option<Validator> {
        if cfg.probes == 0 || input.validate().is_err() {
            return None;
        }
        let mut rng = Rng::new(PROBE_SEED);
        let mut probes = Vec::with_capacity(cfg.probes);
        let mut expected = Vec::with_capacity(cfg.probes);
        for _ in 0..cfg.probes {
            let x: Vec<Complex> = (0..input.n_in)
                .map(|_| Complex::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
                .collect();
            let y = interp::run(input, &x).ok()?;
            probes.push(x);
            expected.push(y);
        }
        Some(Validator {
            probes,
            expected,
            tolerance: cfg.tolerance,
        })
    }

    /// Number of probe vectors replayed per check.
    pub(crate) fn probes(&self) -> usize {
        self.probes.len()
    }

    /// Replays `prog` on every probe. `None` when it agrees with the
    /// captured reference; otherwise a human-readable divergence.
    pub(crate) fn check(&self, prog: &IProgram) -> Option<String> {
        if let Err(e) = prog.validate() {
            return Some(format!("structurally invalid output: {e}"));
        }
        for (k, (x, want)) in self.probes.iter().zip(&self.expected).enumerate() {
            let got = match interp::run(prog, x) {
                Ok(y) => y,
                Err(e) => return Some(format!("probe {k}: interpreter rejected output: {e}")),
            };
            if got.len() != want.len() {
                return Some(format!(
                    "probe {k}: output length {} vs {}",
                    got.len(),
                    want.len()
                ));
            }
            let scale = 1.0 + want.iter().map(|v| v.norm()).fold(0.0, f64::max);
            for (i, (w, g)) in want.iter().zip(&got).enumerate() {
                if (*w - *g).norm() > self.tolerance * scale {
                    return Some(format!(
                        "probe {k} lane {i}: {g} vs expected {w} (scale {scale:.3e})"
                    ));
                }
            }
        }
        None
    }
}

/// Dumps the before/after i-code of a miscompiling pass to `dir` as
/// `<pass>-before.icode` / `<pass>-after.icode`. Returns the directory
/// on success; dump failures never mask the validation failure itself.
pub(crate) fn dump(
    dir: Option<&Path>,
    pass: &str,
    before: &IProgram,
    after: &IProgram,
) -> Option<PathBuf> {
    let dir = dir?;
    std::fs::create_dir_all(dir).ok()?;
    let write = |suffix: &str, prog: &IProgram| {
        std::fs::write(dir.join(format!("{pass}-{suffix}.icode")), prog.to_string())
    };
    write("before", before).ok()?;
    write("after", after).ok()?;
    Some(dir.to_path_buf())
}
