//! The vector lowering pass: marking `⊗ I_m`-style inner loops for
//! lane-wide execution.
//!
//! The paper's vectorization story (Section 5) rewrites a formula `A`
//! into `A ⊗ I_m`, which expands into loops whose iterations are
//! independent copies of `A`'s computation at a constant stride. This
//! pass recognizes that shape *after* optimization, directly on i-code:
//! an innermost loop whose iterations provably never communicate — no
//! loop-carried scalar register, no cross-iteration vector aliasing —
//! is marked lane-safe in [`IProgram::vec_loops`].
//!
//! The mark is purely advisory. The resolved VM re-verifies the loop at
//! its own representation level and silently demotes marks it cannot
//! prove (see `spl_vm::resolved`), so a wrong mark can cost performance
//! but never correctness; the i-code interpreter ignores the marks
//! entirely, which also makes per-pass translation validation of this
//! pass trivially sound.
//!
//! # Lane-safety conditions
//!
//! For a loop `do var = lo, hi` the pass requires:
//!
//! * the loop is innermost and runs at least 2 trips;
//! * the body is straight-line float arithmetic: no `$r` operands or
//!   destinations, no `LoopIdx` reads, no surviving intrinsics;
//! * every `$f` register is either read-only across the body
//!   (a broadcast invariant) or written before it is read
//!   (iteration-private) — a register read first and written later is
//!   loop-carried and disqualifies the loop;
//! * every vector *write* subscript moves with the loop: the
//!   coefficient of `var` is ≥ 1;
//! * for every (write `w`, access `x`) pair on the same vector, the
//!   two subscripts have the same `var` coefficient `s`, their
//!   `var`-independent parts differ by a compile-time constant `d`,
//!   and `d` is not a multiple of `s` landing within the trip range
//!   (`1 ≤ |d/s| ≤ trips−1`), i.e. no iteration's write lands on
//!   another iteration's read or write.
//!
//! Strides are general: after the complex→real type transformation the
//! interleaved code addresses `out[2i]`/`out[2i+1]`, and `s = 2` with
//! `d = 1` is proven disjoint by the residue test above.

use std::collections::HashSet;

use spl_icode::{Affine, IProgram, Instr, LoopVar, Place, Value, VecRef};

use super::{check_prov_alignment, replace_if_changed, OptStats, Pass, PassResult};
use crate::error::CompileError;

/// The vector lowering pass; see the module docs.
pub struct Vectorize;

impl Pass for Vectorize {
    fn name(&self) -> &'static str {
        "vectorize"
    }

    fn description(&self) -> &'static str {
        "mark lane-safe innermost loops for lane-wide (SIMD) execution in the resolved VM"
    }

    fn run(&self, prog: &mut IProgram, stats: &mut OptStats) -> Result<PassResult, CompileError> {
        check_prov_alignment("vectorize", prog)?;
        // Recomputed from scratch every run: stale marks from earlier
        // pipeline shapes are dropped, and a second run over the same
        // program reproduces the same set (idempotence).
        let marks = analyze(prog);
        let fresh = marks.iter().filter(|m| !prog.vec_loops.contains(m)).count() as u64;
        let mut new = prog.clone();
        new.vec_loops = marks;
        let r = replace_if_changed(prog, new);
        if r == PassResult::Changed {
            stats.loops_vectorized += fresh;
        }
        Ok(r)
    }
}

/// Computes the lane-safe loop set (sorted slot ids) for a program.
fn analyze(prog: &IProgram) -> Vec<u32> {
    struct Frame {
        var: LoopVar,
        lo: i64,
        hi: i64,
        body_start: usize,
        has_nested: bool,
    }
    let mut marks = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();
    for (i, ins) in prog.instrs.iter().enumerate() {
        match ins {
            Instr::DoStart { var, lo, hi, .. } => {
                if let Some(parent) = stack.last_mut() {
                    parent.has_nested = true;
                }
                stack.push(Frame {
                    var: *var,
                    lo: *lo,
                    hi: *hi,
                    body_start: i + 1,
                    has_nested: false,
                });
            }
            Instr::DoEnd => {
                if let Some(f) = stack.pop() {
                    if !f.has_nested && lane_safe(&prog.instrs[f.body_start..i], f.var, f.lo, f.hi)
                    {
                        // `validate()` rejects loop-variable reuse, so
                        // the slot id is a unique key for this loop.
                        marks.push(f.var.0);
                    }
                }
            }
            _ => {}
        }
    }
    marks.sort_unstable();
    marks.dedup();
    marks
}

/// The coefficient of `var` in a subscript (0 when absent).
fn coeff_of(idx: &Affine, var: LoopVar) -> i64 {
    idx.terms
        .iter()
        .find(|&&(_, v)| v == var)
        .map(|&(c, _)| c)
        .unwrap_or(0)
}

/// Whether the straight-line body of `do var = lo, hi` is safe to run
/// in lane-wide chunks (see the module docs for the conditions).
fn lane_safe(body: &[Instr], var: LoopVar, lo: i64, hi: i64) -> bool {
    let trips = match hi.checked_sub(lo).and_then(|d| d.checked_add(1)) {
        Some(t) if t >= 2 => t,
        _ => return false,
    };
    let mut seen_f: HashSet<u32> = HashSet::new();
    let mut read_first: HashSet<u32> = HashSet::new();
    let mut written_f: HashSet<u32> = HashSet::new();
    let mut writes: Vec<&VecRef> = Vec::new();
    let mut accesses: Vec<&VecRef> = Vec::new();
    for ins in body {
        let (dst, a, b) = match ins {
            Instr::Bin { dst, a, b, .. } => (dst, a, Some(b)),
            Instr::Un { dst, a, .. } => (dst, a, None),
            // Nested control flow: the caller only analyzes innermost
            // loops, so this is unreachable, but stay conservative.
            _ => return false,
        };
        for v in std::iter::once(a).chain(b) {
            match v {
                Value::Const(_) | Value::Int(_) => {}
                Value::Place(Place::F(k)) => {
                    if seen_f.insert(*k) {
                        read_first.insert(*k);
                    }
                }
                Value::Place(Place::Vec(vr)) => accesses.push(vr),
                // `$r` reads, loop-index reads, and intrinsics have no
                // lane form.
                Value::Place(Place::R(_)) | Value::LoopIdx(_) | Value::Intrinsic(..) => {
                    return false
                }
            }
        }
        match dst {
            Place::F(k) => {
                seen_f.insert(*k);
                written_f.insert(*k);
            }
            Place::Vec(vr) => {
                // A write whose address does not move with the loop
                // would be a cross-iteration write-write conflict.
                if coeff_of(&vr.idx, var) < 1 {
                    return false;
                }
                writes.push(vr);
                accesses.push(vr);
            }
            Place::R(_) => return false,
        }
    }
    // An `$f` register read before any write carries a value across
    // iterations if it is also written (e.g. an accumulator).
    if read_first.iter().any(|k| written_f.contains(k)) {
        return false;
    }
    // Cross-iteration vector aliasing: every write must be disjoint
    // from every other iteration's accesses of the same vector.
    for w in &writes {
        let s = coeff_of(&w.idx, var); // ≥ 1, checked above
        for x in &accesses {
            if x.kind != w.kind {
                continue;
            }
            if coeff_of(&x.idx, var) != s {
                return false;
            }
            let d = match w
                .idx
                .substitute(var, 0)
                .add(&x.idx.substitute(var, 0).scale(-1))
                .as_const()
            {
                Some(d) => d,
                // Offset depends on an outer loop variable in only one
                // of the two subscripts: not provably disjoint.
                None => return false,
            };
            if d % s == 0 {
                let q = (d / s).abs();
                if (1..=trips - 1).contains(&q) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_icode::{BinOp, UnOp, VecKind};

    fn vec_place(kind: VecKind, idx: Affine) -> Place {
        Place::Vec(VecRef { kind, idx })
    }

    fn idx(c: i64, coeff: i64, var: u32) -> Affine {
        let mut a = Affine::constant(c);
        a.add_term(coeff, LoopVar(var));
        a
    }

    fn loop_body(lo: i64, hi: i64, body: Vec<Instr>) -> IProgram {
        let mut instrs = vec![Instr::DoStart {
            var: LoopVar(0),
            lo,
            hi,
            unroll: false,
        }];
        instrs.extend(body);
        instrs.push(Instr::DoEnd);
        IProgram {
            instrs,
            n_in: 64,
            n_out: 64,
            temps: vec![64],
            n_loop: 1,
            n_f: 4,
            complex: false,
            ..IProgram::empty()
        }
    }

    fn marks_of(prog: &mut IProgram) -> Vec<u32> {
        let mut stats = OptStats::default();
        Vectorize.run(prog, &mut stats).unwrap();
        prog.vec_loops.clone()
    }

    #[test]
    fn unit_stride_copy_loop_is_marked() {
        let mut p = loop_body(
            0,
            7,
            vec![Instr::Un {
                op: UnOp::Copy,
                dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                a: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
            }],
        );
        assert_eq!(marks_of(&mut p), vec![0]);
    }

    #[test]
    fn interleaved_stride_two_is_marked() {
        // Post-typetrans shape: out[2i] and out[2i+1] written, in[2i]
        // and in[2i+1] read — s = 2, d = 1 pairs are disjoint.
        let mut p = loop_body(
            0,
            7,
            vec![
                Instr::Bin {
                    op: BinOp::Add,
                    dst: vec_place(VecKind::Out, idx(0, 2, 0)),
                    a: Value::Place(vec_place(VecKind::In, idx(0, 2, 0))),
                    b: Value::Place(vec_place(VecKind::In, idx(1, 2, 0))),
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: vec_place(VecKind::Out, idx(1, 2, 0)),
                    a: Value::Place(vec_place(VecKind::In, idx(0, 2, 0))),
                    b: Value::Place(vec_place(VecKind::In, idx(1, 2, 0))),
                },
            ],
        );
        assert_eq!(marks_of(&mut p), vec![0]);
    }

    #[test]
    fn loop_carried_accumulator_is_rejected() {
        // f0 = f0 + in[i]: read-first then written.
        let mut p = loop_body(
            0,
            7,
            vec![Instr::Bin {
                op: BinOp::Add,
                dst: Place::F(0),
                a: Value::f(0),
                b: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
            }],
        );
        assert!(marks_of(&mut p).is_empty());
    }

    #[test]
    fn iteration_private_register_is_allowed() {
        // f0 = in[i] * 2; out[i] = f0 + 1: written before read.
        let mut p = loop_body(
            0,
            7,
            vec![
                Instr::Bin {
                    op: BinOp::Mul,
                    dst: Place::F(0),
                    a: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
                    b: Value::Int(2),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                    a: Value::f(0),
                    b: Value::Int(1),
                },
            ],
        );
        assert_eq!(marks_of(&mut p), vec![0]);
    }

    #[test]
    fn stationary_write_is_rejected() {
        // out[0] = in[i]: every iteration writes the same cell.
        let mut p = loop_body(
            0,
            7,
            vec![Instr::Un {
                op: UnOp::Copy,
                dst: vec_place(VecKind::Out, Affine::constant(0)),
                a: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
            }],
        );
        assert!(marks_of(&mut p).is_empty());
    }

    #[test]
    fn cross_iteration_alias_is_rejected() {
        // out[i + 1] = out[i] + 1: iteration t+1 reads iteration t's
        // write.
        let mut p = loop_body(
            0,
            7,
            vec![Instr::Bin {
                op: BinOp::Add,
                dst: vec_place(VecKind::Out, idx(1, 1, 0)),
                a: Value::Place(vec_place(VecKind::Out, idx(0, 1, 0))),
                b: Value::Int(1),
            }],
        );
        assert!(marks_of(&mut p).is_empty());
    }

    #[test]
    fn same_iteration_alias_is_allowed() {
        // t[i] = in[i] * 2; out[i] = t[i] + 1: the read sees its own
        // iteration's write.
        let mut p = loop_body(
            0,
            7,
            vec![
                Instr::Bin {
                    op: BinOp::Mul,
                    dst: vec_place(VecKind::Temp(0), idx(0, 1, 0)),
                    a: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
                    b: Value::Int(2),
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                    a: Value::Place(vec_place(VecKind::Temp(0), idx(0, 1, 0))),
                    b: Value::Int(1),
                },
            ],
        );
        assert_eq!(marks_of(&mut p), vec![0]);
    }

    #[test]
    fn distant_alias_beyond_trip_range_is_allowed() {
        // out[i] = out[i + 32] with 8 trips: distance 32 ≥ trips.
        let mut p = loop_body(
            0,
            7,
            vec![Instr::Un {
                op: UnOp::Copy,
                dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                a: Value::Place(vec_place(VecKind::Out, idx(32, 1, 0))),
            }],
        );
        assert_eq!(marks_of(&mut p), vec![0]);
    }

    #[test]
    fn single_trip_and_loop_index_reads_are_rejected() {
        let mut one_trip = loop_body(
            3,
            3,
            vec![Instr::Un {
                op: UnOp::Copy,
                dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                a: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
            }],
        );
        assert!(marks_of(&mut one_trip).is_empty());
        let mut loop_idx = loop_body(
            0,
            7,
            vec![Instr::Un {
                op: UnOp::Copy,
                dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                a: Value::LoopIdx(LoopVar(0)),
            }],
        );
        assert!(marks_of(&mut loop_idx).is_empty());
    }

    #[test]
    fn only_innermost_loops_are_marked() {
        let mut p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: LoopVar(0),
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::DoStart {
                    var: LoopVar(1),
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: vec_place(VecKind::Out, {
                        let mut a = idx(0, 1, 1);
                        a.add_term(4, LoopVar(0));
                        a
                    }),
                    a: Value::Place(vec_place(VecKind::In, {
                        let mut a = idx(0, 1, 1);
                        a.add_term(4, LoopVar(0));
                        a
                    })),
                },
                Instr::DoEnd,
                Instr::DoEnd,
            ],
            n_in: 16,
            n_out: 16,
            n_loop: 2,
            complex: false,
            ..IProgram::empty()
        };
        assert_eq!(marks_of(&mut p), vec![1]);
    }

    #[test]
    fn pass_is_idempotent_and_counts_fresh_marks_once() {
        let mut p = loop_body(
            0,
            7,
            vec![Instr::Un {
                op: UnOp::Copy,
                dst: vec_place(VecKind::Out, idx(0, 1, 0)),
                a: Value::Place(vec_place(VecKind::In, idx(0, 1, 0))),
            }],
        );
        let mut stats = OptStats::default();
        assert_eq!(
            Vectorize.run(&mut p, &mut stats).unwrap(),
            PassResult::Changed
        );
        assert_eq!(stats.loops_vectorized, 1);
        assert_eq!(
            Vectorize.run(&mut p, &mut stats).unwrap(),
            PassResult::Unchanged
        );
        assert_eq!(stats.loops_vectorized, 1);
    }
}
