//! Scalarization as a pipeline pass: replaces temp-vector elements with
//! constant subscripts by fresh scalar `$f` registers (paper:
//! "substitute scalar variables for array elements"). The worker lives
//! in [`crate::unroll`] because it is also the whole of `-O1`.

use spl_icode::IProgram;

use super::{OptStats, Pass, PassResult};
use crate::error::CompileError;

/// The scalarization pass, wrapping
/// [`crate::unroll::scalarize_with_stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Scalarize;

impl Pass for Scalarize {
    fn name(&self) -> &'static str {
        "scalarize"
    }

    fn description(&self) -> &'static str {
        "replaces constant-subscript temp-vector elements with scalar registers"
    }

    fn run(&self, prog: &mut IProgram, stats: &mut OptStats) -> Result<PassResult, CompileError> {
        super::check_prov_alignment(self.name(), prog)?;
        let (new, ustats) = crate::unroll::scalarize_with_stats(prog);
        let result = super::replace_if_changed(prog, new);
        if result == PassResult::Changed {
            stats.temps_scalarized += ustats.temps_scalarized;
        }
        Ok(result)
    }
}
