//! The composable optimization pass manager.
//!
//! The paper's "default optimizations" (Section 3.4) originally lived in
//! one value-numbering monolith; this module splits them into discrete,
//! registered [`Pass`]es and runs them through a [`Pipeline`] built by a
//! [`PipelineBuilder`] from the `-O` level:
//!
//! * `-O0` — empty pipeline;
//! * `-O1` — [`scalarize`](scalarize::Scalarize) only;
//! * `-O2` — scalarize, then a fixed-point loop over
//!   [`value-number`](value_number::ValueNumber),
//!   [`forward-substitute`](forward_substitute::ForwardSubstitute) and
//!   [`dce`](dce::Dce), then a final [`compact`](compact::Compact)
//!   followed by [`vectorize`](vectorize::Vectorize) over the settled
//!   code.
//!
//! The fixed-point loop repeats until a full sweep reports
//! [`PassResult::Unchanged`] from every pass or the iteration cap is
//! hit, so later passes can expose new work for earlier ones (DCE after
//! forward substitution re-enables value numbering, and so on) without
//! any pass needing to know about the others.
//!
//! # Translation validation
//!
//! What a generic pass manager cannot give you, the paper's dense-matrix
//! semantics makes cheap: every program entering the pipeline denotes a
//! linear operator, so we can capture its behaviour on a handful of
//! probe vectors *once* and then replay the i-code after **every pass**
//! ([`Validation`]). A pass whose output disagrees is a localized
//! miscompile: the pipeline dumps the before/after i-code to
//! `results/passes/`, and either aborts with
//! [`CompileError::MiscompilingPass`] naming the pass, or rolls back to
//! the last-validated program and continues with the pass quarantined
//! for the rest of the compilation ([`OnMiscompile::Quarantine`]).
//!
//! The fuzz oracle ties the pipeline *input* to the dense reference, so
//! per-pass agreement with the input program extends that chain of
//! custody through the whole optimizer.

pub mod compact;
pub mod dce;
pub mod forward_substitute;
pub mod scalarize;
pub mod testing;
pub mod validate;
pub mod value_number;
pub mod vectorize;

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Instant;

use spl_icode::{IProgram, Place, VecKind};

use crate::error::CompileError;
use crate::OptLevel;

// ---------------------------------------------------------------------
// Shared identity helpers (used by value numbering and DCE)
// ---------------------------------------------------------------------

/// Structural identity of a [`Place`] for hash tables: scalar registers
/// by id, vector elements by kind and affine subscript.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum PKey {
    F(u32),
    R(u32),
    Vec(VecKind, i64, Vec<(i64, u32)>),
}

pub(crate) fn pkey(p: &Place) -> PKey {
    match p {
        Place::F(k) => PKey::F(*k),
        Place::R(k) => PKey::R(*k),
        Place::Vec(v) => PKey::Vec(
            v.kind,
            v.idx.c,
            v.idx.terms.iter().map(|&(c, lv)| (c, lv.0)).collect(),
        ),
    }
}

// ---------------------------------------------------------------------
// The Pass abstraction
// ---------------------------------------------------------------------

/// Whether a pass did anything to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassResult {
    /// The program was rewritten.
    Changed,
    /// The program is already a fixed point of this pass.
    Unchanged,
}

/// Aggregate work counters across one pipeline run (the union of every
/// pass's contribution), reported through the telemetry layer
/// (`optimize.*` counters in `splc --stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Static instruction count entering the pipeline.
    pub instrs_before: u64,
    /// Static instruction count leaving the pipeline.
    pub instrs_after: u64,
    /// Constant-folded operations (binary folds and negations of
    /// constants) in value numbering.
    pub constants_folded: u64,
    /// Recomputations replaced by a reuse of an existing value number.
    pub cse_hits: u64,
    /// Copies eliminated by sinking a definition into its use
    /// (forward substitution).
    pub copies_propagated: u64,
    /// Instructions removed as dead (including pruned empty loops).
    pub dce_removed: u64,
    /// Temp-vector elements replaced by scalar registers.
    pub temps_scalarized: u64,
    /// Innermost loops marked lane-safe by the vectorize pass.
    pub loops_vectorized: u64,
}

/// One optimization pass over i-code.
///
/// Contract: a pass must preserve program semantics (the interpreter's
/// output on every input vector) and keep [`IProgram::prov`] aligned
/// with the instruction list. Structural problems in the *input* are
/// reported as [`CompileError::MalformedIcode`], never by panicking.
pub trait Pass {
    /// Stable kebab-case pass name (telemetry keys, quarantine lists,
    /// miscompile reports).
    fn name(&self) -> &'static str;
    /// One-line description for `splc --list-passes` and docs.
    fn description(&self) -> &'static str {
        ""
    }
    /// Runs the pass in place, reporting whether anything changed.
    ///
    /// # Errors
    ///
    /// [`CompileError::MalformedIcode`] when the input program violates
    /// the i-code structural contract.
    fn run(&self, prog: &mut IProgram, stats: &mut OptStats) -> Result<PassResult, CompileError>;
}

/// Replaces `*prog` with `new` when they differ; the standard way for a
/// pass computed functionally to report [`PassResult`].
pub(crate) fn replace_if_changed(prog: &mut IProgram, new: IProgram) -> PassResult {
    if *prog == new {
        PassResult::Unchanged
    } else {
        *prog = new;
        PassResult::Changed
    }
}

/// Rejects a program whose provenance map is non-empty but misaligned
/// with the instruction list — every pass assumes the two move in
/// lockstep, and a misaligned map used to surface as a panic deep
/// inside DCE's retain loop.
pub(crate) fn check_prov_alignment(pass: &str, prog: &IProgram) -> Result<(), CompileError> {
    if !prog.prov.is_empty() && prog.prov.len() != prog.instrs.len() {
        return Err(CompileError::MalformedIcode(format!(
            "{pass}: provenance map has {} entries for {} instructions",
            prog.prov.len(),
            prog.instrs.len()
        )));
    }
    Ok(())
}

/// Every standard pass, in canonical pipeline order (for
/// `splc --list-passes` and docs; the `-O` levels pick subsets).
pub fn registered_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(scalarize::Scalarize),
        Box::new(value_number::ValueNumber::constant_fold_only()),
        Box::new(value_number::ValueNumber::default()),
        Box::new(forward_substitute::ForwardSubstitute),
        Box::new(dce::Dce),
        Box::new(compact::Compact),
        Box::new(vectorize::Vectorize),
    ]
}

// ---------------------------------------------------------------------
// Validation configuration
// ---------------------------------------------------------------------

/// What to do when per-pass translation validation catches a pass
/// miscompiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnMiscompile {
    /// Fail the compilation with [`CompileError::MiscompilingPass`]
    /// naming the pass.
    Abort,
    /// Roll back to the last-validated program, quarantine the pass for
    /// the rest of the compilation, and continue.
    Quarantine,
}

/// Per-pass translation-validation configuration
/// (`splc --verify-passes`).
#[derive(Debug, Clone)]
pub struct Validation {
    /// Number of probe vectors captured from the pipeline input.
    pub probes: usize,
    /// Scaled elementwise tolerance for agreement (the same measure the
    /// fuzz oracle uses).
    pub tolerance: f64,
    /// Abort or quarantine on a caught miscompile.
    pub on_miscompile: OnMiscompile,
    /// Where to dump before/after i-code of a miscompiling pass;
    /// `None` disables dumping (tests).
    pub dump_dir: Option<PathBuf>,
}

impl Default for Validation {
    fn default() -> Self {
        Validation {
            probes: 3,
            tolerance: 1e-9,
            on_miscompile: OnMiscompile::Abort,
            dump_dir: Some(PathBuf::from("results/passes")),
        }
    }
}

impl Validation {
    /// The default configuration with quarantine instead of abort.
    pub fn quarantining() -> Self {
        Validation {
            on_miscompile: OnMiscompile::Quarantine,
            ..Validation::default()
        }
    }
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

/// Default cap on fixed-point sweeps (each sweep runs every fixpoint
/// pass once). High enough that real programs converge first; low
/// enough that a ping-ponging pass pair terminates promptly.
pub const DEFAULT_MAX_ITERATIONS: usize = 8;

/// Builds a [`Pipeline`]: passes are registered into one of three
/// groups — `pre` (run once, first), `fixpoint` (repeated until no pass
/// changes anything or the iteration cap is hit), `post` (run once,
/// last).
pub struct PipelineBuilder {
    pre: Vec<Box<dyn Pass>>,
    fixpoint: Vec<Box<dyn Pass>>,
    post: Vec<Box<dyn Pass>>,
    max_iterations: usize,
    validation: Option<Validation>,
}

impl Default for PipelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineBuilder {
    /// An empty pipeline (the `-O0` shape).
    pub fn new() -> Self {
        PipelineBuilder {
            pre: Vec::new(),
            fixpoint: Vec::new(),
            post: Vec::new(),
            max_iterations: DEFAULT_MAX_ITERATIONS,
            validation: None,
        }
    }

    /// The standard pipeline for an optimization level.
    pub fn for_level(level: OptLevel) -> Self {
        let b = Self::new();
        match level {
            OptLevel::None => b,
            OptLevel::ScalarTemps => b.pre(scalarize::Scalarize),
            OptLevel::Default => b.pre(scalarize::Scalarize).optimizer(),
        }
    }

    /// Registers the default-optimization fixed point (value numbering,
    /// forward substitution, DCE) plus the final compaction — the paper's
    /// Section 3.4 set, minus scalarization — followed by the vector
    /// lowering analysis over the settled code.
    pub fn optimizer(self) -> Self {
        self.fixpoint(value_number::ValueNumber::default())
            .fixpoint(forward_substitute::ForwardSubstitute)
            .fixpoint(dce::Dce)
            .post(compact::Compact)
            .post(vectorize::Vectorize)
    }

    /// Adds a pass to the run-once prologue group.
    pub fn pre(mut self, p: impl Pass + 'static) -> Self {
        self.pre.push(Box::new(p));
        self
    }

    /// Adds a pass to the fixed-point group.
    pub fn fixpoint(mut self, p: impl Pass + 'static) -> Self {
        self.fixpoint.push(Box::new(p));
        self
    }

    /// Adds a pass to the run-once epilogue group.
    pub fn post(mut self, p: impl Pass + 'static) -> Self {
        self.post.push(Box::new(p));
        self
    }

    /// Caps the number of fixed-point sweeps (min 1).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Enables per-pass translation validation.
    pub fn validation(mut self, v: Option<Validation>) -> Self {
        self.validation = v;
        self
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            pre: self.pre,
            fixpoint: self.fixpoint,
            post: self.post,
            max_iterations: self.max_iterations,
            validation: self.validation,
        }
    }
}

/// Wall time, work, and validation counters for one pass across a
/// pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PassStats {
    /// The pass name.
    pub name: String,
    /// Times the pass ran (fixpoint passes run once per sweep).
    pub runs: u64,
    /// Runs that changed the program.
    pub changed: u64,
    /// Total wall time across runs, in nanoseconds.
    pub wall_ns: u128,
    /// Validation probe replays performed on this pass's output.
    pub probes: u64,
}

/// Everything a pipeline run produced.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The optimized program.
    pub program: IProgram,
    /// Aggregate work counters (the old `OptStats`).
    pub stats: OptStats,
    /// Per-pass counters, in first-run order.
    pub passes: Vec<PassStats>,
    /// Passes quarantined *during this run* (caught miscompiling and
    /// rolled back).
    pub quarantined: Vec<String>,
    /// Fixed-point sweeps executed.
    pub iterations: u64,
    /// Whether the fixed-point loop stopped at the iteration cap rather
    /// than at a fixed point.
    pub hit_iteration_cap: bool,
    /// Whether per-pass validation was actually active (configured and
    /// the reference program was replayable on the probes).
    pub validation_active: bool,
}

/// A built pass pipeline; see [`PipelineBuilder`].
pub struct Pipeline {
    pre: Vec<Box<dyn Pass>>,
    fixpoint: Vec<Box<dyn Pass>>,
    post: Vec<Box<dyn Pass>>,
    max_iterations: usize,
    validation: Option<Validation>,
}

impl Pipeline {
    /// Runs the pipeline over `input`.
    ///
    /// `quarantined` carries pass names excluded from this run; passes
    /// caught miscompiling under [`OnMiscompile::Quarantine`] are added
    /// to it, so a caller compiling many units skips a bad pass for the
    /// rest of the compilation.
    ///
    /// # Errors
    ///
    /// [`CompileError::MiscompilingPass`] when validation is configured
    /// with [`OnMiscompile::Abort`] and a pass fails it;
    /// [`CompileError::MalformedIcode`] from a pass rejecting its input.
    pub fn run(
        &self,
        input: &IProgram,
        quarantined: &mut HashSet<String>,
    ) -> Result<PipelineOutcome, CompileError> {
        let validator = self
            .validation
            .as_ref()
            .and_then(|v| validate::Validator::capture(v, input));
        let mut exec = Exec {
            prog: input.clone(),
            stats: OptStats {
                instrs_before: input.static_instr_count() as u64,
                ..OptStats::default()
            },
            validation: self.validation.as_ref(),
            validator,
            quarantined,
            newly_quarantined: Vec::new(),
            passes: Vec::new(),
        };
        for p in &self.pre {
            exec.run_pass(p.as_ref())?;
        }
        let mut iterations = 0u64;
        let mut hit_cap = false;
        if !self.fixpoint.is_empty() {
            loop {
                if iterations >= self.max_iterations as u64 {
                    hit_cap = true;
                    break;
                }
                iterations += 1;
                let mut changed_any = false;
                for p in &self.fixpoint {
                    if exec.run_pass(p.as_ref())? == PassResult::Changed {
                        changed_any = true;
                    }
                }
                if !changed_any {
                    break;
                }
            }
        }
        for p in &self.post {
            exec.run_pass(p.as_ref())?;
        }
        exec.stats.instrs_after = exec.prog.static_instr_count() as u64;
        Ok(PipelineOutcome {
            validation_active: exec.validator.is_some(),
            program: exec.prog,
            stats: exec.stats,
            passes: exec.passes,
            quarantined: exec.newly_quarantined,
            iterations,
            hit_iteration_cap: hit_cap,
        })
    }
}

/// Mutable state of one pipeline run.
struct Exec<'a> {
    prog: IProgram,
    stats: OptStats,
    validation: Option<&'a Validation>,
    validator: Option<validate::Validator>,
    quarantined: &'a mut HashSet<String>,
    newly_quarantined: Vec<String>,
    passes: Vec<PassStats>,
}

impl Exec<'_> {
    fn entry(&mut self, name: &str) -> &mut PassStats {
        if let Some(k) = self.passes.iter().position(|p| p.name == name) {
            return &mut self.passes[k];
        }
        self.passes.push(PassStats {
            name: name.to_string(),
            ..PassStats::default()
        });
        self.passes.last_mut().expect("just pushed")
    }

    fn run_pass(&mut self, pass: &dyn Pass) -> Result<PassResult, CompileError> {
        let name = pass.name();
        if self.quarantined.contains(name) {
            return Ok(PassResult::Unchanged);
        }
        // Validation needs the pre-pass program both as the rollback
        // point and to detect a pass that changes the program while
        // claiming `Unchanged`.
        let before = self.validator.is_some().then(|| self.prog.clone());
        let t0 = Instant::now();
        let reported = pass.run(&mut self.prog, &mut self.stats)?;
        let wall = t0.elapsed().as_nanos();
        let changed = match &before {
            Some(b) => *b != self.prog,
            None => reported == PassResult::Changed,
        };
        {
            let e = self.entry(name);
            e.runs += 1;
            e.wall_ns += wall;
            if changed {
                e.changed += 1;
            }
        }
        if !changed {
            return Ok(PassResult::Unchanged);
        }
        if let (Some(v), Some(before)) = (self.validator.as_ref(), before) {
            let probes = v.probes() as u64;
            let failure = v.check(&self.prog);
            self.entry(name).probes += probes;
            if let Some(detail) = failure {
                let cfg = self.validation.expect("validator implies config");
                let dumped = validate::dump(cfg.dump_dir.as_deref(), name, &before, &self.prog);
                let detail = match dumped {
                    Some(dir) => {
                        format!("{detail}; before/after i-code dumped to {}", dir.display())
                    }
                    None => detail,
                };
                match cfg.on_miscompile {
                    OnMiscompile::Abort => {
                        return Err(CompileError::MiscompilingPass {
                            pass: name.to_string(),
                            detail,
                        })
                    }
                    OnMiscompile::Quarantine => {
                        self.prog = before;
                        self.quarantined.insert(name.to_string());
                        self.newly_quarantined.push(name.to_string());
                        return Ok(PassResult::Unchanged);
                    }
                }
            }
        }
        Ok(PassResult::Changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parser::parse_formula;
    use spl_numeric::Complex;
    use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

    fn lowered(src: &str) -> IProgram {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = crate::unroll::unroll_all(&p).unwrap();
        crate::intrinsics::eval_intrinsics(&p).unwrap()
    }

    fn test_validation() -> Validation {
        Validation {
            dump_dir: None,
            ..Validation::default()
        }
    }

    fn run_level(level: OptLevel, prog: &IProgram, max_iter: usize) -> PipelineOutcome {
        let mut q = HashSet::new();
        PipelineBuilder::for_level(level)
            .max_iterations(max_iter)
            .build()
            .run(prog, &mut q)
            .unwrap()
    }

    #[test]
    fn levels_build_expected_pipelines() {
        let p = lowered("(F 4)");
        let o0 = run_level(OptLevel::None, &p, 8);
        assert_eq!(o0.program, p);
        assert!(o0.passes.is_empty());
        let o1 = run_level(OptLevel::ScalarTemps, &p, 8);
        assert_eq!(o1.passes.len(), 1);
        assert_eq!(o1.passes[0].name, "scalarize");
        let o2 = run_level(OptLevel::Default, &p, 8);
        let names: Vec<&str> = o2.passes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "scalarize",
                "value-number",
                "forward-substitute",
                "dce",
                "compact",
                "vectorize"
            ]
        );
        assert!(o2.stats.instrs_after < o2.stats.instrs_before);
        assert!(!o2.hit_iteration_cap);
    }

    #[test]
    fn fixpoint_output_is_cap_invariant() {
        // Once the loop converges, a larger cap must not change the
        // result bit-for-bit.
        for src in ["(F 4)", "(F 8)", "(compose (T 8 4) (tensor (I 4) (F 2)))"] {
            let p = lowered(src);
            let a = run_level(OptLevel::Default, &p, 4);
            let b = run_level(OptLevel::Default, &p, 8);
            let c = run_level(OptLevel::Default, &p, 64);
            assert_eq!(a.program, b.program, "{src}: cap 4 vs 8");
            assert_eq!(b.program, c.program, "{src}: cap 8 vs 64");
            assert!(!c.hit_iteration_cap, "{src} did not converge");
        }
    }

    #[test]
    fn pipeline_is_idempotent_on_its_own_output() {
        for src in ["(F 4)", "(F 8)"] {
            let p = lowered(src);
            let once = run_level(OptLevel::Default, &p, 8).program;
            let twice = run_level(OptLevel::Default, &once, 8).program;
            assert_eq!(once, twice, "{src}");
        }
    }

    #[test]
    fn ping_pong_passes_hit_the_cap_without_hanging() {
        let p = lowered("(F 2)");
        let mut q = HashSet::new();
        let out = PipelineBuilder::new()
            .fixpoint(testing::Ping)
            .fixpoint(testing::Pong)
            .max_iterations(5)
            .build()
            .run(&p, &mut q)
            .unwrap();
        assert!(out.hit_iteration_cap);
        assert_eq!(out.iterations, 5);
        // Ping/pong cancel within each sweep, so the program is intact.
        assert_eq!(out.program, p);
    }

    #[test]
    fn buggy_pass_is_caught_and_named_in_abort_mode() {
        let p = lowered("(F 4)");
        let mut q = HashSet::new();
        let err = PipelineBuilder::for_level(OptLevel::Default)
            .post(testing::DropOp)
            .validation(Some(test_validation()))
            .build()
            .run(&p, &mut q)
            .unwrap_err();
        match err {
            CompileError::MiscompilingPass { pass, .. } => {
                assert_eq!(pass, testing::DROP_OP_NAME)
            }
            other => panic!("expected MiscompilingPass, got {other:?}"),
        }
    }

    #[test]
    fn buggy_pass_is_quarantined_and_output_stays_correct() {
        let p = lowered("(F 4)");
        let x: Vec<Complex> = (0..p.n_in)
            .map(|i| Complex::new((i as f64).sin() + 0.5, (i as f64).cos()))
            .collect();
        let want = spl_icode::interp::run(&p, &x).unwrap();
        let mut q = HashSet::new();
        let out = PipelineBuilder::for_level(OptLevel::Default)
            .post(testing::DropOp)
            .validation(Some(Validation {
                on_miscompile: OnMiscompile::Quarantine,
                dump_dir: None,
                ..Validation::default()
            }))
            .build()
            .run(&p, &mut q)
            .unwrap();
        assert_eq!(out.quarantined, vec![testing::DROP_OP_NAME.to_string()]);
        assert!(q.contains(testing::DROP_OP_NAME));
        assert!(out.validation_active);
        let got = spl_icode::interp::run(&out.program, &x).unwrap();
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-9), "quarantined run changed semantics");
        }
    }

    #[test]
    fn quarantined_pass_is_skipped_on_later_units() {
        let p = lowered("(F 4)");
        let mut q = HashSet::new();
        q.insert(testing::DROP_OP_NAME.to_string());
        // With the pass pre-quarantined, even abort-mode validation
        // never sees it run.
        let out = PipelineBuilder::for_level(OptLevel::Default)
            .post(testing::DropOp)
            .validation(Some(test_validation()))
            .build()
            .run(&p, &mut q)
            .unwrap();
        assert!(out.passes.iter().all(|ps| ps.name != testing::DROP_OP_NAME));
    }

    #[test]
    fn honest_passes_validate_cleanly() {
        for src in ["(F 4)", "(F 8)", "(compose (T 8 4) (tensor (I 4) (F 2)))"] {
            let p = lowered(src);
            let mut q = HashSet::new();
            let out = PipelineBuilder::for_level(OptLevel::Default)
                .validation(Some(test_validation()))
                .build()
                .run(&p, &mut q)
                .unwrap();
            assert!(out.validation_active, "{src}");
            assert!(out.quarantined.is_empty(), "{src}");
            assert!(
                out.passes.iter().any(|ps| ps.probes > 0),
                "{src}: no probes replayed"
            );
        }
    }

    #[test]
    fn registered_passes_have_unique_names_and_descriptions() {
        let passes = registered_passes();
        let mut names = HashSet::new();
        for p in &passes {
            assert!(names.insert(p.name().to_string()), "dup {}", p.name());
            assert!(!p.description().is_empty(), "{} undocumented", p.name());
        }
    }
}
