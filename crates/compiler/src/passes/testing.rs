//! Deliberately-misbehaving passes for exercising the pipeline's
//! validation, quarantine, and termination machinery. Never registered
//! in any `-O` pipeline; `splc --inject-buggy-pass` and the tests add
//! them explicitly.

use spl_icode::{BinOp, IProgram, Instr};

use super::{OptStats, Pass, PassResult};
use crate::error::CompileError;

/// Name under which [`DropOp`] reports itself (what validation must
/// localize).
pub const DROP_OP_NAME: &str = "test-drop-op";

/// A miscompiling pass: silently drops one arithmetic instruction (the
/// last one, so the choice is deterministic) together with its
/// provenance entry. Exists to prove that per-pass validation catches,
/// names, and quarantines a bad pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct DropOp;

impl Pass for DropOp {
    fn name(&self) -> &'static str {
        DROP_OP_NAME
    }

    fn description(&self) -> &'static str {
        "test-only miscompiler: drops the last arithmetic instruction"
    }

    fn run(&self, prog: &mut IProgram, _stats: &mut OptStats) -> Result<PassResult, CompileError> {
        let victim = prog
            .instrs
            .iter()
            .rposition(|ins| matches!(ins, Instr::Bin { .. } | Instr::Un { .. }));
        match victim {
            Some(k) => {
                prog.instrs.remove(k);
                if k < prog.prov.len() {
                    prog.prov.remove(k);
                }
                Ok(PassResult::Changed)
            }
            None => Ok(PassResult::Unchanged),
        }
    }
}

/// Half of an adversarial non-converging pair: swaps the operands of the
/// first commutative binary instruction. [`Pong`] swaps them back, so a
/// fixed-point group containing both never reaches a fixed point and
/// must stop at the iteration cap.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ping;

/// The other half of the [`Ping`]/`Pong` pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pong;

fn swap_first_commutative(prog: &mut IProgram) -> PassResult {
    for ins in &mut prog.instrs {
        if let Instr::Bin {
            op: BinOp::Add | BinOp::Mul,
            a,
            b,
            ..
        } = ins
        {
            if a != b {
                std::mem::swap(a, b);
                return PassResult::Changed;
            }
        }
    }
    PassResult::Unchanged
}

impl Pass for Ping {
    fn name(&self) -> &'static str {
        "test-ping"
    }

    fn description(&self) -> &'static str {
        "test-only: swaps the first commutative instruction's operands"
    }

    fn run(&self, prog: &mut IProgram, _stats: &mut OptStats) -> Result<PassResult, CompileError> {
        Ok(swap_first_commutative(prog))
    }
}

impl Pass for Pong {
    fn name(&self) -> &'static str {
        "test-pong"
    }

    fn description(&self) -> &'static str {
        "test-only: swaps them back, so ping/pong never converges"
    }

    fn run(&self, prog: &mut IProgram, _stats: &mut OptStats) -> Result<PassResult, CompileError> {
        Ok(swap_first_commutative(prog))
    }
}
