//! The default optimizations (paper Section 3.4): constant folding, copy
//! propagation, common subexpression elimination, and dead code
//! elimination.
//!
//! This module is the stable entry point; the passes themselves live in
//! [`crate::passes`] as registered [`Pass`](crate::passes::Pass)
//! implementations, composed by a
//! [`PipelineBuilder`](crate::passes::PipelineBuilder). [`optimize`]
//! runs the standard optimizing fixed point (value numbering, forward
//! substitution, DCE, then a final compaction) without scalarization or
//! per-pass validation — callers wanting either build a pipeline.
//!
//! # Complexity
//!
//! Several passes trade asymptotics for simplicity: value numbering's
//! `invalidate` scans the tracked-place table on every vector write,
//! DCE is a whole-program fixpoint, and forward substitution restarts
//! its scan after each applied fix when loops are present. On the sizes
//! the compiler actually produces (a few thousand instructions for a
//! 2²⁰ plan with 64-point unrolled leaves) the full optimization
//! pipeline measures in the tens of milliseconds, so none of these are
//! worth their smarter replacements yet.

use std::collections::HashSet;

use spl_icode::IProgram;

use crate::error::CompileError;
use crate::passes;

pub use crate::passes::OptStats;

/// Runs the default-optimization fixed point: value numbering, forward
/// substitution of single-use registers, dead-code elimination, and a
/// final register compaction.
///
/// # Errors
///
/// [`CompileError::MalformedIcode`] when the input violates the i-code
/// structural contract (e.g. a misaligned provenance map).
pub fn optimize(prog: &IProgram) -> Result<IProgram, CompileError> {
    Ok(optimize_with_stats(prog)?.0)
}

/// [`optimize`], also reporting what each pass did.
///
/// # Errors
///
/// [`CompileError::MalformedIcode`] when the input violates the i-code
/// structural contract.
pub fn optimize_with_stats(prog: &IProgram) -> Result<(IProgram, OptStats), CompileError> {
    let mut quarantined = HashSet::new();
    let out = passes::PipelineBuilder::new()
        .optimizer()
        .build()
        .run(prog, &mut quarantined)?;
    Ok((out.program, out.stats))
}

/// Single-pass value numbering: constant folding, algebraic
/// simplification, copy propagation, and CSE.
pub fn value_number(prog: &IProgram) -> IProgram {
    passes::value_number::value_number_counted(prog, &mut OptStats::default(), true)
}

/// Sinks the definition of a scalar register into a later copy of it:
/// `f0 = a ⊕ b; ...; y = f0` becomes `y = a ⊕ b` (the paper-style direct
/// stores visible in its generated-code listings).
///
/// # Errors
///
/// [`CompileError::MalformedIcode`] when the input violates the i-code
/// structural contract.
pub fn forward_substitute(prog: &IProgram) -> Result<IProgram, CompileError> {
    passes::forward_substitute::forward_substitute_counted(prog, &mut OptStats::default())
}

/// Iteratively removes arithmetic instructions whose destination is never
/// read (output-vector writes are always live), then prunes empty loops.
///
/// # Errors
///
/// [`CompileError::MalformedIcode`] when the provenance map is non-empty
/// but misaligned with the instruction list.
pub fn dce(prog: &IProgram) -> Result<IProgram, CompileError> {
    passes::dce::dce_counted(prog, &mut OptStats::default())
}

/// Renumbers `$f`/`$r` registers densely and drops unused temps and
/// tables, so declarations in the generated code stay tidy.
pub fn compact(prog: &IProgram) -> IProgram {
    passes::compact::compact(prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::eval_intrinsics;
    use crate::passes::PassResult;
    use crate::unroll::{scalarize, unroll_all};
    use spl_frontend::parser::parse_formula;
    use spl_icode::interp::run;
    use spl_icode::{BinOp, Instr, Place, UnOp, Value, VecKind, VecRef};
    use spl_numeric::Complex;
    use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

    fn pipeline(src: &str) -> (IProgram, IProgram) {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&unroll_all(&p).unwrap()).unwrap();
        let p = scalarize(&p);
        let o = optimize(&p).unwrap();
        o.validate().unwrap();
        (p, o)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin() + 1.0, (i as f64).cos()))
            .collect()
    }

    #[test]
    fn optimization_preserves_semantics() {
        for src in [
            "(F 4)",
            "(F 8)",
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            "(compose (F 2) (F 2))",
            "(tensor (F 2) (F 2))",
            "(direct-sum (F 2) (J 3))",
        ] {
            let (p, o) = pipeline(src);
            let x = ramp(p.n_in);
            let a = run(&p, &x).unwrap();
            let b = run(&o, &x).unwrap();
            for (u, v) in a.iter().zip(&b) {
                assert!(u.approx_eq(*v, 1e-12), "{src}");
            }
        }
    }

    #[test]
    fn optimization_shrinks_unrolled_dft() {
        // The naive (F 4) unrolled has 4*4 twiddle multiplies; after
        // folding W(4,0)=1 etc. many disappear.
        let (p, o) = pipeline("(F 4)");
        assert!(
            o.static_instr_count() < p.static_instr_count(),
            "{} -> {}",
            p.static_instr_count(),
            o.static_instr_count()
        );
    }

    #[test]
    fn mul_by_one_and_zero_fold() {
        // diagonal (1 0 -1 2): y0 = x0, y1 = 0, y2 = -x2, y3 = 2*x3.
        let (_, o) = pipeline("(diagonal (1 0 -1 2))");
        let x = ramp(4);
        let y = run(&o, &x).unwrap();
        assert!(y[0].approx_eq(x[0], 0.0));
        assert!(y[1].approx_eq(Complex::ZERO, 0.0));
        assert!(y[2].approx_eq(-x[2], 0.0));
        assert!(y[3].approx_eq(x[3] * Complex::real(2.0), 1e-15));
        // And the code contains no multiplies for rows 0 and 2.
        let muls = o
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1);
    }

    #[test]
    fn cse_removes_duplicate_expressions() {
        // (compose (F 2) (I 2)): identity copy then butterfly; VN should
        // forward the copies so the temp vanishes after DCE+scalarize.
        let (_, o) = pipeline("(compose (F 2) (I 2))");
        // Optimal form: two instructions (add and sub).
        assert_eq!(o.static_instr_count(), 2);
    }

    #[test]
    fn dce_drops_unused_registers() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(F 2)").unwrap();
        let mut p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        // Inject a dead computation.
        p.instrs.push(Instr::Bin {
            op: BinOp::Add,
            dst: Place::F(90),
            a: Value::Int(1),
            b: Value::Int(2),
        });
        if !p.prov.is_empty() {
            // Keep the provenance map aligned with the injected instr.
            let last = *p.prov.last().unwrap();
            p.prov.push(last);
        }
        p.n_f = 91;
        let o = optimize(&p).unwrap();
        assert!(o.n_f <= 2);
        let x = ramp(2);
        let y = run(&o, &x).unwrap();
        assert!(y[0].approx_eq(x[0] + x[1], 1e-15));
    }

    #[test]
    fn loop_code_still_correct_after_vn() {
        // Loops (no unrolling): VN must reset across iterations.
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(compose (T 8 4) (tensor (I 4) (F 2)))").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&p).unwrap();
        let o = optimize(&p).unwrap();
        o.validate().unwrap();
        let x = ramp(8);
        let a = run(&p, &x).unwrap();
        let b = run(&o, &x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!(u.approx_eq(*v, 1e-12));
        }
    }

    #[test]
    fn compaction_renumbers_densely() {
        let (_, o) = pipeline("(F 8)");
        // All register ids below the counts.
        for ins in &o.instrs {
            if let Some(Place::F(k)) = ins.dst() {
                assert!(*k < o.n_f);
            }
        }
        assert_eq!(o.tables.len(), 0);
    }

    fn out_at(i: i64) -> Place {
        Place::Vec(VecRef {
            kind: VecKind::Out,
            idx: spl_icode::Affine::constant(i),
        })
    }

    fn run_both(p: &IProgram) {
        let q = optimize(p).unwrap();
        q.validate().unwrap();
        let x: Vec<Complex> = (0..p.n_in)
            .map(|i| Complex::real((i as f64) + 1.5))
            .collect();
        let a = spl_icode::interp::run(p, &x).unwrap();
        let b = spl_icode::interp::run(&q, &x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!(
                u.approx_eq(*v, 1e-12),
                "optimize changed semantics: {u} vs {v}\n{p}\n=>\n{q}"
            );
        }
    }

    #[test]
    fn forward_sub_respects_reads_after_loop() {
        // f0 defined and copied inside a loop, then read after the loop:
        // retargeting the definition would leave the post-loop read with
        // a stale value.
        use spl_icode::{Affine, LoopVar};
        let i0 = LoopVar(0);
        let p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::F(0),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i0),
                    })),
                    b: Value::Const(Complex::real(1.0)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    }),
                    a: Value::f(0),
                },
                Instr::DoEnd,
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(4),
                    a: Value::f(0),
                },
            ],
            n_in: 5,
            n_out: 5,
            n_f: 1,
            n_loop: 1,
            ..IProgram::empty()
        };
        run_both(&p);
    }

    #[test]
    fn forward_sub_never_crosses_register_classes() {
        // r0 = 7 / 2 is integer division (3); retargeting the definition
        // to the float destination would compute 3.5.
        let p = IProgram {
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::R(0),
                    a: Value::Int(7),
                    b: Value::Int(2),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(0),
                    a: Value::Place(Place::R(0)),
                },
            ],
            n_in: 1,
            n_out: 1,
            n_r: 1,
            ..IProgram::empty()
        };
        let q = optimize(&p).unwrap();
        let x = [Complex::ZERO];
        let y = spl_icode::interp::run(&q, &x).unwrap();
        assert_eq!(y[0].re, 3.0, "integer semantics lost:\n{q}");
    }

    #[test]
    fn forward_sub_respects_recurrence_definitions() {
        // The SIV pattern: f0 = in(i) - f0 feeds itself across
        // iterations; sinking the definition into the copy would break
        // every iteration after the first.
        use spl_icode::{Affine, LoopVar};
        let i0 = LoopVar(0);
        let p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: Place::F(0),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i0),
                    })),
                    b: Value::f(0),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    }),
                    a: Value::f(0),
                },
                Instr::DoEnd,
            ],
            n_in: 4,
            n_out: 4,
            n_f: 1,
            n_loop: 1,
            ..IProgram::empty()
        };
        run_both(&p);
    }

    #[test]
    fn forward_sub_respects_outer_loop_back_edge() {
        // Outer body reads f0 at its head; an inner loop defines f0 and
        // copies it out. The head read of the NEXT outer iteration must
        // still see the inner definition.
        use spl_icode::{Affine, LoopVar};
        let i0 = LoopVar(0);
        let i1 = LoopVar(1);
        let p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: 2,
                    unroll: false,
                },
                // head read of f0 (stale on iteration 0: reads 0.0)
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    }),
                    a: Value::f(0),
                    b: Value::Const(Complex::real(10.0)),
                },
                Instr::DoStart {
                    var: i1,
                    lo: 0,
                    hi: 0,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::F(0),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i0),
                    })),
                    b: Value::Const(Complex::real(1.0)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(3),
                    a: Value::f(0),
                },
                Instr::DoEnd,
                Instr::DoEnd,
            ],
            n_in: 3,
            n_out: 4,
            n_f: 1,
            n_loop: 2,
            ..IProgram::empty()
        };
        run_both(&p);
    }

    #[test]
    fn cse_keeps_integer_and_float_division_apart() {
        // r0 = in-ish 7 / 2 (integer, = 3) followed by f0 = 7 / 2
        // (float, = 3.5) with identical operand value numbers: CSE must
        // not merge them. Use register operands so neither folds.
        let p = IProgram {
            instrs: vec![
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::R(1),
                    a: Value::Int(7),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::R(2),
                    a: Value::Int(2),
                },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::R(0),
                    a: Value::Place(Place::R(1)),
                    b: Value::Place(Place::R(2)),
                },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::F(0),
                    a: Value::Place(Place::R(1)),
                    b: Value::Place(Place::R(2)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(0),
                    a: Value::Place(Place::R(0)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(1),
                    a: Value::f(0),
                },
            ],
            n_in: 1,
            n_out: 2,
            n_f: 1,
            n_r: 3,
            ..IProgram::empty()
        };
        let q = value_number(&p);
        q.validate().unwrap();
        let x = [Complex::ZERO];
        let y = spl_icode::interp::run(&q, &x).unwrap();
        assert_eq!(y[0].re, 3.0, "{q}");
        assert_eq!(y[1].re, 3.5, "{q}");
    }

    #[test]
    fn double_negation_folds() {
        // f0 = -in(0); f1 = -f0; out(0) = f1  ==>  out(0) = in(0) copy.
        use spl_icode::Affine;
        let p = IProgram {
            instrs: vec![
                Instr::Un {
                    op: UnOp::Neg,
                    dst: Place::F(0),
                    a: Value::vec(VecKind::In, 0),
                },
                Instr::Un {
                    op: UnOp::Neg,
                    dst: Place::F(1),
                    a: Value::f(0),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::constant(0),
                    }),
                    a: Value::f(1),
                },
            ],
            n_in: 1,
            n_out: 1,
            n_f: 2,
            ..IProgram::empty()
        };
        let o = optimize(&p).unwrap();
        // All negations vanish.
        assert!(
            o.instrs
                .iter()
                .all(|i| !matches!(i, Instr::Un { op: UnOp::Neg, .. })),
            "{o}"
        );
        let x = [Complex::real(3.5)];
        let y = spl_icode::interp::run(&o, &x).unwrap();
        assert_eq!(y[0].re, 3.5);
    }

    #[test]
    fn optimize_with_stats_counts_work() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(F 4)").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&unroll_all(&p).unwrap()).unwrap();
        let p = scalarize(&p);
        let (o, stats) = optimize_with_stats(&p).unwrap();
        assert_eq!(stats.instrs_before, p.static_instr_count() as u64);
        assert_eq!(stats.instrs_after, o.static_instr_count() as u64);
        assert!(stats.instrs_after < stats.instrs_before);
        // The unrolled F4 is full of W(4,k) constants to fold.
        assert!(stats.constants_folded > 0);
        assert!(stats.dce_removed > 0);
    }

    #[test]
    fn redundant_store_elided() {
        // out(0) = in(0); out(0) = in(0)  →  single copy.
        use spl_icode::Affine;
        let mk = || Instr::Un {
            op: UnOp::Copy,
            dst: Place::Vec(VecRef {
                kind: VecKind::Out,
                idx: Affine::constant(0),
            }),
            a: Value::vec(VecKind::In, 0),
        };
        let p = IProgram {
            instrs: vec![mk(), mk()],
            n_in: 1,
            n_out: 1,
            ..IProgram::empty()
        };
        let o = value_number(&p);
        assert_eq!(o.instrs.len(), 1);
    }

    /// A structurally valid program except for a provenance map that is
    /// non-empty but shorter than the instruction list.
    fn misaligned_prov_program() -> IProgram {
        IProgram {
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::F(0),
                    a: Value::vec(VecKind::In, 0),
                    b: Value::Int(1),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(0),
                    a: Value::f(0),
                },
            ],
            prov: vec![0], // one entry for two instructions
            n_in: 1,
            n_out: 1,
            n_f: 1,
            ..IProgram::empty()
        }
    }

    #[test]
    fn dce_rejects_misaligned_provenance() {
        // Regression: this used to die on `expect("kept mask covers
        // prov")` deep inside the retain loop.
        let err = dce(&misaligned_prov_program()).unwrap_err();
        assert!(
            matches!(err, CompileError::MalformedIcode(ref m) if m.contains("provenance")),
            "{err:?}"
        );
    }

    #[test]
    fn optimize_rejects_misaligned_provenance() {
        let err = optimize(&misaligned_prov_program()).unwrap_err();
        assert!(matches!(err, CompileError::MalformedIcode(_)), "{err:?}");
    }

    #[test]
    fn every_standard_pass_rejects_misaligned_provenance() {
        // Each registered pass must fail typed, not panic, on malformed
        // input (the old monolith's `expect`/`unreachable!` sites).
        let p = misaligned_prov_program();
        for pass in crate::passes::registered_passes() {
            let mut prog = p.clone();
            let err = pass
                .run(&mut prog, &mut OptStats::default())
                .expect_err(pass.name());
            assert!(
                matches!(err, CompileError::MalformedIcode(_)),
                "{}: {err:?}",
                pass.name()
            );
        }
    }

    #[test]
    fn forward_substitute_handles_malformed_copy_chain() {
        // A copy whose source was never defined in its region is left
        // alone rather than rejected — the typed-error paths are reserved
        // for structural violations.
        let p = IProgram {
            instrs: vec![Instr::Un {
                op: UnOp::Copy,
                dst: out_at(0),
                a: Value::f(7),
            }],
            n_in: 1,
            n_out: 1,
            n_f: 8,
            ..IProgram::empty()
        };
        let q = forward_substitute(&p).unwrap();
        assert_eq!(q.instrs.len(), 1);
    }

    #[test]
    fn standard_passes_converge_and_report_changed_honestly() {
        // Every standard pass must reach its own fixed point within a few
        // runs, and a run that reports Unchanged must not have mutated
        // the program (the fixed-point loop depends on both).
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(F 4)").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&unroll_all(&p).unwrap()).unwrap();
        for pass in crate::passes::registered_passes() {
            let mut prog = p.clone();
            let mut stats = OptStats::default();
            let mut converged = false;
            for _ in 0..8 {
                let before = prog.clone();
                let result = pass.run(&mut prog, &mut stats).unwrap();
                assert_eq!(
                    result == PassResult::Unchanged,
                    before == prog,
                    "{} lied about Changed/Unchanged",
                    pass.name()
                );
                if result == PassResult::Unchanged {
                    converged = true;
                    break;
                }
            }
            assert!(converged, "{} did not converge in 8 runs", pass.name());
        }
    }
}
