//! The default optimizations (paper Section 3.4): constant folding, copy
//! propagation, common subexpression elimination, and dead code
//! elimination, applied "in a single pass using a value numbering
//! algorithm. Both scalar variables and array elements are handled."
//!
//! Value numbers are tracked through straight-line regions; state is reset
//! at loop boundaries (conservative but simple — exactly what generated
//! SPL code needs, since loop bodies are self-contained).
//!
//! # Complexity
//!
//! Several passes here trade asymptotics for simplicity: `invalidate`
//! scans the tracked-place table on every vector write, `dce` is a
//! whole-program fixpoint, and `forward_substitute` restarts its scan
//! after each applied fix when loops are present. On the sizes the
//! compiler actually produces (a few thousand instructions for a 2²⁰
//! plan with 64-point unrolled leaves) the full optimization pipeline
//! measures in the tens of milliseconds, so none of these are worth
//! their smarter replacements yet.

use std::collections::{HashMap, HashSet};

use spl_icode::{BinOp, IProgram, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
use spl_numeric::Complex;

/// Per-pass work counters for one [`optimize`] run, reported through the
/// telemetry layer (`optimize.*` counters in `splc --stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Static instruction count entering the pipeline.
    pub instrs_before: u64,
    /// Static instruction count after compaction.
    pub instrs_after: u64,
    /// Constant-folded operations (binary folds and negations of
    /// constants) in value numbering.
    pub constants_folded: u64,
    /// Recomputations replaced by a reuse of an existing value number.
    pub cse_hits: u64,
    /// Copies eliminated by sinking a definition into its use
    /// (forward substitution).
    pub copies_propagated: u64,
    /// Instructions removed as dead (including pruned empty loops).
    pub dce_removed: u64,
}

/// Runs the full default-optimization pipeline: value numbering, forward
/// substitution of single-use registers, dead-code elimination, and
/// register compaction.
pub fn optimize(prog: &IProgram) -> IProgram {
    optimize_with_stats(prog).0
}

/// [`optimize`], also reporting what each pass did.
pub fn optimize_with_stats(prog: &IProgram) -> (IProgram, OptStats) {
    let mut stats = OptStats {
        instrs_before: prog.static_instr_count() as u64,
        ..Default::default()
    };
    let p = value_number_counted(prog, &mut stats);
    let p = forward_substitute_counted(&p, &mut stats);
    let p = dce_counted(&p, &mut stats);
    let p = compact(&p);
    stats.instrs_after = p.static_instr_count() as u64;
    (p, stats)
}

// ---------------------------------------------------------------------
// Value numbering
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(u64, u64),
    Loop(LoopVar),
    /// The bool separates integer-destination arithmetic from
    /// floating-point arithmetic: `$r = a / b` truncates where
    /// `$f = a / b` does not, so the two must never share a value number.
    Bin(BinOp, bool, u32, u32),
    Neg(u32),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PKey {
    F(u32),
    R(u32),
    Vec(VecKind, i64, Vec<(i64, u32)>),
}

fn pkey(p: &Place) -> PKey {
    match p {
        Place::F(k) => PKey::F(*k),
        Place::R(k) => PKey::R(*k),
        Place::Vec(v) => PKey::Vec(
            v.kind,
            v.idx.c,
            v.idx.terms.iter().map(|&(c, lv)| (c, lv.0)).collect(),
        ),
    }
}

#[derive(Default)]
struct Vn {
    next: u32,
    keys: HashMap<Key, u32>,
    place_vn: HashMap<PKey, u32>,
    vn_const: HashMap<u32, Complex>,
    vn_home: HashMap<u32, Place>,
    /// result-vn -> operand-vn for negations, so `-(-x)` folds to `x`.
    neg_src: HashMap<u32, u32>,
}

impl Vn {
    fn fresh(&mut self) -> u32 {
        self.next += 1;
        self.next - 1
    }

    fn reset(&mut self) {
        self.keys.clear();
        self.place_vn.clear();
        self.vn_const.clear();
        self.vn_home.clear();
        self.neg_src.clear();
    }

    fn const_vn(&mut self, c: Complex) -> u32 {
        let key = Key::Const(c.re.to_bits(), c.im.to_bits());
        if let Some(&vn) = self.keys.get(&key) {
            return vn;
        }
        let vn = self.fresh();
        self.keys.insert(key, vn);
        self.vn_const.insert(vn, c);
        vn
    }

    fn value_vn(&mut self, v: &Value) -> u32 {
        match v {
            Value::Const(c) => self.const_vn(*c),
            Value::Int(i) => self.const_vn(Complex::real(*i as f64)),
            Value::LoopIdx(lv) => {
                let key = Key::Loop(*lv);
                if let Some(&vn) = self.keys.get(&key) {
                    return vn;
                }
                let vn = self.fresh();
                self.keys.insert(key, vn);
                vn
            }
            Value::Place(p) => {
                let pk = pkey(p);
                if let Some(&vn) = self.place_vn.get(&pk) {
                    return vn;
                }
                let vn = self.fresh();
                self.place_vn.insert(pk, vn);
                self.vn_home.entry(vn).or_insert_with(|| p.clone());
                vn
            }
            Value::Intrinsic(_, _) => self.fresh(),
        }
    }

    /// The best operand for a value number: a constant if known, the
    /// value's current home if one is tracked, otherwise the original
    /// operand (which is always valid for operand positions, since it was
    /// just read). Reads of the read-only input and tables are kept as-is:
    /// renaming them through a register adds a copy for no benefit.
    fn best_operand(&self, vn: u32, original: &Value) -> Value {
        if let Some(&c) = self.vn_const.get(&vn) {
            return Value::Const(c);
        }
        if let Value::Place(Place::Vec(v)) = original {
            if matches!(v.kind, VecKind::In | VecKind::Table(_)) {
                return original.clone();
            }
        }
        match self.vn_home.get(&vn) {
            Some(home @ (Place::F(_) | Place::R(_))) => Value::Place(home.clone()),
            Some(home @ Place::Vec(v)) if matches!(v.kind, VecKind::In | VecKind::Table(_)) => {
                Value::Place(home.clone())
            }
            _ => original.clone(),
        }
    }

    /// An operand that *re-materializes* a value number without reference
    /// to any original operand: a constant or a live home. `None` when the
    /// value is no longer available anywhere.
    fn materialize(&self, vn: u32) -> Option<Value> {
        if let Some(&c) = self.vn_const.get(&vn) {
            return Some(Value::Const(c));
        }
        self.vn_home.get(&vn).map(|h| Value::Place(h.clone()))
    }

    /// Invalidates state for a write to `dst`.
    fn invalidate(&mut self, dst: &Place) {
        let dead: Vec<PKey> = match dst {
            Place::F(_) | Place::R(_) => vec![pkey(dst)],
            Place::Vec(v) => {
                let symbolic = v.idx.as_const().is_none();
                self.place_vn
                    .keys()
                    .filter(|pk| match pk {
                        PKey::Vec(kind, c, terms) => {
                            *kind == v.kind && (symbolic || !terms.is_empty() || *c == v.idx.c)
                        }
                        _ => false,
                    })
                    .cloned()
                    .collect()
            }
        };
        for pk in dead {
            self.place_vn.remove(&pk);
        }
        // Homes that live in the clobbered storage are no longer valid.
        match dst {
            Place::Vec(v) => {
                self.vn_home.retain(|_, home| match home {
                    Place::Vec(h) => {
                        h.kind != v.kind
                            || (v.idx.as_const().is_some()
                                && h.idx.as_const().is_some()
                                && h.idx.c != v.idx.c)
                    }
                    _ => true,
                });
            }
            scalar => {
                self.vn_home.retain(|_, home| home != scalar);
            }
        }
    }

    fn record_write(&mut self, dst: &Place, vn: u32) {
        self.invalidate(dst);
        self.place_vn.insert(pkey(dst), vn);
        match self.vn_home.get(&vn) {
            // Scalar homes are good; reads of the read-only input or a
            // constant table are even better (they can never be
            // invalidated) — keep either.
            Some(Place::F(_)) | Some(Place::R(_)) => {}
            Some(Place::Vec(v)) if matches!(v.kind, VecKind::In | VecKind::Table(_)) => {}
            _ => {
                self.vn_home.insert(vn, dst.clone());
            }
        }
    }
}

fn is_int_dst(dst: &Place) -> bool {
    matches!(dst, Place::R(_))
}

fn fold_bin(op: BinOp, a: Complex, b: Complex, int: bool) -> Option<Complex> {
    if int {
        // The interpreter rejects fractional or complex operands in
        // integer positions; folding must not paper over that.
        if !a.is_real() || !b.is_real() || a.re.fract() != 0.0 || b.re.fract() != 0.0 {
            return None;
        }
        let (x, y) = (a.re as i64, b.re as i64);
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x / y
            }
        };
        return Some(Complex::real(r as f64));
    }
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == Complex::ZERO {
                return None;
            }
            a / b
        }
    })
}

/// Single-pass value numbering: constant folding, algebraic
/// simplification, copy propagation, and CSE.
pub fn value_number(prog: &IProgram) -> IProgram {
    value_number_counted(prog, &mut OptStats::default())
}

fn value_number_counted(prog: &IProgram, stats: &mut OptStats) -> IProgram {
    let mut st = Vn::default();
    let mut out = prog.clone();
    let mut instrs = Vec::with_capacity(prog.instrs.len());
    // Provenance is re-attached lazily: at each iteration's start, any
    // output emitted by the *previous* source instruction (each emits 0
    // or 1) inherits that instruction's formula-node id. The arms below
    // `continue` freely, so the top of the loop is the one safe place.
    let prov_in = prog.prov_slice();
    let has_prov = !prov_in.is_empty();
    let mut prov_out: Vec<u32> = Vec::with_capacity(if has_prov { prog.instrs.len() } else { 0 });
    let mut cur_prov = 0u32;
    for (src_idx, ins) in prog.instrs.iter().enumerate() {
        if has_prov {
            prov_out.resize(instrs.len(), cur_prov);
            cur_prov = prov_in[src_idx];
        }
        match ins {
            Instr::DoStart { .. } | Instr::DoEnd => {
                st.reset();
                instrs.push(ins.clone());
            }
            Instr::Un { op, dst, a } => {
                let a_vn = st.value_vn(a);
                match op {
                    UnOp::Copy => {
                        emit_result(&mut st, &mut instrs, dst, a_vn, None, a);
                    }
                    UnOp::Neg => {
                        if let Some(&c) = st.vn_const.get(&a_vn) {
                            stats.constants_folded += 1;
                            let vn = st.const_vn(-c);
                            emit_result(&mut st, &mut instrs, dst, vn, None, &Value::Const(-c));
                            continue;
                        }
                        // -(-x) = x: if the operand is itself a negation,
                        // reuse its source (when still available).
                        if let Some(&src) = st.neg_src.get(&a_vn) {
                            if let Some(val) = st.materialize(src) {
                                if st.place_vn.get(&pkey(dst)) == Some(&src) {
                                    continue;
                                }
                                st.record_write(dst, src);
                                if let Value::Place(p) = &val {
                                    if p == dst {
                                        continue;
                                    }
                                }
                                instrs.push(Instr::Un {
                                    op: UnOp::Copy,
                                    dst: dst.clone(),
                                    a: val,
                                });
                                continue;
                            }
                        }
                        let key = Key::Neg(a_vn);
                        let reuse = st
                            .keys
                            .get(&key)
                            .copied()
                            .and_then(|vn| st.materialize(vn).map(|val| (vn, val)));
                        match reuse {
                            Some((vn, val)) => {
                                stats.cse_hits += 1;
                                if st.place_vn.get(&pkey(dst)) == Some(&vn) {
                                    continue;
                                }
                                st.record_write(dst, vn);
                                if let Value::Place(p) = &val {
                                    if p == dst {
                                        continue;
                                    }
                                }
                                instrs.push(Instr::Un {
                                    op: UnOp::Copy,
                                    dst: dst.clone(),
                                    a: val,
                                });
                            }
                            None => {
                                let vn = match st.keys.get(&key) {
                                    Some(&vn) => vn,
                                    None => {
                                        let vn = st.fresh();
                                        st.keys.insert(key, vn);
                                        vn
                                    }
                                };
                                st.neg_src.insert(vn, a_vn);
                                let new = Instr::Un {
                                    op: UnOp::Neg,
                                    dst: dst.clone(),
                                    a: st.best_operand(a_vn, a),
                                };
                                st.record_write(dst, vn);
                                instrs.push(new);
                            }
                        }
                    }
                }
            }
            Instr::Bin { op, dst, a, b } => {
                let a_vn = st.value_vn(a);
                let b_vn = st.value_vn(b);
                let int = is_int_dst(dst);
                let ca = st.vn_const.get(&a_vn).copied();
                let cb = st.vn_const.get(&b_vn).copied();
                // Constant folding.
                if let (Some(x), Some(y)) = (ca, cb) {
                    if let Some(r) = fold_bin(*op, x, y, int) {
                        stats.constants_folded += 1;
                        let vn = st.const_vn(r);
                        emit_result(&mut st, &mut instrs, dst, vn, None, a);
                        continue;
                    }
                }
                // Algebraic simplifications. Each case carries the operand
                // (value number + original) that the result reduces to.
                let one = Complex::ONE;
                let zero = Complex::ZERO;
                let neg_one = Complex::real(-1.0);
                // Produces the value number for -oval, together with an
                // instruction computing it into dst: a copy when the
                // negation is still live somewhere, a recomputation
                // otherwise, nothing when it is a known constant (the
                // const branch of emit_result covers it).
                let neg_of = |st: &mut Vn, ovn: u32, oval: &Value, dst: &Place| {
                    // -(-x) = x when the operand is itself a negation.
                    if let Some(&src) = st.neg_src.get(&ovn) {
                        if let Some(val) = st.materialize(src) {
                            return (
                                src,
                                Some(Instr::Un {
                                    op: UnOp::Copy,
                                    dst: dst.clone(),
                                    a: val,
                                }),
                            );
                        }
                    }
                    let key = Key::Neg(ovn);
                    if let Some(&vn) = st.keys.get(&key) {
                        if st.vn_const.contains_key(&vn) {
                            return (vn, None);
                        }
                        let ins = match st.materialize(vn) {
                            Some(val) => Instr::Un {
                                op: UnOp::Copy,
                                dst: dst.clone(),
                                a: val,
                            },
                            None => Instr::Un {
                                op: UnOp::Neg,
                                dst: dst.clone(),
                                a: st.best_operand(ovn, oval),
                            },
                        };
                        return (vn, Some(ins));
                    }
                    let vn = st.fresh();
                    st.keys.insert(key, vn);
                    st.neg_src.insert(vn, ovn);
                    (
                        vn,
                        Some(Instr::Un {
                            op: UnOp::Neg,
                            dst: dst.clone(),
                            a: st.best_operand(ovn, oval),
                        }),
                    )
                };
                // (result vn, prebuilt instr, original operand for the vn)
                let simplified: Option<(u32, Option<Instr>, Value)> = match op {
                    BinOp::Add => {
                        if ca == Some(zero) {
                            Some((b_vn, None, b.clone()))
                        } else if cb == Some(zero) {
                            Some((a_vn, None, a.clone()))
                        } else {
                            None
                        }
                    }
                    BinOp::Sub => {
                        if cb == Some(zero) {
                            Some((a_vn, None, a.clone()))
                        } else if a_vn == b_vn {
                            let vn = st.const_vn(zero);
                            Some((vn, None, Value::Const(zero)))
                        } else if ca == Some(zero) {
                            let (vn, pre) = neg_of(&mut st, b_vn, b, dst);
                            Some((vn, pre, b.clone()))
                        } else {
                            None
                        }
                    }
                    BinOp::Mul => {
                        if ca == Some(one) {
                            Some((b_vn, None, b.clone()))
                        } else if cb == Some(one) {
                            Some((a_vn, None, a.clone()))
                        } else if ca == Some(zero) || cb == Some(zero) {
                            let vn = st.const_vn(zero);
                            Some((vn, None, Value::Const(zero)))
                        } else if ca == Some(neg_one) {
                            let (vn, pre) = neg_of(&mut st, b_vn, b, dst);
                            Some((vn, pre, b.clone()))
                        } else if cb == Some(neg_one) {
                            let (vn, pre) = neg_of(&mut st, a_vn, a, dst);
                            Some((vn, pre, a.clone()))
                        } else {
                            None
                        }
                    }
                    BinOp::Div => {
                        if cb == Some(one) {
                            Some((a_vn, None, a.clone()))
                        } else {
                            None
                        }
                    }
                };
                if let Some((vn, emit, orig)) = simplified {
                    emit_result(&mut st, &mut instrs, dst, vn, emit, &orig);
                    continue;
                }
                // CSE: canonicalize commutative operand order.
                let (ka, kb) = match op {
                    BinOp::Add | BinOp::Mul if a_vn > b_vn => (b_vn, a_vn),
                    _ => (a_vn, b_vn),
                };
                let key = Key::Bin(*op, int, ka, kb);
                let reuse = st
                    .keys
                    .get(&key)
                    .copied()
                    .and_then(|vn| st.materialize(vn).map(|val| (vn, val)));
                if let Some((vn, val)) = reuse {
                    // The value is still available somewhere: reuse it.
                    stats.cse_hits += 1;
                    if st.place_vn.get(&pkey(dst)) == Some(&vn) {
                        continue; // already there
                    }
                    st.record_write(dst, vn);
                    if let Value::Place(p) = &val {
                        if p == dst {
                            continue;
                        }
                    }
                    instrs.push(Instr::Un {
                        op: UnOp::Copy,
                        dst: dst.clone(),
                        a: val,
                    });
                } else {
                    let vn = match st.keys.get(&key) {
                        Some(&vn) => vn, // known but unavailable: recompute
                        None => {
                            let vn = st.fresh();
                            st.keys.insert(key, vn);
                            vn
                        }
                    };
                    let new = Instr::Bin {
                        op: *op,
                        dst: dst.clone(),
                        a: st.best_operand(a_vn, a),
                        b: st.best_operand(b_vn, b),
                    };
                    st.record_write(dst, vn);
                    instrs.push(new);
                }
            }
        }
    }
    if has_prov {
        prov_out.resize(instrs.len(), cur_prov);
    }
    out.instrs = instrs;
    out.prov = prov_out;
    out
}

/// Emits the result of an instruction whose value number is already known:
/// either the provided replacement instruction, a copy from the value's
/// home, or nothing when the destination already holds the value.
fn emit_result(
    st: &mut Vn,
    instrs: &mut Vec<Instr>,
    dst: &Place,
    vn: u32,
    prebuilt: Option<Instr>,
    original: &Value,
) {
    // Destination already holds this value: the store is redundant.
    if st.place_vn.get(&pkey(dst)) == Some(&vn) {
        return;
    }
    if let Some(ins) = prebuilt {
        st.record_write(dst, vn);
        instrs.push(ins);
        return;
    }
    // `original` is contractually value-equal to `vn` here; prefer a known
    // constant, then the original operand.
    let a = match st.vn_const.get(&vn) {
        Some(&c) => Value::Const(c),
        None => original.clone(),
    };
    // A copy of a place onto itself is a no-op.
    if let Value::Place(p) = &a {
        if p == dst {
            st.record_write(dst, vn);
            return;
        }
    }
    st.record_write(dst, vn);
    instrs.push(Instr::Un {
        op: UnOp::Copy,
        dst: dst.clone(),
        a,
    });
}

// ---------------------------------------------------------------------
// Forward substitution
// ---------------------------------------------------------------------

fn may_alias(a: &VecRef, b: &VecRef) -> bool {
    if a.kind != b.kind {
        return false;
    }
    match (a.idx.as_const(), b.idx.as_const()) {
        (Some(x), Some(y)) => x == y,
        _ => {
            // Same symbolic terms, different constant: provably disjoint.
            !(a.idx.terms == b.idx.terms && a.idx.c != b.idx.c)
        }
    }
}

fn place_conflicts(written: &Place, used: &Place) -> bool {
    match (written, used) {
        (Place::Vec(a), Place::Vec(b)) => may_alias(a, b),
        (a, b) => a == b,
    }
}

fn instr_accesses_place(ins: &Instr, p: &Place) -> bool {
    let mut hit = false;
    if let Some(dst) = ins.dst() {
        hit |= place_conflicts(dst, p) || place_conflicts(p, dst);
    }
    ins.for_each_value(&mut |v| {
        fn scan(v: &Value, p: &Place, hit: &mut bool) {
            match v {
                Value::Place(q) => *hit |= place_conflicts(p, q) || place_conflicts(q, p),
                Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, p, hit)),
                _ => {}
            }
        }
        scan(v, p, &mut hit);
    });
    hit
}

/// The *outermost* enclosing loop region of each instruction (the whole
/// program when not inside any loop). A value written inside nested
/// loops can flow to a positionally-earlier read anywhere within this
/// window via a back-edge, so the forward-substitution safety check uses
/// it rather than the innermost region.
fn outermost_regions(instrs: &[Instr]) -> Vec<(usize, usize)> {
    let mut regions = vec![(0usize, instrs.len()); instrs.len()];
    let mut depth = 0usize;
    let mut top_start = 0usize; // body start of the depth-1 loop
    let mut members: Vec<usize> = Vec::new();
    for (k, ins) in instrs.iter().enumerate() {
        match ins {
            Instr::DoStart { .. } => {
                if depth == 0 {
                    top_start = k + 1;
                    members.clear();
                } else {
                    members.push(k);
                }
                depth += 1;
            }
            Instr::DoEnd => {
                depth -= 1;
                if depth == 0 {
                    for &m in &members {
                        regions[m] = (top_start, k);
                    }
                    members.clear();
                } else {
                    members.push(k);
                }
            }
            _ => {
                if depth > 0 {
                    members.push(k);
                }
            }
        }
    }
    regions
}

/// Scalar-register identity for the position tables.
fn scalar_id(p: &Place) -> Option<(bool, u32)> {
    match p {
        Place::F(k) => Some((true, *k)),
        Place::R(k) => Some((false, *k)),
        Place::Vec(_) => None,
    }
}

/// Sorted read/write positions per scalar register, kept up to date as
/// fixes are applied (positions are stable because removed instructions
/// are tombstoned, not spliced out).
#[derive(Default)]
struct ScalarIndex {
    reads: HashMap<(bool, u32), Vec<usize>>,
    writes: HashMap<(bool, u32), Vec<usize>>,
}

impl ScalarIndex {
    fn build(instrs: &[Instr]) -> ScalarIndex {
        let mut idx = ScalarIndex::default();
        for (k, ins) in instrs.iter().enumerate() {
            if let Some(dst) = ins.dst() {
                if let Some(id) = scalar_id(dst) {
                    idx.writes.entry(id).or_default().push(k);
                }
            }
            ins.for_each_value(&mut |v| {
                fn scan(v: &Value, k: usize, idx: &mut ScalarIndex) {
                    match v {
                        Value::Place(p) => {
                            if let Some(id) = scalar_id(p) {
                                idx.reads.entry(id).or_default().push(k);
                            }
                        }
                        Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, k, idx)),
                        _ => {}
                    }
                }
                scan(v, k, &mut idx);
            });
        }
        idx
    }

    fn remove(positions: &mut Vec<usize>, pos: usize) {
        if let Ok(k) = positions.binary_search(&pos) {
            positions.remove(k);
        }
    }

    /// First position in `list` strictly greater than `after` and below
    /// `before`.
    fn first_in(list: Option<&Vec<usize>>, after: usize, before: usize) -> Option<usize> {
        let list = list?;
        let k = list.partition_point(|&p| p <= after);
        list.get(k).copied().filter(|&p| p < before)
    }

    /// Last position in `list` within `[from, to)`.
    fn last_in(list: Option<&Vec<usize>>, from: usize, to: usize) -> Option<usize> {
        let list = list?;
        let k = list.partition_point(|&p| p < to);
        k.checked_sub(1).map(|k| list[k]).filter(|&p| p >= from)
    }
}

/// Does the instruction read place `p` (non-allocating)?
fn reads_place(ins: &Instr, p: &Place) -> bool {
    let mut hit = false;
    ins.for_each_value(&mut |v| {
        fn scan(v: &Value, p: &Place, hit: &mut bool) {
            match v {
                Value::Place(q) => *hit |= q == p,
                Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, p, hit)),
                _ => {}
            }
        }
        scan(v, p, &mut hit);
    });
    hit
}

/// Does the instruction write anything that may alias one of `places`?
fn clobbers_any(ins: &Instr, places: &[Place]) -> bool {
    match ins.dst() {
        Some(w) => places.iter().any(|q| place_conflicts(w, q)),
        None => false,
    }
}

fn operand_places(ins: &Instr) -> Vec<Place> {
    let mut out = Vec::new();
    ins.for_each_value(&mut |v| {
        fn scan(v: &Value, out: &mut Vec<Place>) {
            match v {
                Value::Place(p) => out.push(p.clone()),
                Value::Intrinsic(_, args) => args.iter().for_each(|a| scan(a, out)),
                _ => {}
            }
        }
        scan(v, &mut out);
    });
    out
}

/// Sinks the definition of a scalar register into a later copy of it:
/// `f0 = a ⊕ b; ...; y = f0` becomes `y = a ⊕ b` (the paper-style direct
/// stores visible in its generated-code listings).
///
/// A rewrite is applied only when, within the copy's straight-line
/// neighbourhood and innermost loop region, the register's value flowing
/// from that definition is consumed *only* by the copy — including across
/// the loop back-edge.
#[allow(clippy::mut_range_bound)] // `i` advances only when leaving the scan
pub fn forward_substitute(prog: &IProgram) -> IProgram {
    forward_substitute_counted(prog, &mut OptStats::default())
}

fn forward_substitute_counted(prog: &IProgram, stats: &mut OptStats) -> IProgram {
    let mut instrs = prog.instrs.clone();
    let outer = outermost_regions(&instrs);
    let mut alive = vec![true; instrs.len()];
    let mut idx = ScalarIndex::build(&instrs);
    loop {
        let mut changed = false;
        let mut i = 0;
        'outer: while i < instrs.len() {
            if !alive[i] {
                i += 1;
                continue;
            }
            let Instr::Un {
                op: UnOp::Copy,
                dst,
                a: Value::Place(p @ (Place::F(_) | Place::R(_))),
            } = &instrs[i]
            else {
                i += 1;
                continue;
            };
            let (dst, p) = (dst.clone(), p.clone());
            let pid = scalar_id(&p).expect("scalar source");
            // Never move a definition across register classes: an `$r`
            // definition executes integer arithmetic, and retargeting it
            // to an `$f`/vector destination (or vice versa) would change
            // its semantics.
            match (&p, &dst) {
                (Place::R(_), Place::R(_)) => {}
                (Place::R(_), _) | (_, Place::R(_)) => {
                    i += 1;
                    continue;
                }
                _ => {}
            }
            // Find the defining instruction within this straight-line run.
            let mut j = i;
            let mut found = false;
            while j > 0 {
                j -= 1;
                if !alive[j] {
                    continue;
                }
                match &instrs[j] {
                    Instr::DoStart { .. } | Instr::DoEnd => break,
                    ins if ins.dst() == Some(&p) => {
                        found = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !found {
                i += 1;
                continue;
            }
            // (a) No other read of p between the definition and the copy,
            // (b) the copy destination is untouched in between,
            // (c) the definition's operands are not clobbered in between.
            let def_ops = operand_places(&instrs[j]);
            let blocked = ((j + 1)..i).any(|k| {
                alive[k]
                    && (reads_place(&instrs[k], &p)
                        || instr_accesses_place(&instrs[k], &dst)
                        || clobbers_any(&instrs[k], &def_ops))
            });
            if blocked {
                i += 1;
                continue 'outer;
            }
            // (d) After the copy, the next access to p anywhere in the
            // remaining program must be a write (its current value dies
            // before being read again). An instruction that reads *and*
            // writes p (a recurrence) appears in both tables at the same
            // position: the read matters first, hence `<=`.
            let end = instrs.len();
            let next_read = ScalarIndex::first_in(idx.reads.get(&pid), i, end);
            let next_write = ScalarIndex::first_in(idx.writes.get(&pid), i, end);
            if let Some(r) = next_read {
                if next_write.is_none_or(|w| r <= w) {
                    i += 1;
                    continue;
                }
            }
            // (e) Across a loop back-edge: a read of p positionally before
            // the definition — anywhere inside the *outermost* loop
            // enclosing it — observes the previous iteration's last write
            // of p. Unsafe if such a read exists and the definition being
            // retargeted is that last write.
            let (ostart, oend) = outer[j.min(outer.len() - 1)];
            if oend != instrs.len() {
                // The window includes j itself: a definition that also
                // READS p (a recurrence like `f0 = in - f0`) is its own
                // back-edge consumer.
                let head_read =
                    ScalarIndex::first_in(idx.reads.get(&pid), ostart.wrapping_sub(1), j + 1)
                        .is_some();
                if head_read {
                    let last_write = ScalarIndex::last_in(idx.writes.get(&pid), ostart, oend);
                    if last_write == Some(j) {
                        i += 1;
                        continue;
                    }
                }
            }
            // Apply: retarget the definition, tombstone the copy, and
            // update the position tables.
            match &mut instrs[j] {
                Instr::Bin { dst: d, .. } | Instr::Un { dst: d, .. } => *d = dst.clone(),
                _ => unreachable!("definition is arithmetic"),
            }
            alive[i] = false;
            if let Some(w) = idx.writes.get_mut(&pid) {
                ScalarIndex::remove(w, j);
            }
            if let Some(r) = idx.reads.get_mut(&pid) {
                ScalarIndex::remove(r, i);
            }
            if let Some(did) = scalar_id(&dst) {
                let w = idx.writes.entry(did).or_default();
                ScalarIndex::remove(w, i);
                if let Err(k) = w.binary_search(&j) {
                    w.insert(k, j);
                }
            }
            stats.copies_propagated += 1;
            changed = true;
            i += 1;
        }
        if !changed {
            break;
        }
    }
    let mut out = prog.clone();
    // Tombstoned copies vanish; retargeted definitions stay in place,
    // so the survivor mask keeps provenance aligned.
    out.prov = prog
        .prov_slice()
        .iter()
        .zip(&alive)
        .filter_map(|(&p, &a)| a.then_some(p))
        .collect();
    out.instrs = instrs
        .into_iter()
        .zip(alive)
        .filter_map(|(ins, a)| a.then_some(ins))
        .collect();
    out
}

// ---------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------

/// Iteratively removes arithmetic instructions whose destination is never
/// read (output-vector writes are always live), then prunes empty loops.
pub fn dce(prog: &IProgram) -> IProgram {
    dce_counted(prog, &mut OptStats::default())
}

fn dce_counted(prog: &IProgram, stats: &mut OptStats) -> IProgram {
    let initial = prog.instrs.len();
    let mut instrs = prog.instrs.clone();
    let has_prov = !prog.prov_slice().is_empty();
    let mut prov = prog.prov_slice().to_vec();
    loop {
        // Whole-program read sets (position-insensitive: sound for loops).
        let mut scalar_reads: HashSet<PKey> = HashSet::new();
        let mut elem_reads: HashSet<(VecKind, i64)> = HashSet::new();
        let mut sym_reads: HashSet<VecKind> = HashSet::new();
        for ins in &instrs {
            ins.for_each_value(&mut |v| {
                collect_reads(v, &mut scalar_reads, &mut elem_reads, &mut sym_reads);
            });
        }
        let live = |dst: &Place| -> bool {
            match dst {
                Place::Vec(VecRef {
                    kind: VecKind::Out, ..
                }) => true,
                Place::F(_) | Place::R(_) => scalar_reads.contains(&pkey(dst)),
                Place::Vec(v) => {
                    if sym_reads.contains(&v.kind) {
                        return true;
                    }
                    match v.idx.as_const() {
                        Some(c) => elem_reads.contains(&(v.kind, c)),
                        None => {
                            // Symbolic write: live if any element of the
                            // vector is read.
                            elem_reads.iter().any(|(k, _)| *k == v.kind)
                        }
                    }
                }
            }
        };
        let before = instrs.len();
        let mut kept = Vec::with_capacity(instrs.len());
        instrs.retain(|ins| {
            let keep = match ins {
                Instr::Bin { dst, .. } | Instr::Un { dst, .. } => live(dst),
                _ => true,
            };
            kept.push(keep);
            keep
        });
        if has_prov {
            let mut it = kept.iter();
            prov.retain(|_| *it.next().expect("kept mask covers prov"));
        }
        // Remove empty loops.
        loop {
            let mut removed = false;
            let mut k = 0;
            while k + 1 < instrs.len() {
                if matches!(instrs[k], Instr::DoStart { .. })
                    && matches!(instrs[k + 1], Instr::DoEnd)
                {
                    instrs.drain(k..=k + 1);
                    if has_prov {
                        prov.drain(k..=k + 1);
                    }
                    removed = true;
                } else {
                    k += 1;
                }
            }
            if !removed {
                break;
            }
        }
        if instrs.len() == before {
            break;
        }
    }
    stats.dce_removed += (initial - instrs.len()) as u64;
    let mut out = prog.clone();
    out.instrs = instrs;
    out.prov = prov;
    out
}

fn collect_reads(
    v: &Value,
    scalars: &mut HashSet<PKey>,
    elems: &mut HashSet<(VecKind, i64)>,
    syms: &mut HashSet<VecKind>,
) {
    match v {
        Value::Place(p @ (Place::F(_) | Place::R(_))) => {
            scalars.insert(pkey(p));
        }
        Value::Place(Place::Vec(vr)) => match vr.idx.as_const() {
            Some(c) => {
                elems.insert((vr.kind, c));
            }
            None => {
                syms.insert(vr.kind);
            }
        },
        Value::Intrinsic(_, args) => {
            for a in args {
                collect_reads(a, scalars, elems, syms);
            }
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------

/// Renumbers `$f`/`$r` registers densely and drops unused temps and
/// tables, so declarations in the generated code stay tidy.
pub fn compact(prog: &IProgram) -> IProgram {
    let mut f_map: HashMap<u32, u32> = HashMap::new();
    let mut r_map: HashMap<u32, u32> = HashMap::new();
    let mut t_map: HashMap<u32, u32> = HashMap::new();
    let mut tbl_map: HashMap<u32, u32> = HashMap::new();

    let note_place = |p: &Place,
                      f_map: &mut HashMap<u32, u32>,
                      r_map: &mut HashMap<u32, u32>,
                      t_map: &mut HashMap<u32, u32>,
                      tbl_map: &mut HashMap<u32, u32>| {
        match p {
            Place::F(k) => {
                let n = f_map.len() as u32;
                f_map.entry(*k).or_insert(n);
            }
            Place::R(k) => {
                let n = r_map.len() as u32;
                r_map.entry(*k).or_insert(n);
            }
            Place::Vec(v) => match v.kind {
                VecKind::Temp(t) => {
                    let n = t_map.len() as u32;
                    t_map.entry(t).or_insert(n);
                }
                VecKind::Table(t) => {
                    let n = tbl_map.len() as u32;
                    tbl_map.entry(t).or_insert(n);
                }
                _ => {}
            },
        }
    };
    fn walk_values(v: &Value, f: &mut dyn FnMut(&Place)) {
        match v {
            Value::Place(p) => f(p),
            Value::Intrinsic(_, args) => args.iter().for_each(|a| walk_values(a, f)),
            _ => {}
        }
    }
    for ins in &prog.instrs {
        if let Some(dst) = ins.dst() {
            note_place(dst, &mut f_map, &mut r_map, &mut t_map, &mut tbl_map);
        }
        ins.for_each_value(&mut |v| {
            walk_values(v, &mut |p| {
                note_place(p, &mut f_map, &mut r_map, &mut t_map, &mut tbl_map)
            });
        });
    }
    let remap_place = |p: &Place| -> Place {
        match p {
            Place::F(k) => Place::F(f_map[k]),
            Place::R(k) => Place::R(r_map[k]),
            Place::Vec(v) => Place::Vec(VecRef {
                kind: match v.kind {
                    VecKind::Temp(t) => VecKind::Temp(t_map[&t]),
                    VecKind::Table(t) => VecKind::Table(tbl_map[&t]),
                    other => other,
                },
                idx: v.idx.clone(),
            }),
        }
    };
    fn remap_value(v: &Value, f: &dyn Fn(&Place) -> Place) -> Value {
        match v {
            Value::Place(p) => Value::Place(f(p)),
            Value::Intrinsic(name, args) => Value::Intrinsic(
                name.clone(),
                args.iter().map(|a| remap_value(a, f)).collect(),
            ),
            other => other.clone(),
        }
    }
    let mut out = prog.clone();
    out.instrs = prog
        .instrs
        .iter()
        .map(|ins| match ins {
            Instr::Bin { op, dst, a, b } => Instr::Bin {
                op: *op,
                dst: remap_place(dst),
                a: remap_value(a, &remap_place),
                b: remap_value(b, &remap_place),
            },
            Instr::Un { op, dst, a } => Instr::Un {
                op: *op,
                dst: remap_place(dst),
                a: remap_value(a, &remap_place),
            },
            other => other.clone(),
        })
        .collect();
    out.n_f = f_map.len() as u32;
    out.n_r = r_map.len() as u32;
    let mut temps = vec![0usize; t_map.len()];
    for (&old, &new) in &t_map {
        temps[new as usize] = prog.temps[old as usize];
    }
    out.temps = temps;
    let mut tables = vec![Vec::new(); tbl_map.len()];
    for (&old, &new) in &tbl_map {
        tables[new as usize] = prog.tables[old as usize].clone();
    }
    out.tables = tables;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::eval_intrinsics;
    use crate::unroll::{scalarize, unroll_all};
    use spl_frontend::parser::parse_formula;
    use spl_icode::interp::run;
    use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

    fn pipeline(src: &str) -> (IProgram, IProgram) {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&unroll_all(&p).unwrap()).unwrap();
        let p = scalarize(&p);
        let o = optimize(&p);
        o.validate().unwrap();
        (p, o)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin() + 1.0, (i as f64).cos()))
            .collect()
    }

    #[test]
    fn optimization_preserves_semantics() {
        for src in [
            "(F 4)",
            "(F 8)",
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            "(compose (F 2) (F 2))",
            "(tensor (F 2) (F 2))",
            "(direct-sum (F 2) (J 3))",
        ] {
            let (p, o) = pipeline(src);
            let x = ramp(p.n_in);
            let a = run(&p, &x).unwrap();
            let b = run(&o, &x).unwrap();
            for (u, v) in a.iter().zip(&b) {
                assert!(u.approx_eq(*v, 1e-12), "{src}");
            }
        }
    }

    #[test]
    fn optimization_shrinks_unrolled_dft() {
        // The naive (F 4) unrolled has 4*4 twiddle multiplies; after
        // folding W(4,0)=1 etc. many disappear.
        let (p, o) = pipeline("(F 4)");
        assert!(
            o.static_instr_count() < p.static_instr_count(),
            "{} -> {}",
            p.static_instr_count(),
            o.static_instr_count()
        );
    }

    #[test]
    fn mul_by_one_and_zero_fold() {
        // diagonal (1 0 -1 2): y0 = x0, y1 = 0, y2 = -x2, y3 = 2*x3.
        let (_, o) = pipeline("(diagonal (1 0 -1 2))");
        let x = ramp(4);
        let y = run(&o, &x).unwrap();
        assert!(y[0].approx_eq(x[0], 0.0));
        assert!(y[1].approx_eq(Complex::ZERO, 0.0));
        assert!(y[2].approx_eq(-x[2], 0.0));
        assert!(y[3].approx_eq(x[3] * Complex::real(2.0), 1e-15));
        // And the code contains no multiplies for rows 0 and 2.
        let muls = o
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1);
    }

    #[test]
    fn cse_removes_duplicate_expressions() {
        // (compose (F 2) (I 2)): identity copy then butterfly; VN should
        // forward the copies so the temp vanishes after DCE+scalarize.
        let (_, o) = pipeline("(compose (F 2) (I 2))");
        // Optimal form: two instructions (add and sub).
        assert_eq!(o.static_instr_count(), 2);
    }

    #[test]
    fn dce_drops_unused_registers() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(F 2)").unwrap();
        let mut p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        // Inject a dead computation.
        p.instrs.push(Instr::Bin {
            op: BinOp::Add,
            dst: Place::F(90),
            a: Value::Int(1),
            b: Value::Int(2),
        });
        p.n_f = 91;
        let o = optimize(&p);
        assert!(o.n_f <= 2);
        let x = ramp(2);
        let y = run(&o, &x).unwrap();
        assert!(y[0].approx_eq(x[0] + x[1], 1e-15));
    }

    #[test]
    fn loop_code_still_correct_after_vn() {
        // Loops (no unrolling): VN must reset across iterations.
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(compose (T 8 4) (tensor (I 4) (F 2)))").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&p).unwrap();
        let o = optimize(&p);
        o.validate().unwrap();
        let x = ramp(8);
        let a = run(&p, &x).unwrap();
        let b = run(&o, &x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!(u.approx_eq(*v, 1e-12));
        }
    }

    #[test]
    fn compaction_renumbers_densely() {
        let (_, o) = pipeline("(F 8)");
        // All register ids below the counts.
        for ins in &o.instrs {
            if let Some(Place::F(k)) = ins.dst() {
                assert!(*k < o.n_f);
            }
        }
        assert_eq!(o.tables.len(), 0);
    }

    fn out_at(i: i64) -> Place {
        Place::Vec(VecRef {
            kind: VecKind::Out,
            idx: spl_icode::Affine::constant(i),
        })
    }

    fn run_both(p: &IProgram) {
        let q = optimize(p);
        q.validate().unwrap();
        let x: Vec<Complex> = (0..p.n_in)
            .map(|i| Complex::real((i as f64) + 1.5))
            .collect();
        let a = spl_icode::interp::run(p, &x).unwrap();
        let b = spl_icode::interp::run(&q, &x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!(
                u.approx_eq(*v, 1e-12),
                "optimize changed semantics: {u} vs {v}\n{p}\n=>\n{q}"
            );
        }
    }

    #[test]
    fn forward_sub_respects_reads_after_loop() {
        // f0 defined and copied inside a loop, then read after the loop:
        // retargeting the definition would leave the post-loop read with
        // a stale value.
        use spl_icode::{Affine, LoopVar};
        let i0 = LoopVar(0);
        let p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::F(0),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i0),
                    })),
                    b: Value::Const(Complex::real(1.0)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    }),
                    a: Value::f(0),
                },
                Instr::DoEnd,
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(4),
                    a: Value::f(0),
                },
            ],
            n_in: 5,
            n_out: 5,
            n_f: 1,
            n_loop: 1,
            ..IProgram::empty()
        };
        run_both(&p);
    }

    #[test]
    fn forward_sub_never_crosses_register_classes() {
        // r0 = 7 / 2 is integer division (3); retargeting the definition
        // to the float destination would compute 3.5.
        let p = IProgram {
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::R(0),
                    a: Value::Int(7),
                    b: Value::Int(2),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(0),
                    a: Value::Place(Place::R(0)),
                },
            ],
            n_in: 1,
            n_out: 1,
            n_r: 1,
            ..IProgram::empty()
        };
        let q = optimize(&p);
        let x = [Complex::ZERO];
        let y = spl_icode::interp::run(&q, &x).unwrap();
        assert_eq!(y[0].re, 3.0, "integer semantics lost:\n{q}");
    }

    #[test]
    fn forward_sub_respects_recurrence_definitions() {
        // The SIV pattern: f0 = in(i) - f0 feeds itself across
        // iterations; sinking the definition into the copy would break
        // every iteration after the first.
        use spl_icode::{Affine, LoopVar};
        let i0 = LoopVar(0);
        let p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: 3,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: Place::F(0),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i0),
                    })),
                    b: Value::f(0),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    }),
                    a: Value::f(0),
                },
                Instr::DoEnd,
            ],
            n_in: 4,
            n_out: 4,
            n_f: 1,
            n_loop: 1,
            ..IProgram::empty()
        };
        run_both(&p);
    }

    #[test]
    fn forward_sub_respects_outer_loop_back_edge() {
        // Outer body reads f0 at its head; an inner loop defines f0 and
        // copies it out. The head read of the NEXT outer iteration must
        // still see the inner definition.
        use spl_icode::{Affine, LoopVar};
        let i0 = LoopVar(0);
        let i1 = LoopVar(1);
        let p = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i0,
                    lo: 0,
                    hi: 2,
                    unroll: false,
                },
                // head read of f0 (stale on iteration 0: reads 0.0)
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i0),
                    }),
                    a: Value::f(0),
                    b: Value::Const(Complex::real(10.0)),
                },
                Instr::DoStart {
                    var: i1,
                    lo: 0,
                    hi: 0,
                    unroll: false,
                },
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Place::F(0),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i0),
                    })),
                    b: Value::Const(Complex::real(1.0)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(3),
                    a: Value::f(0),
                },
                Instr::DoEnd,
                Instr::DoEnd,
            ],
            n_in: 3,
            n_out: 4,
            n_f: 1,
            n_loop: 2,
            ..IProgram::empty()
        };
        run_both(&p);
    }

    #[test]
    fn cse_keeps_integer_and_float_division_apart() {
        // r0 = in-ish 7 / 2 (integer, = 3) followed by f0 = 7 / 2
        // (float, = 3.5) with identical operand value numbers: CSE must
        // not merge them. Use register operands so neither folds.
        let p = IProgram {
            instrs: vec![
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::R(1),
                    a: Value::Int(7),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::R(2),
                    a: Value::Int(2),
                },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::R(0),
                    a: Value::Place(Place::R(1)),
                    b: Value::Place(Place::R(2)),
                },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Place::F(0),
                    a: Value::Place(Place::R(1)),
                    b: Value::Place(Place::R(2)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(0),
                    a: Value::Place(Place::R(0)),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: out_at(1),
                    a: Value::f(0),
                },
            ],
            n_in: 1,
            n_out: 2,
            n_f: 1,
            n_r: 3,
            ..IProgram::empty()
        };
        let q = value_number(&p);
        q.validate().unwrap();
        let x = [Complex::ZERO];
        let y = spl_icode::interp::run(&q, &x).unwrap();
        assert_eq!(y[0].re, 3.0, "{q}");
        assert_eq!(y[1].re, 3.5, "{q}");
    }

    #[test]
    fn double_negation_folds() {
        // f0 = -in(0); f1 = -f0; out(0) = f1  ==>  out(0) = in(0) copy.
        use spl_icode::Affine;
        let p = IProgram {
            instrs: vec![
                Instr::Un {
                    op: UnOp::Neg,
                    dst: Place::F(0),
                    a: Value::vec(VecKind::In, 0),
                },
                Instr::Un {
                    op: UnOp::Neg,
                    dst: Place::F(1),
                    a: Value::f(0),
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::constant(0),
                    }),
                    a: Value::f(1),
                },
            ],
            n_in: 1,
            n_out: 1,
            n_f: 2,
            ..IProgram::empty()
        };
        let o = optimize(&p);
        // All negations vanish.
        assert!(
            o.instrs
                .iter()
                .all(|i| !matches!(i, Instr::Un { op: UnOp::Neg, .. })),
            "{o}"
        );
        let x = [Complex::real(3.5)];
        let y = spl_icode::interp::run(&o, &x).unwrap();
        assert_eq!(y[0].re, 3.5);
    }

    #[test]
    fn optimize_with_stats_counts_work() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(F 4)").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let p = eval_intrinsics(&unroll_all(&p).unwrap()).unwrap();
        let p = scalarize(&p);
        let (o, stats) = optimize_with_stats(&p);
        assert_eq!(stats.instrs_before, p.static_instr_count() as u64);
        assert_eq!(stats.instrs_after, o.static_instr_count() as u64);
        assert!(stats.instrs_after < stats.instrs_before);
        // The unrolled F4 is full of W(4,k) constants to fold.
        assert!(stats.constants_folded > 0);
        assert!(stats.dce_removed > 0);
    }

    #[test]
    fn redundant_store_elided() {
        // out(0) = in(0); out(0) = in(0)  →  single copy.
        use spl_icode::Affine;
        let mk = || Instr::Un {
            op: UnOp::Copy,
            dst: Place::Vec(VecRef {
                kind: VecKind::Out,
                idx: Affine::constant(0),
            }),
            a: Value::vec(VecKind::In, 0),
        };
        let p = IProgram {
            instrs: vec![mk(), mk()],
            n_in: 1,
            n_out: 1,
            ..IProgram::empty()
        };
        let o = value_number(&p);
        assert_eq!(o.instrs.len(), 1);
    }
}
