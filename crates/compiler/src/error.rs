//! The unified compiler error type.

use std::error::Error;
use std::fmt;

use crate::intrinsics::IntrinsicError;
use crate::typetrans::TypeTransError;
use spl_frontend::ParseError;
use spl_templates::ExpandError;

/// Any error the compiler driver can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A lexing or parsing failure.
    Parse(ParseError),
    /// A template-expansion failure (no match, bad shapes, non-affine
    /// subscripts, ...).
    Expand(ExpandError),
    /// An intrinsic-evaluation failure.
    Intrinsic(IntrinsicError),
    /// A type-transformation failure.
    TypeTrans(TypeTransError),
    /// Structurally malformed i-code reached a restructuring pass
    /// (e.g. unbalanced loops expanded from a malformed user template).
    /// Unlike [`CompileError::Internal`], this is reported per unit so a
    /// search can skip the offending candidate and continue.
    MalformedIcode(String),
    /// A configured resource limit was exceeded (e.g. the unrolled-code
    /// size cap): the formula is too large for the current
    /// [`Limits`](crate::Limits), not malformed.
    ResourceLimit(String),
    /// Per-pass translation validation caught an optimization pass
    /// changing program semantics (`splc --verify-passes` with abort
    /// behaviour). The `pass` field names the localized culprit.
    MiscompilingPass {
        /// Name of the pass whose output disagreed with the reference.
        pass: String,
        /// The first observed divergence (probe, lane, values).
        detail: String,
    },
    /// An internal invariant violation (a phase produced invalid i-code).
    Internal(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Expand(e) => write!(f, "{e}"),
            CompileError::Intrinsic(e) => write!(f, "{e}"),
            CompileError::TypeTrans(e) => write!(f, "{e}"),
            CompileError::MalformedIcode(e) => write!(f, "malformed i-code: {e}"),
            CompileError::ResourceLimit(e) => write!(f, "resource limit exceeded: {e}"),
            CompileError::MiscompilingPass { pass, detail } => {
                write!(f, "miscompiling pass '{pass}': {detail}")
            }
            CompileError::Internal(e) => write!(f, "internal compiler error: {e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::Expand(e) => Some(e),
            CompileError::Intrinsic(e) => Some(e),
            CompileError::TypeTrans(e) => Some(e),
            CompileError::MalformedIcode(_)
            | CompileError::ResourceLimit(_)
            | CompileError::MiscompilingPass { .. }
            | CompileError::Internal(_) => None,
        }
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<ExpandError> for CompileError {
    fn from(e: ExpandError) -> Self {
        CompileError::Expand(e)
    }
}

impl From<IntrinsicError> for CompileError {
    fn from(e: IntrinsicError) -> Self {
        CompileError::Intrinsic(e)
    }
}

impl From<TypeTransError> for CompileError {
    fn from(e: TypeTransError) -> Self {
        CompileError::TypeTrans(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CompileError::Internal("boom".into());
        assert_eq!(e.to_string(), "internal compiler error: boom");
        let e: CompileError = ExpandError::NoMatch("no template".into()).into();
        assert!(e.to_string().contains("no template"));
        let e = CompileError::ResourceLimit("too many ops".into());
        assert_eq!(e.to_string(), "resource limit exceeded: too many ops");
    }

    #[test]
    fn source_is_exposed() {
        let e: CompileError = IntrinsicError("bad".into()).into();
        assert!(e.source().is_some());
    }
}
