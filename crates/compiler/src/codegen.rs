//! Target code generation (paper Section 3.5): Fortran and C emitters.
//!
//! Both emitters print the *optimized i-code*; they share the affine
//! subscript printer and differ in declarations, array base (Fortran is
//! 1-based), loop syntax, and constant formatting. Two machine-dependent
//! peepholes from Section 3.4 are applied here because they are purely
//! syntactic: rewriting unary minus as `0 - x` / negative constants, and
//! declaring temporaries `automatic` (Fortran).

use std::fmt::Write as _;

use spl_frontend::ast::{DataType, Language};
use spl_icode::{Affine, BinOp, IProgram, Instr, Place, UnOp, Value, VecKind, VecRef};
use spl_numeric::Complex;

/// Code generation options.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Target language.
    pub language: Language,
    /// Scalar type of the generated code (complex only valid for
    /// Fortran).
    pub codetype: DataType,
    /// Apply the SPARC peepholes: no unary minus, parenthesized negative
    /// constants, `automatic` temporaries.
    pub peephole: bool,
    /// Add input/output offset and stride parameters to the subroutine
    /// signature.
    pub io_params: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            language: Language::Fortran,
            codetype: DataType::Real,
            peephole: false,
            io_params: false,
        }
    }
}

/// Emits a complete subroutine for the program.
///
/// # Panics
///
/// Panics if asked for complex-typed C (the driver prevents this
/// combination, mirroring the paper: "of the popular imperative languages
/// only Fortran supports complex").
pub fn emit(name: &str, prog: &IProgram, opts: &CodegenOptions) -> String {
    match opts.language {
        Language::Fortran => emit_fortran(name, prog, opts),
        Language::C => {
            assert!(
                opts.codetype == DataType::Real,
                "C output requires real codetype"
            );
            emit_c(name, prog, opts)
        }
    }
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

fn fmt_f64(v: f64, fortran: bool) -> String {
    let mut s = format!("{v:?}"); // shortest round-trip
    if fortran {
        if let Some(pos) = s.find(['e', 'E']) {
            s.replace_range(pos..=pos, "d");
        } else {
            s.push_str("d0");
        }
    }
    s
}

fn fmt_const(c: Complex, complex_code: bool, fortran: bool, peephole: bool) -> String {
    if complex_code {
        format!("({},{})", fmt_f64(c.re, fortran), fmt_f64(c.im, fortran))
    } else {
        debug_assert!(c.is_real());
        let s = fmt_f64(c.re, fortran);
        if c.re < 0.0 && peephole {
            format!("({s})")
        } else {
            s
        }
    }
}

struct Emit<'a> {
    prog: &'a IProgram,
    opts: &'a CodegenOptions,
    fortran: bool,
    buf: String,
    indent: usize,
}

impl Emit<'_> {
    fn line(&mut self, s: &str) {
        let pad = if self.fortran { 6 } else { 0 };
        let _ = writeln!(
            self.buf,
            "{:pad$}{:ind$}{s}",
            "",
            "",
            pad = pad,
            ind = self.indent * 2
        );
    }

    fn affine(&self, a: &Affine, base_one: bool) -> String {
        let mut s = String::new();
        for (k, &(c, v)) in a.terms.iter().enumerate() {
            if c == 1 {
                if k > 0 {
                    s.push('+');
                }
                let _ = write!(s, "i{}", v.0);
            } else if c == -1 {
                let _ = write!(s, "-i{}", v.0);
            } else if c < 0 {
                let _ = write!(s, "-{}*i{}", -c, v.0);
            } else {
                if k > 0 {
                    s.push('+');
                }
                let _ = write!(s, "{c}*i{}", v.0);
            }
        }
        let c = a.c + i64::from(base_one);
        if s.is_empty() {
            let _ = write!(s, "{c}");
        } else if c > 0 {
            let _ = write!(s, "+{c}");
        } else if c < 0 {
            let _ = write!(s, "{c}");
        }
        s
    }

    fn vec_access(&self, v: &VecRef) -> String {
        let base_one = self.fortran;
        let (arr, io): (String, bool) = match v.kind {
            VecKind::In => ("x".into(), true),
            VecKind::Out => ("y".into(), true),
            VecKind::Temp(t) => (format!("t{t}"), false),
            VecKind::Table(t) => (format!("d{t}"), false),
        };
        let idx = if io && self.opts.io_params {
            let (ofs, str_) = if v.kind == VecKind::In {
                ("xofs", "xstr")
            } else {
                ("yofs", "ystr")
            };
            format!("{ofs}+{str_}*({})", self.affine(&v.idx, false))
                + if base_one { "+1" } else { "" }
        } else {
            self.affine(&v.idx, base_one)
        };
        if self.fortran {
            format!("{arr}({idx})")
        } else {
            format!("{arr}[{idx}]")
        }
    }

    fn place(&self, p: &Place) -> String {
        match p {
            Place::F(k) => format!("f{k}"),
            Place::R(k) => format!("r{k}"),
            Place::Vec(v) => self.vec_access(v),
        }
    }

    fn value(&self, v: &Value) -> String {
        match v {
            Value::Place(p) => self.place(p),
            Value::Const(c) => fmt_const(
                *c,
                self.opts.codetype == DataType::Complex,
                self.fortran,
                self.opts.peephole,
            ),
            Value::Int(i) => {
                if self.opts.codetype == DataType::Complex && self.fortran {
                    format!("({}.0d0,0.0d0)", i)
                } else {
                    format!("{i}")
                }
            }
            Value::LoopIdx(lv) => format!("i{}", lv.0),
            Value::Intrinsic(name, args) => {
                // Should not survive intrinsic evaluation; print anyway
                // for debuggability.
                let args: Vec<String> = args.iter().map(|a| self.value(a)).collect();
                format!("{name}({})", args.join(", "))
            }
        }
    }

    fn body(&mut self) {
        let instrs = self.prog.instrs.clone();
        for ins in &instrs {
            match ins {
                Instr::DoStart { var, lo, hi, .. } => {
                    if self.fortran {
                        self.line(&format!("do i{} = {lo}, {hi}", var.0));
                    } else {
                        self.line(&format!(
                            "for (i{v} = {lo}; i{v} <= {hi}; i{v}++) {{",
                            v = var.0
                        ));
                    }
                    self.indent += 1;
                }
                Instr::DoEnd => {
                    self.indent -= 1;
                    self.line(if self.fortran { "end do" } else { "}" });
                }
                Instr::Bin { op, dst, a, b } => {
                    let sym = match op {
                        BinOp::Add => "+",
                        BinOp::Sub => "-",
                        BinOp::Mul => "*",
                        BinOp::Div => "/",
                    };
                    let stmt = format!(
                        "{} = {} {sym} {}{}",
                        self.place(dst),
                        self.value(a),
                        self.value(b),
                        if self.fortran { "" } else { ";" }
                    );
                    self.line(&stmt);
                }
                Instr::Un { op, dst, a } => {
                    let stmt = match op {
                        UnOp::Copy => format!("{} = {}", self.place(dst), self.value(a)),
                        UnOp::Neg => {
                            if self.opts.peephole {
                                // SPARC peephole: arithmetic negation is a
                                // single-precision instruction; emit a
                                // subtraction instead (paper Section 3.4).
                                format!("{} = 0 - {}", self.place(dst), self.value(a))
                            } else {
                                format!("{} = -{}", self.place(dst), self.value(a))
                            }
                        }
                    };
                    let stmt = if self.fortran {
                        stmt
                    } else {
                        format!("{stmt};")
                    };
                    self.line(&stmt);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fortran
// ---------------------------------------------------------------------

fn emit_fortran(name: &str, prog: &IProgram, opts: &CodegenOptions) -> String {
    let mut e = Emit {
        prog,
        opts,
        fortran: true,
        buf: String::new(),
        indent: 0,
    };
    let complex_code = opts.codetype == DataType::Complex;
    let scalar_ty = if complex_code { "complex*16" } else { "real*8" };
    let args = if opts.io_params {
        "(y,x,yofs,xofs,ystr,xstr)"
    } else {
        "(y,x)"
    };
    e.line(&format!("subroutine {name}{args}"));
    e.line("implicit real*8 (f)");
    e.line("implicit integer (r)");
    if complex_code && prog.n_f > 0 {
        // Override the implicit for complex code.
        let decls: Vec<String> = (0..prog.n_f).map(|k| format!("f{k}")).collect();
        for chunk in decls.chunks(8) {
            e.line(&format!("complex*16 {}", chunk.join(",")));
        }
    }
    e.line(&format!(
        "{scalar_ty} y({ny}),x({nx})",
        ny = prog.n_out,
        nx = prog.n_in
    ));
    if opts.io_params {
        e.line("integer yofs,xofs,ystr,xstr");
    }
    for (t, &len) in prog.temps.iter().enumerate() {
        if len > 0 {
            e.line(&format!("{scalar_ty} t{t}({len})"));
            if opts.peephole {
                // Stack allocation of temporaries (paper Section 3.4).
                e.line(&format!("automatic t{t}"));
            }
        }
    }
    for (t, table) in prog.tables.iter().enumerate() {
        e.line(&format!("{scalar_ty} d{t}({})", table.len()));
        let vals: Vec<String> = table
            .iter()
            .map(|c| fmt_const(*c, complex_code, true, false))
            .collect();
        for (k, chunk) in vals.chunks(4).enumerate() {
            if k == 0 {
                e.line(&format!("data d{t} /{}", chunk.join(",")));
            } else {
                e.line(&format!("     . ,{}", chunk.join(",")));
            }
        }
        e.line("     . /");
    }
    e.body();
    e.line("end");
    e.buf
}

// ---------------------------------------------------------------------
// C
// ---------------------------------------------------------------------

fn emit_c(name: &str, prog: &IProgram, opts: &CodegenOptions) -> String {
    let mut e = Emit {
        prog,
        opts,
        fortran: false,
        buf: String::new(),
        indent: 0,
    };
    let args = if opts.io_params {
        "(double *y, const double *x, long yofs, long xofs, long ystr, long xstr)"
    } else {
        "(double *y, const double *x)"
    };
    e.line(&format!("void {name}{args}"));
    e.line("{");
    e.indent = 1;
    for (t, table) in prog.tables.iter().enumerate() {
        let vals: Vec<String> = table.iter().map(|c| fmt_f64(c.re, false)).collect();
        e.line(&format!("static const double d{t}[{}] = {{", table.len()));
        for chunk in vals.chunks(4) {
            e.line(&format!("  {},", chunk.join(", ")));
        }
        e.line("};");
    }
    for (t, &len) in prog.temps.iter().enumerate() {
        if len > 0 {
            // Static storage, like Fortran's default: large transforms
            // would overflow the stack with automatic arrays.
            e.line(&format!("static double t{t}[{len}];"));
        }
    }
    if prog.n_f > 0 {
        let decls: Vec<String> = (0..prog.n_f).map(|k| format!("f{k}")).collect();
        for chunk in decls.chunks(10) {
            e.line(&format!("double {};", chunk.join(", ")));
        }
    }
    if prog.n_r > 0 {
        let decls: Vec<String> = (0..prog.n_r).map(|k| format!("r{k}")).collect();
        e.line(&format!("long {};", decls.join(", ")));
    }
    let loop_vars: Vec<String> = collect_loop_vars(prog);
    if !loop_vars.is_empty() {
        e.line(&format!("long {};", loop_vars.join(", ")));
    }
    e.body();
    e.indent = 0;
    e.line("}");
    e.buf
}

fn collect_loop_vars(prog: &IProgram) -> Vec<String> {
    prog.instrs
        .iter()
        .filter_map(|i| match i {
            Instr::DoStart { var, .. } => Some(format!("i{}", var.0)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_icode::{Affine, LoopVar};

    fn butterfly_prog() -> IProgram {
        let at = |kind, i| {
            Place::Vec(VecRef {
                kind,
                idx: Affine::constant(i),
            })
        };
        IProgram {
            instrs: vec![
                Instr::Bin {
                    op: BinOp::Add,
                    dst: at(VecKind::Out, 0),
                    a: Value::vec(VecKind::In, 0),
                    b: Value::vec(VecKind::In, 1),
                },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: at(VecKind::Out, 1),
                    a: Value::vec(VecKind::In, 0),
                    b: Value::vec(VecKind::In, 1),
                },
            ],
            n_in: 2,
            n_out: 2,
            ..IProgram::empty()
        }
    }

    #[test]
    fn fortran_is_one_based() {
        let src = emit("f2", &butterfly_prog(), &CodegenOptions::default());
        assert!(src.contains("subroutine f2(y,x)"));
        assert!(src.contains("y(1) = x(1) + x(2)"));
        assert!(src.contains("y(2) = x(1) - x(2)"));
        assert!(src.contains("implicit real*8 (f)"));
    }

    #[test]
    fn c_is_zero_based() {
        let opts = CodegenOptions {
            language: Language::C,
            ..Default::default()
        };
        let src = emit("f2", &butterfly_prog(), &opts);
        assert!(src.contains("void f2(double *y, const double *x)"));
        assert!(src.contains("y[0] = x[0] + x[1];"));
        assert!(src.contains("y[1] = x[0] - x[1];"));
    }

    #[test]
    fn loops_print_in_both_languages() {
        let i = LoopVar(0);
        let prog = IProgram {
            instrs: vec![
                Instr::DoStart {
                    var: i,
                    lo: 0,
                    hi: 31,
                    unroll: false,
                },
                Instr::Un {
                    op: UnOp::Copy,
                    dst: Place::Vec(VecRef {
                        kind: VecKind::Out,
                        idx: Affine::var(i),
                    }),
                    a: Value::Place(Place::Vec(VecRef {
                        kind: VecKind::In,
                        idx: Affine::var(i),
                    })),
                },
                Instr::DoEnd,
            ],
            n_in: 32,
            n_out: 32,
            n_loop: 1,
            ..IProgram::empty()
        };
        let f = emit("copy", &prog, &CodegenOptions::default());
        assert!(f.contains("do i0 = 0, 31"));
        assert!(f.contains("y(i0+1) = x(i0+1)"));
        assert!(f.contains("end do"));
        let c = emit(
            "copy",
            &prog,
            &CodegenOptions {
                language: Language::C,
                ..Default::default()
            },
        );
        assert!(c.contains("for (i0 = 0; i0 <= 31; i0++) {"));
        assert!(c.contains("y[i0] = x[i0];"));
    }

    #[test]
    fn peephole_rewrites_unary_minus() {
        let prog = IProgram {
            instrs: vec![Instr::Un {
                op: UnOp::Neg,
                dst: Place::F(0),
                a: Value::f(1),
            }],
            n_f: 2,
            n_in: 1,
            n_out: 1,
            ..IProgram::empty()
        };
        let plain = emit("neg", &prog, &CodegenOptions::default());
        assert!(plain.contains("f0 = -f1"));
        let pep = emit(
            "neg",
            &prog,
            &CodegenOptions {
                peephole: true,
                ..Default::default()
            },
        );
        assert!(pep.contains("f0 = 0 - f1"));
    }

    #[test]
    fn peephole_parenthesizes_negative_constants() {
        let prog = IProgram {
            instrs: vec![Instr::Bin {
                op: BinOp::Mul,
                dst: Place::F(0),
                a: Value::Const(Complex::real(-7.0)),
                b: Value::f(1),
            }],
            n_f: 2,
            n_in: 1,
            n_out: 1,
            ..IProgram::empty()
        };
        let pep = emit(
            "m",
            &prog,
            &CodegenOptions {
                peephole: true,
                ..Default::default()
            },
        );
        assert!(pep.contains("f0 = (-7.0d0) * f1"));
    }

    #[test]
    fn fortran_constants_get_d_exponents() {
        assert_eq!(fmt_f64(0.5, true), "0.5d0");
        assert_eq!(fmt_f64(1e-8, true), "1d-8");
        assert_eq!(fmt_f64(0.5, false), "0.5");
    }

    #[test]
    fn tables_emit_data_statements() {
        let prog = IProgram {
            tables: vec![vec![Complex::real(1.0), Complex::real(0.5)]],
            instrs: vec![Instr::Un {
                op: UnOp::Copy,
                dst: Place::F(0),
                a: Value::Place(Place::Vec(VecRef {
                    kind: VecKind::Table(0),
                    idx: Affine::constant(0),
                })),
            }],
            n_f: 1,
            n_in: 1,
            n_out: 1,
            ..IProgram::empty()
        };
        let f = emit("t", &prog, &CodegenOptions::default());
        assert!(f.contains("real*8 d0(2)"));
        assert!(f.contains("data d0 /1.0d0,0.5d0"));
        let c = emit(
            "t",
            &prog,
            &CodegenOptions {
                language: Language::C,
                ..Default::default()
            },
        );
        assert!(c.contains("static const double d0[2]"));
        assert!(c.contains("f0 = d0[0];"));
    }

    #[test]
    fn io_params_wrap_accesses() {
        let opts = CodegenOptions {
            language: Language::C,
            io_params: true,
            ..Default::default()
        };
        let src = emit("f2", &butterfly_prog(), &opts);
        assert!(src.contains("y[yofs+ystr*(0)] = x[xofs+xstr*(0)] + x[xofs+xstr*(1)];"));
    }

    #[test]
    #[should_panic(expected = "real codetype")]
    fn complex_c_rejected() {
        let opts = CodegenOptions {
            language: Language::C,
            codetype: DataType::Complex,
            ..Default::default()
        };
        emit("f2", &butterfly_prog(), &opts);
    }
}
