//! Type transformation (paper Section 3.3.3): lowering complex i-code to
//! real i-code.
//!
//! When the data type is complex but the code type is real, every complex
//! value is represented as a pair of adjacent reals (`re` at `2k`, `im` at
//! `2k+1`) and every complex operation becomes the corresponding real
//! operations. Multiplication by purely-imaginary constants lowers to the
//! cross pattern whose `±1` factors the value-numbering pass then folds —
//! reproducing the paper's "replace multiplication by i with a swap and a
//! negation".

use spl_icode::{Affine, BinOp, IProgram, Instr, Place, UnOp, Value, VecRef};
use spl_numeric::Complex;

/// An error during type transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeTransError(pub String);

impl std::fmt::Display for TypeTransError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "type transformation failed: {}", self.0)
    }
}

impl std::error::Error for TypeTransError {}

/// Marks a program as operating on real data without structural changes
/// (`#datatype real`).
///
/// # Errors
///
/// Fails if the program contains complex constants or tables.
pub fn mark_real(prog: &IProgram) -> Result<IProgram, TypeTransError> {
    for ins in &prog.instrs {
        let mut bad = false;
        ins.for_each_value(&mut |v| {
            fn check(v: &Value, bad: &mut bool) {
                match v {
                    Value::Const(c) if !c.is_real() => *bad = true,
                    Value::Intrinsic(_, args) => args.iter().for_each(|a| check(a, bad)),
                    _ => {}
                }
            }
            check(v, &mut bad);
        });
        if bad {
            return Err(TypeTransError(
                "real datatype but the formula produced complex constants".into(),
            ));
        }
    }
    if prog.tables.iter().any(|t| t.iter().any(|c| !c.is_real())) {
        return Err(TypeTransError(
            "real datatype but twiddle tables are complex".into(),
        ));
    }
    let mut out = prog.clone();
    out.complex = false;
    Ok(out)
}

/// Lowers a complex program to real i-code (`#datatype complex`,
/// `#codetype real`). Vector lengths, temp sizes, and `$f` registers all
/// double; integer registers are untouched.
///
/// # Errors
///
/// Fails if intrinsics are still present (run intrinsic evaluation first).
pub fn complex_to_real(prog: &IProgram) -> Result<IProgram, TypeTransError> {
    let mut tt = Lower {
        out: Vec::with_capacity(prog.instrs.len() * 2),
        next_f: prog.n_f * 2,
    };
    // Each complex instruction lowers to a run of real instructions; the
    // whole run inherits the source instruction's formula-node id.
    let prov_in = prog.prov_slice();
    let mut prov = Vec::new();
    for (k, ins) in prog.instrs.iter().enumerate() {
        let before = tt.out.len();
        tt.lower(ins)?;
        if let Some(&id) = prov_in.get(k) {
            prov.resize(prov.len() + (tt.out.len() - before), id);
        }
    }
    Ok(IProgram {
        instrs: tt.out,
        n_in: prog.n_in * 2,
        n_out: prog.n_out * 2,
        temps: prog.temps.iter().map(|&t| t * 2).collect(),
        tables: prog
            .tables
            .iter()
            .map(|t| {
                t.iter()
                    .flat_map(|c| [Complex::real(c.re), Complex::real(c.im)])
                    .collect()
            })
            .collect(),
        n_f: tt.next_f,
        n_r: prog.n_r,
        n_loop: prog.n_loop,
        complex: false,
        prov,
        prov_nodes: prog.prov_nodes.clone(),
        // Type transformation runs before the optimizer, so no loop has
        // been marked lane-safe yet; carry the (empty) set through.
        vec_loops: prog.vec_loops.clone(),
    })
}

struct Lower {
    out: Vec<Instr>,
    next_f: u32,
}

/// The real/imaginary halves of a lowered complex operand.
#[derive(Clone)]
struct Pair {
    re: Value,
    im: Value,
}

impl Lower {
    fn fresh(&mut self) -> Place {
        let id = self.next_f;
        self.next_f += 1;
        Place::F(id)
    }

    fn split_place(p: &Place) -> Result<(Place, Place), TypeTransError> {
        match p {
            Place::F(k) => Ok((Place::F(2 * k), Place::F(2 * k + 1))),
            Place::Vec(v) => {
                let re = Affine {
                    c: v.idx.c * 2,
                    terms: v.idx.terms.iter().map(|&(c, lv)| (c * 2, lv)).collect(),
                };
                let mut im = re.clone();
                im.c += 1;
                Ok((
                    Place::Vec(VecRef {
                        kind: v.kind,
                        idx: re,
                    }),
                    Place::Vec(VecRef {
                        kind: v.kind,
                        idx: im,
                    }),
                ))
            }
            Place::R(_) => Err(TypeTransError(
                "integer register in a complex-valued position".into(),
            )),
        }
    }

    fn split_value(v: &Value) -> Result<Pair, TypeTransError> {
        match v {
            Value::Const(c) => Ok(Pair {
                re: Value::Const(Complex::real(c.re)),
                im: Value::Const(Complex::real(c.im)),
            }),
            Value::Int(i) => Ok(Pair {
                re: Value::Const(Complex::real(*i as f64)),
                im: Value::Const(Complex::ZERO),
            }),
            Value::Place(p) => {
                let (re, im) = Self::split_place(p)?;
                Ok(Pair {
                    re: Value::Place(re),
                    im: Value::Place(im),
                })
            }
            Value::LoopIdx(_) => Err(TypeTransError("loop index used as a complex value".into())),
            Value::Intrinsic(_, _) => Err(TypeTransError(
                "intrinsics must be evaluated before type transformation".into(),
            )),
        }
    }

    fn push_bin(&mut self, op: BinOp, dst: Place, a: Value, b: Value) {
        self.out.push(Instr::Bin { op, dst, a, b });
    }

    fn push_copy(&mut self, dst: Place, a: Value) {
        self.out.push(Instr::Un {
            op: UnOp::Copy,
            dst,
            a,
        });
    }

    fn lower(&mut self, ins: &Instr) -> Result<(), TypeTransError> {
        match ins {
            Instr::DoStart { .. } | Instr::DoEnd => {
                self.out.push(ins.clone());
                Ok(())
            }
            // Integer-register arithmetic passes through untouched.
            Instr::Bin {
                dst: dst @ Place::R(_),
                ..
            } => {
                let _ = dst;
                self.out.push(ins.clone());
                Ok(())
            }
            Instr::Un {
                dst: dst @ Place::R(_),
                ..
            } => {
                let _ = dst;
                self.out.push(ins.clone());
                Ok(())
            }
            Instr::Un { op, dst, a } => {
                let (dr, di) = Self::split_place(dst)?;
                let a = Self::split_value(a)?;
                let op = match op {
                    UnOp::Copy => UnOp::Copy,
                    UnOp::Neg => UnOp::Neg,
                };
                self.out.push(Instr::Un {
                    op,
                    dst: dr,
                    a: a.re,
                });
                self.out.push(Instr::Un {
                    op,
                    dst: di,
                    a: a.im,
                });
                Ok(())
            }
            Instr::Bin { op, dst, a, b } => {
                let (dr, di) = Self::split_place(dst)?;
                let pa = Self::split_value(a)?;
                let pb = Self::split_value(b)?;
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let op = if *op == BinOp::Add {
                            BinOp::Add
                        } else {
                            BinOp::Sub
                        };
                        self.push_bin(op, dr, pa.re, pb.re);
                        self.push_bin(op, di, pa.im, pb.im);
                        Ok(())
                    }
                    BinOp::Mul => self.lower_mul(dr, di, a, b, pa, pb),
                    BinOp::Div => self.lower_div(dr, di, a, b, pa, pb),
                }
            }
        }
    }

    fn lower_mul(
        &mut self,
        dr: Place,
        di: Place,
        a: &Value,
        b: &Value,
        pa: Pair,
        pb: Pair,
    ) -> Result<(), TypeTransError> {
        // Constant-times-value special cases keep the operation count at
        // the textbook minimum; the remaining ±1 factors are folded by the
        // optimizer afterwards.
        let (c, pv) = match (a.as_const(), b.as_const()) {
            (Some(c), _) => (Some(c), pb.clone()),
            (_, Some(c)) => (Some(c), pa.clone()),
            _ => (None, pa.clone()),
        };
        if let Some(c) = c {
            if c.im == 0.0 {
                // Real constant: two real multiplies, lane-safe.
                let cr = Value::Const(Complex::real(c.re));
                self.push_bin(BinOp::Mul, dr, cr.clone(), pv.re);
                self.push_bin(BinOp::Mul, di, cr, pv.im);
                return Ok(());
            }
            if c.re == 0.0 {
                // Imaginary constant (0, ci): re = -ci·v_im, im = ci·v_re.
                // v_re must be saved before dr is written (dst may alias).
                let ci = Value::Const(Complex::real(c.im));
                let saved = self.fresh();
                self.push_copy(saved.clone(), pv.re.clone());
                let t = self.fresh();
                self.push_bin(BinOp::Mul, t.clone(), ci.clone(), pv.im);
                self.out.push(Instr::Un {
                    op: UnOp::Neg,
                    dst: dr,
                    a: Value::Place(t),
                });
                self.push_bin(BinOp::Mul, di, ci, Value::Place(saved));
                return Ok(());
            }
            // General complex constant: 4 multiplies through temporaries.
            let cr = Value::Const(Complex::real(c.re));
            let ci = Value::Const(Complex::real(c.im));
            let t1 = self.fresh();
            let t2 = self.fresh();
            let t3 = self.fresh();
            let t4 = self.fresh();
            self.push_bin(BinOp::Mul, t1.clone(), cr.clone(), pv.re.clone());
            self.push_bin(BinOp::Mul, t2.clone(), ci.clone(), pv.im.clone());
            self.push_bin(BinOp::Mul, t3.clone(), cr, pv.im);
            self.push_bin(BinOp::Mul, t4.clone(), ci, pv.re);
            self.push_bin(BinOp::Sub, dr, Value::Place(t1), Value::Place(t2));
            self.push_bin(BinOp::Add, di, Value::Place(t3), Value::Place(t4));
            return Ok(());
        }
        let _ = b;
        // General complex × complex.
        let t1 = self.fresh();
        let t2 = self.fresh();
        let t3 = self.fresh();
        let t4 = self.fresh();
        self.push_bin(BinOp::Mul, t1.clone(), pa.re.clone(), pb.re.clone());
        self.push_bin(BinOp::Mul, t2.clone(), pa.im.clone(), pb.im.clone());
        self.push_bin(BinOp::Mul, t3.clone(), pa.re, pb.im);
        self.push_bin(BinOp::Mul, t4.clone(), pa.im, pb.re);
        self.push_bin(BinOp::Sub, dr, Value::Place(t1), Value::Place(t2));
        self.push_bin(BinOp::Add, di, Value::Place(t3), Value::Place(t4));
        Ok(())
    }

    fn lower_div(
        &mut self,
        dr: Place,
        di: Place,
        _a: &Value,
        b: &Value,
        pa: Pair,
        pb: Pair,
    ) -> Result<(), TypeTransError> {
        if let Some(c) = b.as_const() {
            if c == Complex::ZERO {
                return Err(TypeTransError("division by the zero constant".into()));
            }
            // Divide by constant = multiply by reciprocal.
            let r = c.recip();
            let recip = Value::Const(r);
            let pv = pa;
            return self.lower_mul(
                dr,
                di,
                &recip,
                b,
                Pair {
                    re: Value::Const(Complex::real(r.re)),
                    im: Value::Const(Complex::real(r.im)),
                },
                pv,
            );
        }
        // General division: num = a·conj(b), den = |b|².
        let den = self.fresh();
        let t1 = self.fresh();
        let t2 = self.fresh();
        self.push_bin(BinOp::Mul, t1.clone(), pb.re.clone(), pb.re.clone());
        self.push_bin(BinOp::Mul, t2.clone(), pb.im.clone(), pb.im.clone());
        self.push_bin(BinOp::Add, den.clone(), Value::Place(t1), Value::Place(t2));
        let n1 = self.fresh();
        let n2 = self.fresh();
        let n3 = self.fresh();
        let n4 = self.fresh();
        self.push_bin(BinOp::Mul, n1.clone(), pa.re.clone(), pb.re.clone());
        self.push_bin(BinOp::Mul, n2.clone(), pa.im.clone(), pb.im.clone());
        self.push_bin(BinOp::Mul, n3.clone(), pa.im, pb.re);
        self.push_bin(BinOp::Mul, n4.clone(), pa.re, pb.im);
        let nr = self.fresh();
        let ni = self.fresh();
        self.push_bin(BinOp::Add, nr.clone(), Value::Place(n1), Value::Place(n2));
        self.push_bin(BinOp::Sub, ni.clone(), Value::Place(n3), Value::Place(n4));
        self.push_bin(BinOp::Div, dr, Value::Place(nr), Value::Place(den.clone()));
        self.push_bin(BinOp::Div, di, Value::Place(ni), Value::Place(den));
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Interleaved-complex helpers for tests of real-typed programs
    //! (the `f64` production equivalents live in `spl_vm::convert`).
    use spl_numeric::Complex;

    /// `[z0, z1, ...]` → `[re0, im0, ...]` as real-valued `Complex`es.
    pub fn interleave(x: &[Complex]) -> Vec<Complex> {
        x.iter()
            .flat_map(|c| [Complex::real(c.re), Complex::real(c.im)])
            .collect()
    }

    /// Inverse of [`interleave`].
    pub fn deinterleave(x: &[Complex]) -> Vec<Complex> {
        assert!(x.len().is_multiple_of(2), "deinterleave: odd length");
        x.chunks(2)
            .map(|p| Complex::new(p[0].re, p[1].re))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics::eval_intrinsics;
    use crate::unroll::unroll_all;
    use spl_frontend::parser::parse_formula;
    use spl_icode::interp::run;
    use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

    fn lower(src: &str, unroll: bool) -> (IProgram, IProgram) {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        let mut p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        if unroll {
            p = unroll_all(&p).unwrap();
        }
        let p = eval_intrinsics(&p).unwrap();
        let r = complex_to_real(&p).unwrap();
        r.validate().unwrap();
        assert!(!r.complex);
        (p, r)
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64) * 0.7 - 1.0, (i as f64).sin()))
            .collect()
    }

    fn check(src: &str, n: usize, unroll: bool) {
        let (p, r) = lower(src, unroll);
        let x = ramp(n);
        let want = run(&p, &x).unwrap();
        let got_flat = run(&r, &testutil::interleave(&x)).unwrap();
        let got = testutil::deinterleave(&got_flat);
        for (u, v) in got.iter().zip(&want) {
            assert!(u.approx_eq(*v, 1e-12), "{src}: {u} vs {v}");
        }
    }

    #[test]
    fn straight_line_ffts() {
        check("(F 2)", 2, true);
        check("(F 4)", 4, true);
        check(
            "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))",
            4,
            true,
        );
    }

    #[test]
    fn loop_code_with_tables() {
        check("(F 4)", 4, false);
        check("(T 8 4)", 8, false);
        check("(tensor (I 4) (F 2))", 8, false);
        check(
            "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))",
            8,
            false,
        );
    }

    #[test]
    fn multiplication_by_i_swaps_and_negates() {
        check("(diagonal ((0,-1) (0,1) 1 -1))", 4, true);
    }

    #[test]
    fn aliasing_twiddle_multiply_in_place() {
        // T writes out[k] = W * in[k]; with composition the same storage
        // can appear on both sides after value forwarding, so the
        // imaginary-constant path must save the real lane.
        check("(compose (T 4 2) (T 4 2))", 4, true);
    }

    #[test]
    fn complex_matrix_entries() {
        check("(matrix ((1,1) (0,-1)) ((2,0) (0,0)))", 2, true);
    }

    #[test]
    fn vector_sizes_double() {
        let (_, r) = lower("(compose (F 2) (F 2))", false);
        assert_eq!(r.n_in, 4);
        assert_eq!(r.n_out, 4);
        assert_eq!(r.temps, vec![4]);
    }

    #[test]
    fn tables_interleave() {
        let (p, r) = lower("(T 8 4)", false);
        assert_eq!(r.tables[0].len(), p.tables[0].len() * 2);
        for (k, c) in p.tables[0].iter().enumerate() {
            assert_eq!(r.tables[0][2 * k].re, c.re);
            assert_eq!(r.tables[0][2 * k + 1].re, c.im);
        }
    }

    #[test]
    fn mark_real_accepts_real_programs() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(tensor (F 2) (F 2))").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        let r = mark_real(&p).unwrap();
        assert!(!r.complex);
    }

    #[test]
    fn mark_real_rejects_complex_constants() {
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(diagonal ((0,-1) 1))").unwrap();
        let p = expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap();
        assert!(mark_real(&p).is_err());
    }

    #[test]
    fn division_by_complex_constant() {
        // (diagonal (...)) with division is not expressible directly;
        // exercise the path with a handmade instruction.
        use spl_icode::{Affine, VecKind};
        let at = |kind, i| {
            Place::Vec(VecRef {
                kind,
                idx: Affine::constant(i),
            })
        };
        let p = IProgram {
            instrs: vec![Instr::Bin {
                op: BinOp::Div,
                dst: at(VecKind::Out, 0),
                a: Value::vec(VecKind::In, 0),
                b: Value::Const(Complex::new(0.0, 1.0)),
            }],
            n_in: 1,
            n_out: 1,
            ..IProgram::empty()
        };
        let r = complex_to_real(&p).unwrap();
        let x = vec![Complex::new(3.0, 4.0)];
        let y = testutil::deinterleave(&run(&r, &testutil::interleave(&x)).unwrap());
        // (3+4i)/i = 4 - 3i
        assert!(y[0].approx_eq(Complex::new(4.0, -3.0), 1e-12));
    }

    #[test]
    fn general_complex_division() {
        use spl_icode::{Affine, VecKind};
        let at = |kind, i| {
            Place::Vec(VecRef {
                kind,
                idx: Affine::constant(i),
            })
        };
        let p = IProgram {
            instrs: vec![Instr::Bin {
                op: BinOp::Div,
                dst: at(VecKind::Out, 0),
                a: Value::vec(VecKind::In, 0),
                b: Value::vec(VecKind::In, 1),
            }],
            n_in: 2,
            n_out: 1,
            ..IProgram::empty()
        };
        let r = complex_to_real(&p).unwrap();
        let a = Complex::new(3.0, 4.0);
        let b = Complex::new(1.0, -2.0);
        let y = testutil::deinterleave(&run(&r, &testutil::interleave(&[a, b])).unwrap());
        assert!(y[0].approx_eq(a / b, 1e-12));
    }
}
