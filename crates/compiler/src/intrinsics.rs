//! Intrinsic function evaluation (paper Section 3.3.2).
//!
//! All intrinsic invocations are evaluated at compile time. `W(n, k)` with
//! constant arguments folds to a complex constant. When `k` depends on
//! loop indices (directly or through integer registers such as
//! `$r0 = $i0 * $i1`), the compiler evaluates the intrinsic for *all*
//! possible loop-index values, stores the results in a constant table, and
//! replaces the invocation by a table reference subscripted by the loop
//! indices.

use std::collections::HashMap;

use spl_icode::{Affine, BinOp, IProgram, Instr, LoopVar, Place, UnOp, Value, VecKind, VecRef};
use spl_numeric::twiddle::omega;

/// An error during intrinsic evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntrinsicError(pub String);

impl std::fmt::Display for IntrinsicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "intrinsic evaluation failed: {}", self.0)
    }
}

impl std::error::Error for IntrinsicError {}

/// Symbolic integer expression over loop variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IntSym {
    C(i64),
    V(LoopVar),
    Add(Box<IntSym>, Box<IntSym>),
    Sub(Box<IntSym>, Box<IntSym>),
    Mul(Box<IntSym>, Box<IntSym>),
    Div(Box<IntSym>, Box<IntSym>),
}

impl IntSym {
    fn eval(&self, env: &HashMap<LoopVar, i64>) -> i64 {
        match self {
            IntSym::C(v) => *v,
            IntSym::V(lv) => env[lv],
            IntSym::Add(a, b) => a.eval(env) + b.eval(env),
            IntSym::Sub(a, b) => a.eval(env) - b.eval(env),
            IntSym::Mul(a, b) => a.eval(env) * b.eval(env),
            IntSym::Div(a, b) => a.eval(env) / b.eval(env),
        }
    }

    fn vars(&self, out: &mut Vec<LoopVar>) {
        match self {
            IntSym::C(_) => {}
            IntSym::V(lv) => {
                if !out.contains(lv) {
                    out.push(*lv);
                }
            }
            IntSym::Add(a, b) | IntSym::Sub(a, b) | IntSym::Mul(a, b) | IntSym::Div(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }

    fn as_const(&self) -> Option<i64> {
        match self {
            IntSym::C(v) => Some(*v),
            _ => None,
        }
    }
}

/// Work counters for intrinsic evaluation, reported through the
/// telemetry layer (`intrinsics.*` counters in `splc --stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntrinsicStats {
    /// `W(n, k)` invocations folded to a complex constant.
    pub constants_folded: u64,
    /// Twiddle tables hoisted for loop-dependent invocations.
    pub tables_hoisted: u64,
    /// Total complex entries across the hoisted tables.
    pub table_entries: u64,
    /// Loop-dependent invocations served from an already-hoisted table.
    pub table_cache_hits: u64,
}

/// Evaluates every intrinsic invocation in the program, producing constant
/// folds and table references. The returned program contains no
/// [`Value::Intrinsic`] operands.
///
/// # Errors
///
/// Fails for unknown intrinsics, a non-constant modulus `n`, or arguments
/// whose value cannot be expressed over the open loop variables.
pub fn eval_intrinsics(prog: &IProgram) -> Result<IProgram, IntrinsicError> {
    eval_intrinsics_with_stats(prog).map(|(p, _)| p)
}

/// [`eval_intrinsics`], also reporting the folding and hoisting work done.
///
/// # Errors
///
/// Same failure modes as [`eval_intrinsics`].
pub fn eval_intrinsics_with_stats(
    prog: &IProgram,
) -> Result<(IProgram, IntrinsicStats), IntrinsicError> {
    let mut out = prog.clone();
    let mut st = Eval {
        open: Vec::new(),
        r_defs: HashMap::new(),
        tables: prog.tables.clone(),
        cache: HashMap::new(),
        stats: IntrinsicStats::default(),
    };
    let mut instrs = Vec::with_capacity(prog.instrs.len());
    for ins in &prog.instrs {
        match ins {
            Instr::DoStart { var, lo, hi, .. } => {
                st.open.push((*var, *lo, *hi));
                instrs.push(ins.clone());
            }
            Instr::DoEnd => {
                let (var, _, _) = st.open.pop().expect("validated i-code");
                // Integer definitions that referenced the closed loop
                // variable are now stale.
                st.r_defs.retain(|_, sym| {
                    let mut vs = Vec::new();
                    sym.vars(&mut vs);
                    !vs.contains(&var)
                });
                instrs.push(ins.clone());
            }
            Instr::Bin { op, dst, a, b } => {
                if let Place::R(r) = dst {
                    // Track integer-register definitions symbolically.
                    match (st.int_sym(a), st.int_sym(b)) {
                        (Some(sa), Some(sb)) => {
                            let sym = match op {
                                BinOp::Add => IntSym::Add(Box::new(sa), Box::new(sb)),
                                BinOp::Sub => IntSym::Sub(Box::new(sa), Box::new(sb)),
                                BinOp::Mul => IntSym::Mul(Box::new(sa), Box::new(sb)),
                                BinOp::Div => IntSym::Div(Box::new(sa), Box::new(sb)),
                            };
                            st.r_defs.insert(*r, sym);
                        }
                        _ => {
                            st.r_defs.remove(r);
                        }
                    }
                    instrs.push(ins.clone());
                } else {
                    let a = st.rewrite(a)?;
                    let b = st.rewrite(b)?;
                    instrs.push(Instr::Bin {
                        op: *op,
                        dst: dst.clone(),
                        a,
                        b,
                    });
                }
            }
            Instr::Un { op, dst, a } => {
                if let Place::R(r) = dst {
                    match st.int_sym(a) {
                        Some(sa) => {
                            let sym = match op {
                                UnOp::Copy => sa,
                                UnOp::Neg => IntSym::Sub(Box::new(IntSym::C(0)), Box::new(sa)),
                            };
                            st.r_defs.insert(*r, sym);
                        }
                        None => {
                            st.r_defs.remove(r);
                        }
                    }
                    instrs.push(ins.clone());
                } else {
                    let a = st.rewrite(a)?;
                    instrs.push(Instr::Un {
                        op: *op,
                        dst: dst.clone(),
                        a,
                    });
                }
            }
        }
    }
    out.instrs = instrs;
    out.tables = st.tables;
    Ok((out, st.stats))
}

struct Eval {
    open: Vec<(LoopVar, i64, i64)>,
    r_defs: HashMap<u32, IntSym>,
    tables: Vec<Vec<spl_numeric::Complex>>,
    /// Keyed by a canonical description of (n, expression, loop ranges)
    /// with loop variables renamed positionally, so that two
    /// instantiations of the same template share one table.
    cache: HashMap<String, u32>,
    stats: IntrinsicStats,
}

impl Eval {
    fn int_sym(&self, v: &Value) -> Option<IntSym> {
        match v {
            Value::Int(c) => Some(IntSym::C(*c)),
            Value::Const(c) if c.is_real() && c.re.fract() == 0.0 => Some(IntSym::C(c.re as i64)),
            Value::LoopIdx(lv) => Some(IntSym::V(*lv)),
            Value::Place(Place::R(r)) => self.r_defs.get(r).cloned(),
            _ => None,
        }
    }

    fn rewrite(&mut self, v: &Value) -> Result<Value, IntrinsicError> {
        let Value::Intrinsic(name, args) = v else {
            return Ok(v.clone());
        };
        if !matches!(name.as_str(), "W" | "w") {
            return Err(IntrinsicError(format!("unknown intrinsic {name}")));
        }
        if args.len() != 2 {
            return Err(IntrinsicError("W expects 2 arguments".into()));
        }
        let n_sym = self
            .int_sym(&args[0])
            .ok_or_else(|| IntrinsicError("W: symbolic modulus".into()))?;
        let n = n_sym
            .as_const()
            .ok_or_else(|| IntrinsicError("W: modulus must be constant".into()))?;
        if n <= 0 {
            return Err(IntrinsicError("W: modulus must be positive".into()));
        }
        let k_sym = self
            .int_sym(&args[1])
            .ok_or_else(|| IntrinsicError("W: argument is not an integer expression".into()))?;
        if let Some(k) = k_sym.as_const() {
            self.stats.constants_folded += 1;
            return Ok(Value::Const(omega(n as usize, k)));
        }
        // Loop-dependent: evaluate for all loop-index values into a table
        // subscripted by the (flattened) loop indices.
        let mut vars = Vec::new();
        k_sym.vars(&mut vars);
        if vars.is_empty() {
            // Constant expression in disguise (e.g. through Div).
            self.stats.constants_folded += 1;
            let k = k_sym.eval(&HashMap::new());
            return Ok(Value::Const(omega(n as usize, k)));
        }
        let mut ranges = Vec::new();
        for v in &vars {
            let r = self
                .open
                .iter()
                .find(|(lv, _, _)| lv == v)
                .ok_or_else(|| IntrinsicError("W: argument escapes its loop".into()))?;
            ranges.push((*v, r.1, r.2));
        }
        // Canonical key: rename loop variables positionally so identical
        // template instantiations (different variable ids) share a table.
        let canon: HashMap<LoopVar, usize> =
            vars.iter().enumerate().map(|(k, &v)| (v, k)).collect();
        let key = format!(
            "{n}|{}|{ranges_canon:?}",
            canon_sym(&k_sym, &canon),
            ranges_canon = ranges
                .iter()
                .map(|&(_, lo, hi)| (lo, hi))
                .collect::<Vec<_>>()
        );
        // Flattened index: row-major over the variable ranges.
        let mut idx = Affine::constant(0);
        let mut size: i64 = 1;
        for &(v, lo, hi) in ranges.iter().rev() {
            idx.add_term(size, v);
            idx.c -= size * lo;
            size *= hi - lo + 1;
        }
        if let Some(&tid) = self.cache.get(&key) {
            self.stats.table_cache_hits += 1;
            return Ok(Value::Place(Place::Vec(VecRef {
                kind: VecKind::Table(tid),
                idx,
            })));
        }
        let mut values = vec![spl_numeric::Complex::ZERO; size as usize];
        let mut env: HashMap<LoopVar, i64> = ranges.iter().map(|&(v, lo, _)| (v, lo)).collect();
        loop {
            let flat = idx.eval(&|lv| env[&lv]);
            values[flat as usize] = omega(n as usize, k_sym.eval(&env));
            // Odometer increment over the ranges.
            let mut done = true;
            for &(v, lo, hi) in ranges.iter().rev() {
                let slot = env.get_mut(&v).unwrap();
                if *slot < hi {
                    *slot += 1;
                    done = false;
                    break;
                }
                *slot = lo;
            }
            if done {
                break;
            }
        }
        let tid = self.tables.len() as u32;
        self.stats.tables_hoisted += 1;
        self.stats.table_entries += values.len() as u64;
        self.tables.push(values);
        self.cache.insert(key, tid);
        Ok(Value::Place(Place::Vec(VecRef {
            kind: VecKind::Table(tid),
            idx,
        })))
    }
}

/// Canonical rendering of a symbolic expression with positional variable
/// names, for table deduplication.
fn canon_sym(s: &IntSym, names: &HashMap<LoopVar, usize>) -> String {
    match s {
        IntSym::C(v) => format!("{v}"),
        IntSym::V(lv) => format!("v{}", names[lv]),
        IntSym::Add(a, b) => format!("({}+{})", canon_sym(a, names), canon_sym(b, names)),
        IntSym::Sub(a, b) => format!("({}-{})", canon_sym(a, names), canon_sym(b, names)),
        IntSym::Mul(a, b) => format!("({}*{})", canon_sym(a, names), canon_sym(b, names)),
        IntSym::Div(a, b) => format!("({}/{})", canon_sym(a, names), canon_sym(b, names)),
    }
}

/// Returns `true` if any intrinsic invocation remains in the program.
pub fn has_intrinsics(prog: &IProgram) -> bool {
    fn value_has(v: &Value) -> bool {
        matches!(v, Value::Intrinsic(_, _))
    }
    prog.instrs.iter().any(|ins| {
        let mut found = false;
        ins.for_each_value(&mut |v| found |= value_has(v));
        found
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unroll::unroll_all;
    use spl_frontend::parser::parse_formula;
    use spl_icode::interp::run;
    use spl_numeric::Complex;
    use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

    fn expand(src: &str) -> IProgram {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        expand_formula(&sexp, &table, &ExpandOptions::default()).unwrap()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 - 1.5, (i as f64).cos()))
            .collect()
    }

    #[test]
    fn loop_dependent_twiddles_become_tables() {
        let p = expand("(F 4)");
        let e = eval_intrinsics(&p).unwrap();
        assert!(!has_intrinsics(&e));
        assert_eq!(e.tables.len(), 1);
        assert_eq!(e.tables[0].len(), 16); // 4x4 loop nest
        e.validate().unwrap();
        let x = ramp(4);
        let a = run(&p, &x).unwrap();
        let b = run(&e, &x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!(u.approx_eq(*v, 1e-13));
        }
    }

    #[test]
    fn constant_args_fold_to_constants() {
        let p = unroll_all(&expand("(F 4)")).unwrap();
        let e = eval_intrinsics(&p).unwrap();
        assert!(!has_intrinsics(&e));
        assert!(e.tables.is_empty(), "straight-line code needs no tables");
        let x = ramp(4);
        assert_eq!(run(&p, &x).unwrap(), run(&e, &x).unwrap());
    }

    #[test]
    fn tables_are_cached_per_expression() {
        // T 8 4 inside a loop over two blocks reuses one table.
        let p = expand("(tensor (I 2) (T 8 4))");
        let e = eval_intrinsics(&p).unwrap();
        assert_eq!(e.tables.len(), 1);
        let x = ramp(16);
        let a = run(&p, &x).unwrap();
        let b = run(&e, &x).unwrap();
        for (u, v) in a.iter().zip(&b) {
            assert!(u.approx_eq(*v, 1e-13));
        }
    }

    #[test]
    fn twiddle_table_values_are_correct() {
        let p = expand("(T 8 4)");
        let e = eval_intrinsics(&p).unwrap();
        assert_eq!(e.tables.len(), 1);
        // Table is indexed by (i0, i1) flattened; value = W(8, i0*i1).
        let t = &e.tables[0];
        assert_eq!(t.len(), 8);
        for i0 in 0..2i64 {
            for i1 in 0..4i64 {
                let want = omega(8, i0 * i1);
                let got = t[(i0 * 4 + i1) as usize];
                assert!(got.approx_eq(want, 0.0), "({i0},{i1})");
            }
        }
    }

    #[test]
    fn stats_track_folds_and_tables() {
        let (_, looped) = eval_intrinsics_with_stats(&expand("(F 4)")).unwrap();
        assert_eq!(looped.tables_hoisted, 1);
        assert_eq!(looped.table_entries, 16);
        let (_, straight) =
            eval_intrinsics_with_stats(&unroll_all(&expand("(F 4)")).unwrap()).unwrap();
        assert!(straight.constants_folded > 0);
        assert_eq!(straight.tables_hoisted, 0);
        let (_, cached) = eval_intrinsics_with_stats(&expand("(tensor (I 2) (T 8 4))")).unwrap();
        assert_eq!(cached.tables_hoisted, 1);
    }

    #[test]
    fn unknown_intrinsic_rejected() {
        let mut p = expand("(I 2)");
        p.instrs.push(Instr::Un {
            op: UnOp::Copy,
            dst: Place::F(0),
            a: Value::Intrinsic("BOGUS".into(), vec![]),
        });
        p.n_f = 1;
        assert!(eval_intrinsics(&p).is_err());
    }

    #[test]
    fn large_fft_formula_end_to_end() {
        let p = expand("(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))");
        let e = eval_intrinsics(&p).unwrap();
        assert!(!has_intrinsics(&e));
        let x = ramp(8);
        let got = run(&e, &x).unwrap();
        let want = spl_numeric::reference::dft(&x);
        for (u, v) in got.iter().zip(&want) {
            assert!(u.approx_eq(*v, 1e-12));
        }
    }
}
