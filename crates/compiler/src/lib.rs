#![warn(missing_docs)]

//! The SPL compiler (the paper's primary contribution).
//!
//! Translates SPL programs — formulas denoting matrix factorizations —
//! into subroutines computing the matrix–vector product `y = M x`.
//! The compiler proceeds in the paper's five phases:
//!
//! 1. **parsing** (`spl-frontend`),
//! 2. **intermediate code generation** via templates (`spl-templates`),
//! 3. **intermediate code restructuring** — loop [unrolling](unroll),
//!    [intrinsic evaluation](intrinsics), and
//!    [type transformation](typetrans),
//! 4. **optimization** — value numbering with constant folding, copy
//!    propagation, CSE and dead-code elimination ([optimize]),
//! 5. **target code generation** — Fortran or C ([codegen]).
//!
//! # Examples
//!
//! ```
//! use spl_compiler::{Compiler, CompilerOptions};
//!
//! let src = "
//! #datatype complex
//! #codetype real
//! #subname fft4
//! (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))
//! ";
//! let mut compiler = Compiler::with_options(CompilerOptions {
//!     unroll_threshold: Some(32),
//!     ..Default::default()
//! });
//! let units = compiler.compile_source(src).unwrap();
//! assert_eq!(units.len(), 1);
//! let fortran = units[0].emit();
//! assert!(fortran.contains("subroutine fft4(y,x)"));
//! ```

pub mod codegen;
pub mod error;
pub mod intrinsics;
pub mod optimize;
pub mod passes;
pub mod typetrans;
pub mod unroll;

use std::collections::HashSet;

use spl_frontend::ast::{DataType, DirectiveState, Item, Language, Unroll};
use spl_frontend::sexp::Sexp;
use spl_icode::IProgram;
use spl_telemetry::{Stopwatch, Telemetry};
use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

pub use codegen::CodegenOptions;
pub use error::CompileError;

/// The optimization levels used in the paper's Figure 2 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization (Figure 2 version 1).
    None,
    /// Replace temporary vectors with scalar variables only (version 2).
    ScalarTemps,
    /// The default optimizations: scalarization plus value numbering —
    /// constant folding, copy propagation, CSE, DCE (version 3).
    #[default]
    Default,
}

/// Resource limits for one compilation.
///
/// Degenerate (typically machine-generated) formulas can otherwise
/// stack-overflow the parser or expander, or exhaust memory during
/// unrolling. Every limit converts the abort into a typed error:
/// [`ParseErrorKind::LimitExceeded`](spl_frontend::ParseErrorKind),
/// [`ExpandError::LimitExceeded`](spl_templates::ExpandError), or
/// [`CompileError::ResourceLimit`].
#[derive(Debug, Clone)]
pub struct Limits {
    /// Formula nesting depth accepted by the parser
    /// (`splc --max-depth`).
    pub max_depth: usize,
    /// Template-expansion recursion depth cap.
    pub max_expand_depth: usize,
    /// Cap on i-code instructions emitted by expansion.
    pub max_expand_steps: usize,
    /// Cap on i-code instructions produced by loop unrolling
    /// (`splc --max-unrolled-ops`).
    pub max_unrolled_ops: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_depth: spl_frontend::DEFAULT_MAX_DEPTH,
            max_expand_depth: spl_templates::DEFAULT_EXPAND_DEPTH,
            max_expand_steps: spl_templates::DEFAULT_EXPAND_STEPS,
            max_unrolled_ops: DEFAULT_MAX_UNROLLED_OPS,
        }
    }
}

/// Default cap on unrolled i-code size (instructions).
pub const DEFAULT_MAX_UNROLLED_OPS: usize = 4_000_000;

/// Compiler-wide options (the command line of the paper's compiler).
#[derive(Debug, Clone, Default)]
pub struct CompilerOptions {
    /// `-B <n>`: fully unroll loops in sub-formulas whose input vector is
    /// at most `n` long.
    pub unroll_threshold: Option<usize>,
    /// Partially unroll every remaining loop by this factor
    /// (Section 3.3.1: "fully or partially").
    pub partial_unroll: Option<usize>,
    /// Optimization level.
    pub opt_level: OptLevel,
    /// Machine-dependent peepholes (Section 3.4).
    pub peephole: bool,
    /// Generate subroutines with offset/stride parameters (Section 3.5).
    pub io_params: bool,
    /// Vectorize: compile `A ⊗ I_m` instead of `A` (Section 3.5).
    pub vectorize: Option<usize>,
    /// Override the program's `#language` directives.
    pub language_override: Option<Language>,
    /// Resource limits (parser depth, expansion budget, unrolled size).
    pub limits: Limits,
    /// Per-pass translation validation (`splc --verify-passes`): replay
    /// the i-code on probe vectors after every optimization pass, and
    /// abort or quarantine a pass caught miscompiling.
    pub verify_passes: Option<passes::Validation>,
    /// Test/demo hook: append the deliberately-miscompiling
    /// [`passes::testing::DropOp`] pass to the pipeline
    /// (`splc --inject-buggy-pass`), so validation has something to
    /// catch.
    pub inject_buggy_pass: bool,
}

/// A compiled formula: the final i-code plus everything needed to print
/// target code or execute it.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// Subroutine name (from `#subname` or generated).
    pub name: String,
    /// The optimized i-code.
    pub program: IProgram,
    /// Source formula (after `define` resolution and vectorization).
    pub formula: Sexp,
    /// `#datatype` in effect.
    pub datatype: DataType,
    /// Effective code type (complex only for Fortran with
    /// `#codetype complex`).
    pub codetype: DataType,
    /// Target language.
    pub language: Language,
    /// Codegen peephole/io options captured from the compiler.
    pub codegen: CodegenOptions,
}

impl CompiledUnit {
    /// Prints the target-language subroutine.
    pub fn emit(&self) -> String {
        codegen::emit(&self.name, &self.program, &self.codegen)
    }

    /// Like [`emit`](Self::emit), but records the `codegen` phase span
    /// and a `codegen.lines` counter into `tel`.
    pub fn emit_traced(&self, tel: &mut Telemetry) -> String {
        let sw = Stopwatch::start();
        let out = self.emit();
        tel.record_span("codegen", sw.elapsed());
        tel.add("codegen.lines", out.lines().count() as u64);
        out
    }

    /// The input vector length in *user* elements (a complex point counts
    /// as one element even when the generated code is real-typed).
    pub fn logical_input_len(&self) -> usize {
        if self.datatype == DataType::Complex && self.codetype == DataType::Real {
            self.program.n_in / 2
        } else {
            self.program.n_in
        }
    }
}

/// The SPL compiler: a template table plus options.
///
/// The table is stateful: `template` items in compiled sources are added
/// and affect subsequent formulas, exactly as in the paper.
#[derive(Debug, Clone)]
pub struct Compiler {
    table: TemplateTable,
    opts: CompilerOptions,
    defines: Vec<(String, Sexp, bool)>,
    current_unroll: bool,
    counter: usize,
    telemetry: Telemetry,
    /// Passes caught miscompiling under quarantine-mode validation;
    /// skipped for the rest of this compiler's lifetime (all units).
    quarantined: HashSet<String>,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Compiler {
    /// A compiler with the built-in startup templates and default options.
    pub fn new() -> Self {
        Self::with_options(CompilerOptions::default())
    }

    /// A compiler with explicit options.
    pub fn with_options(opts: CompilerOptions) -> Self {
        Compiler {
            table: TemplateTable::builtin(),
            opts,
            defines: Vec::new(),
            current_unroll: false,
            counter: 0,
            telemetry: Telemetry::new(),
            quarantined: HashSet::new(),
        }
    }

    /// Pass names quarantined by per-pass validation so far (empty
    /// unless [`CompilerOptions::verify_passes`] uses
    /// [`passes::OnMiscompile::Quarantine`] and a pass was caught).
    pub fn quarantined_passes(&self) -> &HashSet<String> {
        &self.quarantined
    }

    /// Access to the template table (e.g. to register search-produced
    /// templates).
    pub fn table_mut(&mut self) -> &mut TemplateTable {
        &mut self.table
    }

    /// Telemetry accumulated over all compilations so far: one span per
    /// paper phase (`parse`, `expand`, `unroll`, `intrinsics`,
    /// `typetrans`, `optimize`), aggregate work counters
    /// (`optimize.cse_hits`, `unroll.loops_fully_unrolled`, …), and
    /// per-pass pipeline counters (`pass.<name>.runs`,
    /// `pass.<name>.changed`, `pass.<name>.probes`,
    /// `pass.<name>.quarantined`, `pass.fixpoint.iterations`).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Takes the accumulated telemetry, leaving an empty accumulator.
    pub fn take_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.telemetry)
    }

    /// Compiles a complete SPL program, returning one unit per formula.
    ///
    /// # Errors
    ///
    /// Returns the first parse, expansion, or lowering error.
    pub fn compile_source(&mut self, src: &str) -> Result<Vec<CompiledUnit>, CompileError> {
        let sw = Stopwatch::start();
        let program = spl_frontend::parse_program_with_depth(src, self.opts.limits.max_depth)?;
        self.telemetry.record_span("parse", sw.elapsed());
        let mut units = Vec::new();
        for item in program.items {
            match item {
                Item::Template(t) => self.table.add(t),
                Item::Define { name, body } => {
                    // The unroll state *at the define* governs its
                    // expansion (the paper's I64F2 example).
                    let unroll = self.current_unroll;
                    self.defines.push((name, body, unroll));
                }
                Item::Directive(d) => {
                    if let spl_frontend::Directive::Unroll(u) = d {
                        self.current_unroll = u == Unroll::On;
                    }
                }
                Item::Formula { sexp, directives } => {
                    units.push(self.compile_sexp(&sexp, &directives)?);
                }
            }
        }
        Ok(units)
    }

    /// Compiles a single formula under explicit directives.
    ///
    /// # Errors
    ///
    /// Returns expansion or lowering errors.
    pub fn compile_sexp(
        &mut self,
        sexp: &Sexp,
        directives: &DirectiveState,
    ) -> Result<CompiledUnit, CompileError> {
        let language = self.opts.language_override.unwrap_or(directives.language);
        // Effective code type: C forces real (paper Section 3.3.3).
        let codetype = if language == Language::C || directives.datatype == DataType::Real {
            DataType::Real
        } else {
            directives.codetype
        };
        let sexp = match self.opts.vectorize {
            Some(m) if m > 1 => Sexp::List(vec![
                Sexp::sym("tensor"),
                sexp.clone(),
                Sexp::List(vec![Sexp::sym("I"), Sexp::Int(m as i64)]),
            ]),
            _ => sexp.clone(),
        };
        let expand_opts = ExpandOptions {
            unroll: directives.unroll == Unroll::On,
            unroll_threshold: self.opts.unroll_threshold,
            defines: self.defines.clone(),
            max_depth: self.opts.limits.max_expand_depth,
            max_steps: self.opts.limits.max_expand_steps,
        };
        let sw = Stopwatch::start();
        let mut prog = expand_formula(&sexp, &self.table, &expand_opts)?;
        self.telemetry.record_span("expand", sw.elapsed());
        // Phase 3: restructuring.
        let sw = Stopwatch::start();
        let (unrolled, ustats) =
            unroll::unroll_with_stats_capped(&prog, self.opts.limits.max_unrolled_ops)?;
        prog = unrolled;
        self.telemetry.record_span("unroll", sw.elapsed());
        self.telemetry
            .add("unroll.loops_fully_unrolled", ustats.loops_fully_unrolled);
        let sw = Stopwatch::start();
        let (evaled, istats) = intrinsics::eval_intrinsics_with_stats(&prog)?;
        prog = evaled;
        self.telemetry.record_span("intrinsics", sw.elapsed());
        self.telemetry
            .add("intrinsics.constants_folded", istats.constants_folded);
        self.telemetry
            .add("intrinsics.tables_hoisted", istats.tables_hoisted);
        self.telemetry
            .add("intrinsics.table_entries", istats.table_entries);
        self.telemetry
            .add("intrinsics.table_cache_hits", istats.table_cache_hits);
        if let Some(factor) = self.opts.partial_unroll {
            let sw = Stopwatch::start();
            let (partial, pstats) = unroll::unroll_partial_with_stats(&prog, factor.max(1))?;
            prog = partial;
            // Partial unrolling belongs to the same paper phase; the
            // span accumulates.
            self.telemetry.record_span("unroll", sw.elapsed());
            self.telemetry.add(
                "unroll.loops_partially_unrolled",
                pstats.loops_partially_unrolled,
            );
        }
        let sw = Stopwatch::start();
        prog = match (directives.datatype, codetype) {
            (DataType::Real, _) => typetrans::mark_real(&prog)?,
            (DataType::Complex, DataType::Real) => typetrans::complex_to_real(&prog)?,
            (DataType::Complex, DataType::Complex) => prog,
        };
        self.telemetry.record_span("typetrans", sw.elapsed());
        // Phase 4: optimization, as a composable pass pipeline built
        // from the `-O` level (with optional per-pass translation
        // validation and pass quarantine).
        let sw = Stopwatch::start();
        let mut builder = passes::PipelineBuilder::for_level(self.opts.opt_level);
        if self.opts.inject_buggy_pass {
            builder = builder.post(passes::testing::DropOp);
        }
        let pipeline = builder.validation(self.opts.verify_passes.clone()).build();
        let outcome = pipeline.run(&prog, &mut self.quarantined)?;
        prog = outcome.program;
        self.telemetry.record_span("optimize", sw.elapsed());
        if self.opts.opt_level != OptLevel::None {
            self.telemetry
                .add("unroll.temps_scalarized", outcome.stats.temps_scalarized);
        }
        if self.opts.opt_level == OptLevel::Default {
            let ostats = &outcome.stats;
            self.telemetry
                .add("optimize.instrs_before", ostats.instrs_before);
            self.telemetry
                .add("optimize.instrs_after", ostats.instrs_after);
            self.telemetry
                .add("optimize.constants_folded", ostats.constants_folded);
            self.telemetry
                .add("optimize.copies_propagated", ostats.copies_propagated);
            self.telemetry.add("optimize.cse_hits", ostats.cse_hits);
            self.telemetry
                .add("optimize.dce_removed", ostats.dce_removed);
            self.telemetry
                .add("optimize.loops_vectorized", ostats.loops_vectorized);
        }
        for ps in &outcome.passes {
            self.telemetry.record_span(
                &format!("pass.{}", ps.name),
                std::time::Duration::from_nanos(ps.wall_ns.min(u64::MAX as u128) as u64),
            );
            self.telemetry
                .add(&format!("pass.{}.runs", ps.name), ps.runs);
            self.telemetry
                .add(&format!("pass.{}.changed", ps.name), ps.changed);
            if ps.probes > 0 {
                self.telemetry
                    .add(&format!("pass.{}.probes", ps.name), ps.probes);
            }
        }
        if !outcome.passes.is_empty() {
            self.telemetry
                .add("pass.fixpoint.iterations", outcome.iterations);
            if outcome.hit_iteration_cap {
                self.telemetry.add("pass.fixpoint.capped", 1);
            }
        }
        if outcome.validation_active {
            self.telemetry.add("pass.validation.active", 1);
        }
        for name in &outcome.quarantined {
            self.telemetry.add(&format!("pass.{name}.quarantined"), 1);
        }
        prog.validate()
            .map_err(|e| CompileError::Internal(e.to_string()))?;
        self.telemetry.add("program.units", 1);
        self.telemetry
            .add("program.instrs", prog.static_instr_count() as u64);
        let name = directives.subname.clone().unwrap_or_else(|| {
            self.counter += 1;
            format!("sub{}", self.counter)
        });
        Ok(CompiledUnit {
            name,
            program: prog,
            formula: sexp,
            datatype: directives.datatype,
            codetype,
            language,
            codegen: CodegenOptions {
                language,
                codetype,
                peephole: self.opts.peephole,
                io_params: self.opts.io_params,
            },
        })
    }

    /// Compiles a single formula given as source text with the paper's
    /// experimental configuration (complex data, real code, Fortran).
    ///
    /// # Errors
    ///
    /// Returns parse, expansion, or lowering errors.
    pub fn compile_formula_str(&mut self, src: &str) -> Result<CompiledUnit, CompileError> {
        let sw = Stopwatch::start();
        let sexp = spl_frontend::parse_formula_with_depth(src, self.opts.limits.max_depth)?;
        self.telemetry.record_span("parse", sw.elapsed());
        let directives = DirectiveState {
            datatype: DataType::Complex,
            codetype: DataType::Real,
            ..Default::default()
        };
        self.compile_sexp(&sexp, &directives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_numeric::Complex;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).cos(), (i as f64) * 0.25))
            .collect()
    }

    fn run_unit(unit: &CompiledUnit, x: &[Complex]) -> Vec<Complex> {
        use crate::typetrans::testutil::{deinterleave, interleave};
        match (unit.datatype, unit.codetype) {
            (DataType::Complex, DataType::Real) => {
                let flat = spl_icode::interp::run(&unit.program, &interleave(x)).unwrap();
                deinterleave(&flat)
            }
            _ => spl_icode::interp::run(&unit.program, x).unwrap(),
        }
    }

    #[test]
    fn end_to_end_fft_sizes() {
        for (src, n) in [
            ("(F 2)", 2usize),
            ("(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))", 4),
            ("(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))) (L 8 2))", 8),
        ] {
            let mut c = Compiler::new();
            let unit = c.compile_formula_str(src).unwrap();
            let x = ramp(n);
            let y = run_unit(&unit, &x);
            let want = spl_numeric::reference::dft(&x);
            for (a, b) in y.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-11), "{src}");
            }
        }
    }

    #[test]
    fn all_opt_levels_agree() {
        let src = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let x = ramp(4);
        let mut results = Vec::new();
        for level in [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default] {
            let mut c = Compiler::with_options(CompilerOptions {
                opt_level: level,
                unroll_threshold: Some(32),
                ..Default::default()
            });
            let unit = c.compile_formula_str(src).unwrap();
            results.push(run_unit(&unit, &x));
        }
        for r in &results[1..] {
            for (a, b) in r.iter().zip(&results[0]) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn default_level_shrinks_code() {
        let src = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let sizes: Vec<usize> = [OptLevel::None, OptLevel::ScalarTemps, OptLevel::Default]
            .into_iter()
            .map(|level| {
                let mut c = Compiler::with_options(CompilerOptions {
                    opt_level: level,
                    unroll_threshold: Some(32),
                    ..Default::default()
                });
                c.compile_formula_str(src)
                    .unwrap()
                    .program
                    .static_instr_count()
            })
            .collect();
        assert!(sizes[2] < sizes[1], "{sizes:?}");
        assert!(sizes[2] < sizes[0], "{sizes:?}");
    }

    #[test]
    fn paper_i64f2_fortran_output() {
        // The exact program from Section 3.3.1 of the paper.
        let src = "\
#datatype real
#unroll on
(define I2F2 (tensor (I 2) (F 2)))
#unroll off
#subname I64F2
(tensor (I 32) I2F2)
";
        let mut c = Compiler::new();
        let units = c.compile_source(src).unwrap();
        assert_eq!(units.len(), 1);
        let f = units[0].emit();
        assert!(f.contains("subroutine I64F2(y,x)"), "{f}");
        assert!(f.contains("real*8 y(128),x(128)"), "{f}");
        assert!(f.contains("do i0 = 0, 31"), "{f}");
        // The unrolled butterflies at offsets 4*i0 + 1..4 (1-based).
        assert!(f.contains("y(4*i0+1) = x(4*i0+1) + x(4*i0+2)"), "{f}");
        assert!(f.contains("y(4*i0+2) = x(4*i0+1) - x(4*i0+2)"), "{f}");
        assert!(f.contains("y(4*i0+3) = x(4*i0+3) + x(4*i0+4)"), "{f}");
        assert!(f.contains("y(4*i0+4) = x(4*i0+3) - x(4*i0+4)"), "{f}");
        assert!(f.contains("end do"), "{f}");
    }

    #[test]
    fn templates_in_source_extend_compiler() {
        // A user template defining a scaling operator.
        let src = "\
(template (double n_) [n_>=1]
  (do $i0 = 0,n_-1
        $out($i0) = 2 * $in($i0)
   end))
#datatype real
#subname twice
(double 4)
";
        let mut c = Compiler::new();
        let units = c.compile_source(src).unwrap();
        let x: Vec<Complex> = (0..4).map(|i| Complex::real(i as f64 + 1.0)).collect();
        let y = spl_icode::interp::run(&units[0].program, &x).unwrap();
        for (a, b) in y.iter().zip(&x) {
            assert!(a.approx_eq(*b * Complex::real(2.0), 1e-14));
        }
    }

    #[test]
    fn c_output_compiles_formula() {
        let mut c = Compiler::with_options(CompilerOptions {
            language_override: Some(Language::C),
            unroll_threshold: Some(8),
            ..Default::default()
        });
        let unit = c.compile_formula_str("(F 4)").unwrap();
        let src = unit.emit();
        assert!(src.contains("void sub1(double *y, const double *x)"));
    }

    #[test]
    fn vectorize_option_wraps_formula() {
        let mut c = Compiler::with_options(CompilerOptions {
            vectorize: Some(4),
            ..Default::default()
        });
        let unit = c.compile_formula_str("(F 2)").unwrap();
        // 2 complex points × vector length 4 × 2 reals = 16.
        assert_eq!(unit.program.n_in, 16);
        assert_eq!(unit.logical_input_len(), 8);
    }

    #[test]
    fn partial_unroll_option_preserves_semantics() {
        let src = "(compose (tensor (F 2) (I 8)) (T 16 8) (tensor (I 2) (F 8)) (L 16 2))";
        let x = ramp(16);
        let mut plain = Compiler::new();
        let base = run_unit(&plain.compile_formula_str(src).unwrap(), &x);
        let mut partial = Compiler::with_options(CompilerOptions {
            partial_unroll: Some(4),
            ..Default::default()
        });
        let unit = partial.compile_formula_str(src).unwrap();
        let got = run_unit(&unit, &x);
        for (a, b) in got.iter().zip(&base) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn subname_directive_names_unit() {
        let mut c = Compiler::new();
        let units = c.compile_source("#subname myfft\n(F 2)\n(F 4)").unwrap();
        assert_eq!(units[0].name, "myfft");
        assert_eq!(units[1].name, "sub1");
    }

    #[test]
    fn datatype_complex_codetype_complex_keeps_complex_ir() {
        let mut c = Compiler::new();
        let units = c
            .compile_source("#datatype complex\n#codetype complex\n(F 2)")
            .unwrap();
        assert!(units[0].program.complex);
        let f = units[0].emit();
        assert!(f.contains("complex*16 y(2),x(2)"), "{f}");
    }

    #[test]
    fn telemetry_records_phases_and_counters() {
        let src = "#codetype real\n#subname fft4\n\
            (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let mut c = Compiler::with_options(CompilerOptions {
            unroll_threshold: Some(32),
            ..Default::default()
        });
        let units = c.compile_source(src).unwrap();
        let mut tel = c.take_telemetry();
        let _ = units[0].emit_traced(&mut tel);
        for phase in [
            "parse",
            "expand",
            "unroll",
            "intrinsics",
            "typetrans",
            "optimize",
            "codegen",
        ] {
            assert!(tel.span_ns(phase).is_some(), "missing phase {phase}");
        }
        assert_eq!(tel.counter("program.units"), Some(1));
        assert!(tel.counter("optimize.instrs_before").unwrap() > 0);
        assert!(
            tel.counter("optimize.instrs_after").unwrap()
                < tel.counter("optimize.instrs_before").unwrap()
        );
        assert!(tel.counter("codegen.lines").unwrap() > 0);
        // The accumulator is now empty again.
        assert!(c.telemetry().is_empty());
    }

    fn test_validation(on_miscompile: passes::OnMiscompile) -> passes::Validation {
        passes::Validation {
            on_miscompile,
            dump_dir: None,
            ..passes::Validation::default()
        }
    }

    #[test]
    fn injected_buggy_pass_aborts_with_its_name() {
        let mut c = Compiler::with_options(CompilerOptions {
            inject_buggy_pass: true,
            verify_passes: Some(test_validation(passes::OnMiscompile::Abort)),
            unroll_threshold: Some(32),
            ..Default::default()
        });
        let err = c.compile_formula_str("(F 4)").unwrap_err();
        match err {
            CompileError::MiscompilingPass { pass, .. } => {
                assert_eq!(pass, passes::testing::DROP_OP_NAME)
            }
            other => panic!("expected MiscompilingPass, got {other:?}"),
        }
    }

    #[test]
    fn injected_buggy_pass_is_quarantined_and_result_stays_correct() {
        let mut c = Compiler::with_options(CompilerOptions {
            inject_buggy_pass: true,
            verify_passes: Some(test_validation(passes::OnMiscompile::Quarantine)),
            unroll_threshold: Some(32),
            ..Default::default()
        });
        let unit = c.compile_formula_str("(F 4)").unwrap();
        assert!(c
            .quarantined_passes()
            .contains(passes::testing::DROP_OP_NAME));
        let x = ramp(4);
        let y = run_unit(&unit, &x);
        let want = spl_numeric::reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11), "quarantined compile wrong");
        }
        // A second unit skips the quarantined pass without re-tripping
        // validation, and the telemetry records the quarantine.
        let unit2 = c.compile_formula_str("(F 2)").unwrap();
        let x2 = ramp(2);
        let y2 = run_unit(&unit2, &x2);
        let want2 = spl_numeric::reference::dft(&x2);
        for (a, b) in y2.iter().zip(&want2) {
            assert!(a.approx_eq(*b, 1e-11));
        }
        let tel = c.take_telemetry();
        let key = format!("pass.{}.quarantined", passes::testing::DROP_OP_NAME);
        assert_eq!(tel.counter(&key), Some(1));
        assert_eq!(tel.counter("pass.validation.active"), Some(2));
    }

    #[test]
    fn verify_passes_clean_compile_records_probes() {
        let mut c = Compiler::with_options(CompilerOptions {
            verify_passes: Some(test_validation(passes::OnMiscompile::Abort)),
            unroll_threshold: Some(32),
            ..Default::default()
        });
        let unit = c.compile_formula_str("(F 4)").unwrap();
        let x = ramp(4);
        let y = run_unit(&unit, &x);
        let want = spl_numeric::reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-11));
        }
        let tel = c.take_telemetry();
        assert_eq!(tel.counter("pass.validation.active"), Some(1));
        assert!(tel.counter("pass.value-number.probes").unwrap_or(0) > 0);
        assert!(tel.counter("pass.value-number.runs").unwrap_or(0) > 0);
        assert!(tel.counter("pass.fixpoint.iterations").unwrap_or(0) > 0);
    }

    #[test]
    fn paper_f8_two_formulas_compute_same_result() {
        // Section 4.1's two different F8 factorizations.
        let f4 = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let formula1 =
            format!("(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) {f4}) (L 8 2))");
        let formula2 =
            format!("(compose (tensor {f4} (I 2)) (T 8 2) (tensor (I 4) (F 2)) (L 8 4))");
        let x = ramp(8);
        let mut c = Compiler::with_options(CompilerOptions {
            unroll_threshold: Some(32),
            ..Default::default()
        });
        let u1 = c.compile_formula_str(&formula1).unwrap();
        let u2 = c.compile_formula_str(&formula2).unwrap();
        let y1 = run_unit(&u1, &x);
        let y2 = run_unit(&u2, &x);
        let want = spl_numeric::reference::dft(&x);
        for ((a, b), w) in y1.iter().zip(&y2).zip(&want) {
            assert!(a.approx_eq(*w, 1e-11));
            assert!(b.approx_eq(*w, 1e-11));
        }
        // Different factorizations produce different instruction orders.
        assert_ne!(u1.program.instrs, u2.program.instrs);
    }
}
