//! Loop unrolling and scalarization (paper Section 3.3.1).
//!
//! Loops marked `unroll` by the expander (from `#unroll on` regions or the
//! `-B` threshold) are fully unrolled: the body is replicated with the
//! loop variable substituted by each constant trip value. After full
//! unrolling, temporary-vector elements with constant subscripts can be
//! replaced by scalar variables — which is what lets the back-end compiler
//! allocate them to registers.

use std::cell::Cell;
use std::collections::HashMap;

use spl_icode::{IProgram, Instr, LoopVar, Place, Value, VecKind, VecRef};

use crate::error::CompileError;

fn malformed(msg: String) -> CompileError {
    CompileError::MalformedIcode(msg)
}

/// Work counters for the unrolling passes, reported through the
/// telemetry layer (`unroll.*` counters in `splc --stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnrollStats {
    /// Loops fully replicated out of existence by [`unroll`].
    pub loops_fully_unrolled: u64,
    /// Loops rewritten into blocked form by [`unroll_partial`].
    pub loops_partially_unrolled: u64,
    /// Scalar registers introduced for temp elements by [`scalarize`].
    pub temps_scalarized: u64,
}

/// Fully unrolls every loop whose `unroll` flag is set (including loops
/// nested inside one being unrolled, which keep their own flag).
///
/// Fails with [`CompileError::MalformedIcode`] when the loop structure
/// is unbalanced (a malformed user template can expand to such i-code),
/// so one bad candidate degrades instead of aborting a search worker.
pub fn unroll(prog: &IProgram) -> Result<IProgram, CompileError> {
    Ok(unroll_with_stats(prog)?.0)
}

/// [`unroll`], also counting how many loops were eliminated.
pub fn unroll_with_stats(prog: &IProgram) -> Result<(IProgram, UnrollStats), CompileError> {
    unroll_with_stats_capped(prog, usize::MAX)
}

/// [`unroll_with_stats`] with a cap on the unrolled instruction count.
///
/// Replicating loop bodies multiplies code size, so a degenerate formula
/// (huge trip counts under `#unroll on` or a large `-B` threshold) can
/// exhaust memory. The cap stops replication as soon as any block
/// exceeds `max_ops` instructions and fails with
/// [`CompileError::ResourceLimit`] instead.
pub fn unroll_with_stats_capped(
    prog: &IProgram,
    max_ops: usize,
) -> Result<(IProgram, UnrollStats), CompileError> {
    let mut out = prog.clone();
    let mut n_loop = prog.n_loop;
    let mut stats = UnrollStats::default();
    (out.instrs, out.prov) = unroll_block(
        &prog.instrs,
        prog.prov_slice(),
        &mut n_loop,
        &mut stats.loops_fully_unrolled,
        max_ops,
    )?;
    out.n_loop = n_loop;
    Ok((out, stats))
}

/// Fully unrolls *all* loops regardless of flags (used when a whole
/// formula is compiled with `#unroll on` semantics at top level).
pub fn unroll_all(prog: &IProgram) -> Result<IProgram, CompileError> {
    let mut p = prog.clone();
    for ins in &mut p.instrs {
        if let Instr::DoStart { unroll, .. } = ins {
            *unroll = true;
        }
    }
    unroll(&p)
}

fn unroll_block(
    instrs: &[Instr],
    prov: &[u32],
    n_loop: &mut u32,
    unrolled: &mut u64,
    max_ops: usize,
) -> Result<(Vec<Instr>, Vec<u32>), CompileError> {
    let has_prov = !prov.is_empty();
    let sub_prov = |lo: usize, hi: usize| if has_prov { &prov[lo..hi] } else { &[][..] };
    let mut out = Vec::with_capacity(instrs.len());
    let mut out_prov = Vec::with_capacity(if has_prov { instrs.len() } else { 0 });
    let mut pc = 0;
    while pc < instrs.len() {
        match &instrs[pc] {
            Instr::DoStart {
                var,
                lo,
                hi,
                unroll: flag,
            } => {
                let end = matching_end(instrs, pc)?;
                let (body, body_prov) = unroll_block(
                    &instrs[pc + 1..end],
                    sub_prov(pc + 1, end),
                    n_loop,
                    unrolled,
                    max_ops,
                )?;
                if *flag {
                    *unrolled += 1;
                    for v in *lo..=*hi {
                        if out.len() > max_ops {
                            return Err(CompileError::ResourceLimit(format!(
                                "unrolled code exceeds {max_ops} instructions \
                                 (use --max-unrolled-ops to raise)"
                            )));
                        }
                        // Inner loops that were kept need fresh variable
                        // ids in every replica (ids are program-unique).
                        let replica = refresh_loop_vars(&body, n_loop);
                        for ins in &replica {
                            out.push(substitute_loop_var(ins, *var, v));
                        }
                        out_prov.extend_from_slice(&body_prov);
                    }
                } else {
                    out.push(instrs[pc].clone());
                    out.extend(body);
                    out.push(Instr::DoEnd);
                    if has_prov {
                        out_prov.push(prov[pc]);
                        out_prov.extend_from_slice(&body_prov);
                        out_prov.push(prov[end]);
                    }
                }
                pc = end + 1;
            }
            Instr::DoEnd => {
                return Err(malformed(format!(
                    "unbalanced loops: doend at instruction {pc} has no matching dostart"
                )));
            }
            other => {
                out.push(other.clone());
                if has_prov {
                    out_prov.push(prov[pc]);
                }
                pc += 1;
            }
        }
    }
    Ok((out, out_prov))
}

/// Partially unrolls every loop by the given factor: the body is
/// replicated `factor` times per iteration (with the loop variable offset
/// by `0..factor`), plus a remainder loop when the trip count does not
/// divide evenly (paper Section 3.3.1: loops may be unrolled "fully or
/// partially").
///
/// Loops whose trip count is below the factor are left alone; fully
/// unrollable flagged loops should be handled by [`unroll`] first.
///
/// Fails with [`CompileError::MalformedIcode`] on unbalanced loop
/// structure, like [`unroll`].
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn unroll_partial(prog: &IProgram, factor: usize) -> Result<IProgram, CompileError> {
    Ok(unroll_partial_with_stats(prog, factor)?.0)
}

/// [`unroll_partial`], also counting how many loops were blocked.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn unroll_partial_with_stats(
    prog: &IProgram,
    factor: usize,
) -> Result<(IProgram, UnrollStats), CompileError> {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let mut out = prog.clone();
    let mut stats = UnrollStats::default();
    if factor == 1 {
        return Ok((out, stats));
    }
    (out.instrs, out.prov) = partial_block(
        &prog.instrs,
        prog.prov_slice(),
        factor as i64,
        &mut out.n_loop,
        &mut stats.loops_partially_unrolled,
    )?;
    Ok((out, stats))
}

fn partial_block(
    instrs: &[Instr],
    prov: &[u32],
    factor: i64,
    n_loop: &mut u32,
    blocked: &mut u64,
) -> Result<(Vec<Instr>, Vec<u32>), CompileError> {
    let has_prov = !prov.is_empty();
    let sub_prov = |lo: usize, hi: usize| if has_prov { &prov[lo..hi] } else { &[][..] };
    let mut out = Vec::with_capacity(instrs.len());
    let mut out_prov = Vec::with_capacity(if has_prov { instrs.len() } else { 0 });
    let mut pc = 0;
    while pc < instrs.len() {
        match &instrs[pc] {
            Instr::DoStart {
                var,
                lo,
                hi,
                unroll: flag,
            } => {
                let end = matching_end(instrs, pc)?;
                let (body, body_prov) = partial_block(
                    &instrs[pc + 1..end],
                    sub_prov(pc + 1, end),
                    factor,
                    n_loop,
                    blocked,
                )?;
                let trips = hi - lo + 1;
                // A body reading the loop index as a *value* (rather than
                // in a subscript) cannot be re-expressed over the block
                // counter; keep such loops intact. This only arises
                // before intrinsic evaluation.
                let reads_index = body.iter().any(|ins| {
                    let mut hit = false;
                    ins.for_each_value(&mut |v| {
                        fn scan(v: &Value, var: LoopVar, hit: &mut bool) {
                            match v {
                                Value::LoopIdx(lv) if *lv == var => *hit = true,
                                Value::Intrinsic(_, args) => {
                                    args.iter().for_each(|a| scan(a, var, hit))
                                }
                                _ => {}
                            }
                        }
                        scan(v, *var, &mut hit);
                    });
                    hit
                });
                if trips < factor || reads_index {
                    out.push(instrs[pc].clone());
                    out.extend(body);
                    out.push(Instr::DoEnd);
                    if has_prov {
                        out_prov.push(prov[pc]);
                        out_prov.extend_from_slice(&body_prov);
                        out_prov.push(prov[end]);
                    }
                } else {
                    // Main loop: a fresh block counter b = 0..trips/factor,
                    // body instances at var = lo + b*factor + k.
                    *blocked += 1;
                    let blocks = trips / factor;
                    let block_var = LoopVar(*n_loop);
                    *n_loop += 1;
                    out.push(Instr::DoStart {
                        var: block_var,
                        lo: 0,
                        hi: blocks - 1,
                        unroll: *flag,
                    });
                    if has_prov {
                        // The block loop header/footer inherit the
                        // original loop's node.
                        out_prov.push(prov[pc]);
                    }
                    for k in 0..factor {
                        // Each replica needs fresh ids for any loops it
                        // contains (loop variables are program-unique).
                        let replica = refresh_loop_vars(&body, n_loop);
                        for ins in &replica {
                            // var -> lo + k + factor*block_var: substitute
                            // the constant part, then add the scaled block
                            // term to every affine that mentioned var.
                            out.push(replace_loop_var_affine(
                                ins,
                                *var,
                                *lo + k,
                                factor,
                                block_var,
                            )?);
                        }
                        out_prov.extend_from_slice(&body_prov);
                    }
                    out.push(Instr::DoEnd);
                    if has_prov {
                        out_prov.push(prov[end]);
                    }
                    // Remainder, fully unrolled.
                    for v in (lo + blocks * factor)..=*hi {
                        let replica = refresh_loop_vars(&body, n_loop);
                        for ins in &replica {
                            out.push(substitute_loop_var(ins, *var, v));
                        }
                        out_prov.extend_from_slice(&body_prov);
                    }
                }
                pc = end + 1;
            }
            Instr::DoEnd => {
                return Err(malformed(format!(
                    "unbalanced loops: doend at instruction {pc} has no matching dostart"
                )));
            }
            other => {
                out.push(other.clone());
                if has_prov {
                    out_prov.push(prov[pc]);
                }
                pc += 1;
            }
        }
    }
    Ok((out, out_prov))
}

/// Gives every loop nested in `body` a fresh program-unique variable id
/// (used when a body is replicated).
fn refresh_loop_vars(body: &[Instr], n_loop: &mut u32) -> Vec<Instr> {
    let mut map: HashMap<LoopVar, LoopVar> = HashMap::new();
    for ins in body {
        if let Instr::DoStart { var, .. } = ins {
            let fresh = LoopVar(*n_loop);
            *n_loop += 1;
            map.insert(*var, fresh);
        }
    }
    if map.is_empty() {
        return body.to_vec();
    }
    let sub_affine = |a: &spl_icode::Affine| -> spl_icode::Affine {
        let mut r = spl_icode::Affine::constant(a.c);
        for &(k, v) in &a.terms {
            r.add_term(k, map.get(&v).copied().unwrap_or(v));
        }
        r
    };
    let sub_place = |p: &Place| -> Place {
        match p {
            Place::Vec(v) => Place::Vec(VecRef {
                kind: v.kind,
                idx: sub_affine(&v.idx),
            }),
            other => other.clone(),
        }
    };
    fn sub_value(
        v: &Value,
        map: &HashMap<LoopVar, LoopVar>,
        sub_place: &dyn Fn(&Place) -> Place,
    ) -> Value {
        match v {
            Value::Place(p) => Value::Place(sub_place(p)),
            Value::LoopIdx(lv) => Value::LoopIdx(map.get(lv).copied().unwrap_or(*lv)),
            Value::Intrinsic(name, args) => Value::Intrinsic(
                name.clone(),
                args.iter().map(|a| sub_value(a, map, sub_place)).collect(),
            ),
            other => other.clone(),
        }
    }
    body.iter()
        .map(|ins| match ins {
            Instr::DoStart {
                var,
                lo,
                hi,
                unroll,
            } => Instr::DoStart {
                var: map[var],
                lo: *lo,
                hi: *hi,
                unroll: *unroll,
            },
            Instr::DoEnd => Instr::DoEnd,
            Instr::Bin { op, dst, a, b } => Instr::Bin {
                op: *op,
                dst: sub_place(dst),
                a: sub_value(a, &map, &sub_place),
                b: sub_value(b, &map, &sub_place),
            },
            Instr::Un { op, dst, a } => Instr::Un {
                op: *op,
                dst: sub_place(dst),
                a: sub_value(a, &map, &sub_place),
            },
        })
        .collect()
}

/// Rewrites `var` as `c + scale·new_var` inside an instruction.
///
/// The caller guarantees (via the `reads_index` scan) that the body
/// never reads `var` as a bare value; if one slips through anyway —
/// malformed i-code — the old loop index would survive blocking and
/// silently compute garbage, so that case is reported as
/// [`CompileError::MalformedIcode`] instead.
fn replace_loop_var_affine(
    ins: &Instr,
    var: LoopVar,
    c: i64,
    scale: i64,
    new_var: LoopVar,
) -> Result<Instr, CompileError> {
    let stale = Cell::new(false);
    let sub_affine = |a: &spl_icode::Affine| -> spl_icode::Affine {
        let coeff = a
            .terms
            .iter()
            .find(|&&(_, v)| v == var)
            .map(|&(k, _)| k)
            .unwrap_or(0);
        let mut r = a.substitute(var, c);
        r.add_term(coeff * scale, new_var);
        r
    };
    let sub_place = |p: &Place| -> Place {
        match p {
            Place::Vec(v) => Place::Vec(VecRef {
                kind: v.kind,
                idx: sub_affine(&v.idx),
            }),
            other => other.clone(),
        }
    };
    fn sub_value(
        v: &Value,
        var: LoopVar,
        stale: &Cell<bool>,
        sub_place: &dyn Fn(&Place) -> Place,
    ) -> Value {
        match v {
            Value::Place(p) => Value::Place(sub_place(p)),
            Value::LoopIdx(lv) if *lv == var => {
                // A direct loop-index value cannot be expressed as a
                // single operand after blocking; the caller's
                // `reads_index` scan keeps such loops intact, so hitting
                // this means the scan and the body disagree — malformed
                // i-code, reported below.
                stale.set(true);
                Value::LoopIdx(*lv)
            }
            Value::Intrinsic(name, args) => Value::Intrinsic(
                name.clone(),
                args.iter()
                    .map(|a| sub_value(a, var, stale, sub_place))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    let out = match ins {
        Instr::Bin { op, dst, a, b } => Instr::Bin {
            op: *op,
            dst: sub_place(dst),
            a: sub_value(a, var, &stale, &sub_place),
            b: sub_value(b, var, &stale, &sub_place),
        },
        Instr::Un { op, dst, a } => Instr::Un {
            op: *op,
            dst: sub_place(dst),
            a: sub_value(a, var, &stale, &sub_place),
        },
        other => other.clone(),
    };
    if stale.get() {
        return Err(malformed(format!(
            "loop index {var:?} survived partial unrolling (read as a bare value)"
        )));
    }
    Ok(out)
}

fn matching_end(instrs: &[Instr], start: usize) -> Result<usize, CompileError> {
    let mut depth = 0usize;
    for (k, ins) in instrs.iter().enumerate().skip(start) {
        match ins {
            Instr::DoStart { .. } => depth += 1,
            Instr::DoEnd => {
                depth -= 1;
                if depth == 0 {
                    return Ok(k);
                }
            }
            _ => {}
        }
    }
    Err(malformed(format!(
        "unbalanced loops: dostart at instruction {start} has no matching doend"
    )))
}

fn substitute_loop_var(ins: &Instr, var: LoopVar, value: i64) -> Instr {
    let sub_place = |p: &Place| -> Place {
        match p {
            Place::Vec(v) => Place::Vec(VecRef {
                kind: v.kind,
                idx: v.idx.substitute(var, value),
            }),
            other => other.clone(),
        }
    };
    fn sub_value(v: &Value, var: LoopVar, value: i64) -> Value {
        match v {
            Value::Place(Place::Vec(vr)) => Value::Place(Place::Vec(VecRef {
                kind: vr.kind,
                idx: vr.idx.substitute(var, value),
            })),
            Value::LoopIdx(lv) if *lv == var => Value::Int(value),
            Value::Intrinsic(name, args) => Value::Intrinsic(
                name.clone(),
                args.iter().map(|a| sub_value(a, var, value)).collect(),
            ),
            other => other.clone(),
        }
    }
    match ins {
        Instr::Bin { op, dst, a, b } => Instr::Bin {
            op: *op,
            dst: sub_place(dst),
            a: sub_value(a, var, value),
            b: sub_value(b, var, value),
        },
        Instr::Un { op, dst, a } => Instr::Un {
            op: *op,
            dst: sub_place(dst),
            a: sub_value(a, var, value),
        },
        other => other.clone(),
    }
}

/// Replaces temporary-vector elements that are *only* accessed with
/// constant subscripts by fresh scalar `$f` registers (paper: "substitute
/// scalar variables for array elements").
///
/// Temps with any symbolic access are left untouched; `$in`/`$out` are
/// never scalarized.
pub fn scalarize(prog: &IProgram) -> IProgram {
    scalarize_with_stats(prog).0
}

/// [`scalarize`], also counting the scalar registers introduced.
pub fn scalarize_with_stats(prog: &IProgram) -> (IProgram, UnrollStats) {
    // Pass 1: find temps accessed only with constant subscripts.
    let mut const_only: Vec<bool> = prog.temps.iter().map(|_| true).collect();
    let mark = |vr: &VecRef, const_only: &mut Vec<bool>| {
        if let VecKind::Temp(t) = vr.kind {
            if vr.idx.as_const().is_none() {
                const_only[t as usize] = false;
            }
        }
    };
    for ins in &prog.instrs {
        visit_vecs(ins, &mut |vr| mark(vr, &mut const_only));
    }
    // Pass 2: rewrite accesses.
    let mut next_f = prog.n_f;
    let mut map: HashMap<(u32, i64), u32> = HashMap::new();
    let rewrite_place = |p: &Place, map: &mut HashMap<(u32, i64), u32>, next_f: &mut u32| {
        if let Place::Vec(VecRef {
            kind: VecKind::Temp(t),
            idx,
        }) = p
        {
            if const_only[*t as usize] {
                let c = idx.as_const().expect("const-only temp");
                let id = *map.entry((*t, c)).or_insert_with(|| {
                    let id = *next_f;
                    *next_f += 1;
                    id
                });
                return Place::F(id);
            }
        }
        p.clone()
    };
    let mut out = prog.clone();
    for ins in &mut out.instrs {
        match ins {
            Instr::Bin { dst, a, b, .. } => {
                *dst = rewrite_place(dst, &mut map, &mut next_f);
                rewrite_value(a, &mut |p| rewrite_place(p, &mut map, &mut next_f));
                rewrite_value(b, &mut |p| rewrite_place(p, &mut map, &mut next_f));
            }
            Instr::Un { dst, a, .. } => {
                *dst = rewrite_place(dst, &mut map, &mut next_f);
                rewrite_value(a, &mut |p| rewrite_place(p, &mut map, &mut next_f));
            }
            _ => {}
        }
    }
    out.n_f = next_f;
    // Shrink fully-scalarized temps to zero length (they are never
    // addressed any more).
    for (t, only) in const_only.iter().enumerate() {
        if *only {
            out.temps[t] = 0;
        }
    }
    let stats = UnrollStats {
        temps_scalarized: map.len() as u64,
        ..Default::default()
    };
    (out, stats)
}

fn visit_vecs(ins: &Instr, f: &mut dyn FnMut(&VecRef)) {
    fn visit_value(v: &Value, f: &mut dyn FnMut(&VecRef)) {
        match v {
            Value::Place(Place::Vec(vr)) => f(vr),
            Value::Intrinsic(_, args) => args.iter().for_each(|a| visit_value(a, f)),
            _ => {}
        }
    }
    match ins {
        Instr::Bin { dst, a, b, .. } => {
            if let Place::Vec(vr) = dst {
                f(vr);
            }
            visit_value(a, f);
            visit_value(b, f);
        }
        Instr::Un { dst, a, .. } => {
            if let Place::Vec(vr) = dst {
                f(vr);
            }
            visit_value(a, f);
        }
        _ => {}
    }
}

fn rewrite_value(v: &mut Value, f: &mut dyn FnMut(&Place) -> Place) {
    match v {
        Value::Place(p) => *p = f(p),
        Value::Intrinsic(_, args) => args.iter_mut().for_each(|a| rewrite_value(a, f)),
        _ => {}
    }
}

/// Convenience: does the program still contain loops?
pub fn has_loops(prog: &IProgram) -> bool {
    prog.instrs
        .iter()
        .any(|i| matches!(i, Instr::DoStart { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parser::parse_formula;
    use spl_icode::interp::run;
    use spl_numeric::Complex;
    use spl_templates::{expand_formula, ExpandOptions, TemplateTable};

    fn expand(src: &str, unroll_flag: bool) -> IProgram {
        let table = TemplateTable::builtin();
        let sexp = parse_formula(src).unwrap();
        let opts = ExpandOptions {
            unroll: unroll_flag,
            ..Default::default()
        };
        expand_formula(&sexp, &table, &opts).unwrap()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64 + 0.5, (i as f64).sin()))
            .collect()
    }

    #[test]
    fn unroll_preserves_semantics() {
        for src in ["(F 4)", "(L 8 2)", "(T 8 4)", "(tensor (I 4) (F 2))"] {
            let p = expand(src, true);
            let u = unroll(&p).unwrap();
            assert!(!has_loops(&u), "{src} should be loop-free");
            u.validate().unwrap();
            let x = ramp(p.n_in);
            assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap(), "{src}");
        }
    }

    #[test]
    fn unmarked_loops_stay() {
        let p = expand("(tensor (I 4) (F 2))", false);
        let u = unroll(&p).unwrap();
        assert!(has_loops(&u));
        assert_eq!(p.instrs.len(), u.instrs.len());
    }

    #[test]
    fn unroll_all_ignores_flags() {
        let p = expand("(tensor (I 4) (F 2))", false);
        let u = unroll_all(&p).unwrap();
        assert!(!has_loops(&u));
        let x = ramp(8);
        assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap());
    }

    #[test]
    fn unrolled_f4_intrinsics_become_constant_args() {
        let u = unroll_all(&expand("(F 4)", false)).unwrap();
        // After unrolling, no LoopIdx values remain anywhere.
        for ins in &u.instrs {
            ins.for_each_value(&mut |v| {
                fn no_loop_idx(v: &Value) {
                    match v {
                        Value::LoopIdx(_) => panic!("loop index survived unrolling"),
                        Value::Intrinsic(_, args) => args.iter().for_each(no_loop_idx),
                        _ => {}
                    }
                }
                no_loop_idx(v);
            });
        }
    }

    #[test]
    fn scalarize_replaces_const_temp_accesses() {
        // compose creates a temp; fully unrolled, all its accesses are
        // constant, so it must disappear.
        let p = unroll_all(&expand("(compose (F 2) (F 2))", false)).unwrap();
        let s = scalarize(&p);
        s.validate().unwrap();
        assert_eq!(s.temps, vec![0]);
        let x = ramp(2);
        assert_eq!(run(&p, &x).unwrap(), run(&s, &x).unwrap());
        // No temp accesses remain.
        for ins in &s.instrs {
            visit_vecs(ins, &mut |vr| {
                assert!(!matches!(vr.kind, VecKind::Temp(_)));
            });
        }
    }

    #[test]
    fn scalarize_keeps_symbolic_temps() {
        // Without unrolling, the compose temp is accessed through loop
        // variables and must stay an array.
        let p = expand("(compose (F 4) (F 4))", false);
        let s = scalarize(&p);
        assert_eq!(s.temps, p.temps);
        let x = ramp(4);
        assert_eq!(run(&p, &x).unwrap(), run(&s, &x).unwrap());
    }

    #[test]
    fn unrolling_outer_keeps_inner_loop_vars_unique() {
        // Mark only the OUTER loop for unrolling; the inner loop stays
        // and must get fresh variable ids per replica.
        let p = expand("(tensor (I 3) (F 4))", false);
        let mut p = p;
        let mut first = true;
        for ins in &mut p.instrs {
            if let Instr::DoStart { unroll, .. } = ins {
                if first {
                    *unroll = true;
                    first = false;
                }
            }
        }
        let u = unroll(&p).unwrap();
        u.validate().unwrap();
        let x = ramp(12);
        assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap());
    }

    #[test]
    fn partial_unroll_preserves_semantics() {
        for src in ["(L 16 4)", "(T 16 8)", "(tensor (I 12) (F 2))", "(F 4)"] {
            let p = crate::intrinsics::eval_intrinsics(&expand(src, false)).unwrap();
            for factor in [2usize, 3, 4] {
                let u = unroll_partial(&p, factor).unwrap();
                u.validate().unwrap();
                let x = ramp(p.n_in);
                assert_eq!(
                    run(&p, &x).unwrap(),
                    run(&u, &x).unwrap(),
                    "{src} factor {factor}"
                );
            }
        }
    }

    #[test]
    fn partial_unroll_emits_remainder() {
        // Trip count 12 with factor 5: main loop 2 blocks + 2 remainder
        // copies.
        let p =
            crate::intrinsics::eval_intrinsics(&expand("(tensor (I 12) (F 2))", false)).unwrap();
        let u = unroll_partial(&p, 5).unwrap();
        u.validate().unwrap();
        let x = ramp(24);
        assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap());
        // One loop remains (the blocked main loop).
        let loops = u
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::DoStart { .. }))
            .count();
        assert_eq!(loops, 1);
    }

    #[test]
    fn partial_unroll_keeps_index_reading_loops() {
        // (F 4) unevaluated still reads loop indices into $r registers;
        // such loops must be left intact.
        let p = expand("(F 4)", false);
        let u = unroll_partial(&p, 2).unwrap();
        let x = ramp(4);
        assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap());
    }

    #[test]
    fn partial_unroll_nested_loops_get_fresh_vars() {
        let p = crate::intrinsics::eval_intrinsics(&expand(
            "(tensor (I 4) (tensor (I 4) (F 2)))",
            false,
        ))
        .unwrap();
        let u = unroll_partial(&p, 2).unwrap();
        u.validate().unwrap();
        let x = ramp(32);
        assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap());
    }

    #[test]
    fn malformed_unbalanced_loops_error_instead_of_panicking() {
        // A DoStart with no matching DoEnd — the shape a malformed user
        // template expands to. This used to panic ("unbalanced loops in
        // validated i-code"), killing the whole search process; now it
        // must surface as a per-candidate MalformedIcode error.
        let p = IProgram {
            instrs: vec![Instr::DoStart {
                var: LoopVar(0),
                lo: 0,
                hi: 3,
                unroll: true,
            }],
            n_loop: 1,
            ..IProgram::empty()
        };
        match unroll(&p) {
            Err(CompileError::MalformedIcode(msg)) => {
                assert!(msg.contains("no matching doend"), "{msg}");
            }
            other => panic!("expected MalformedIcode, got {other:?}"),
        }
        match unroll_partial(&p, 2) {
            Err(CompileError::MalformedIcode(_)) => {}
            other => panic!("expected MalformedIcode, got {other:?}"),
        }
    }

    #[test]
    fn stray_doend_errors_instead_of_corrupting_output() {
        // The mirror image: a DoEnd with no opening DoStart previously
        // slid through unchanged, producing unbalanced output for later
        // phases to trip over.
        let p = IProgram {
            instrs: vec![Instr::DoEnd],
            ..IProgram::empty()
        };
        assert!(matches!(unroll(&p), Err(CompileError::MalformedIcode(_))));
        assert!(matches!(
            unroll_partial(&p, 2),
            Err(CompileError::MalformedIcode(_))
        ));
    }

    #[test]
    fn nested_unroll_inner_only() {
        // Mark only the inner loops: (tensor (I 32) (unroll-marked inner)).
        let table = TemplateTable::builtin();
        let sexp = parse_formula("(tensor (I 32) I2F2)").unwrap();
        let i2f2 = parse_formula("(tensor (I 2) (F 2))").unwrap();
        let opts = ExpandOptions {
            defines: vec![("I2F2".into(), i2f2, true)],
            ..Default::default()
        };
        let p = expand_formula(&sexp, &table, &opts).unwrap();
        let u = unroll(&p).unwrap();
        // Outer loop remains; inner is gone.
        let loops: Vec<_> = u
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::DoStart { .. }))
            .collect();
        assert_eq!(loops.len(), 1);
        let x = ramp(128);
        assert_eq!(run(&p, &x).unwrap(), run(&u, &x).unwrap());
    }
}
