//! Multi-process `KernelCache` regression: two processes hammer the
//! same cache directory concurrently and every entry must come back
//! intact — no corrupt objects, no lost index records.
//!
//! The test re-invokes its own test binary (`current_exe`) in a worker
//! mode selected by environment variables, so no extra helper binary is
//! needed. Both workers insert an overlapping key set (content-
//! addressed: same key, same bytes), which is exactly the pattern that
//! used to race on a fixed `<key>.so.tmp` name.

use std::path::PathBuf;
use std::process::Command;

use spl_native::cache::KernelCache;

const WORKER_ENV: &str = "SPL_CACHE_MP_WORKER";
const DIR_ENV: &str = "SPL_CACHE_MP_DIR";
const KEYS_PER_WORKER: usize = 40;
/// Keys below this index are inserted by *both* workers concurrently.
const SHARED_KEYS: usize = 20;

fn key_name(i: usize) -> String {
    format!("mpkey{i:04}")
}

/// Deterministic per-key payload, sized to span several pages so a torn
/// write would be visible.
fn payload(i: usize) -> Vec<u8> {
    (0..4096 + i * 7)
        .map(|j| ((i * 131 + j) % 251) as u8)
        .collect()
}

fn worker_keys(worker: usize) -> Vec<usize> {
    // Shared prefix plus a worker-private tail.
    (0..SHARED_KEYS)
        .chain((0..KEYS_PER_WORKER - SHARED_KEYS).map(|k| SHARED_KEYS + worker * 1000 + k))
        .collect()
}

/// Worker mode: populate the shared dir, interleaving with the sibling
/// process. Runs only when spawned by the parent test below.
#[test]
fn cache_worker_populates_shared_dir() {
    let (Ok(worker), Ok(dir)) = (std::env::var(WORKER_ENV), std::env::var(DIR_ENV)) else {
        return; // not in worker mode: nothing to do
    };
    let worker: usize = worker.parse().unwrap();
    let cache = KernelCache::with_dir(&PathBuf::from(dir)).unwrap();
    for (round, &i) in worker_keys(worker).iter().enumerate() {
        cache.insert(&key_name(i), payload(i));
        if round % 8 == 0 {
            // Yield so the two workers genuinely interleave.
            std::thread::yield_now();
        }
    }
}

#[test]
fn two_processes_populate_one_dir_without_corruption_or_loss() {
    if std::env::var(WORKER_ENV).is_ok() {
        return; // worker invocation: only the worker test runs work
    }
    let dir = std::env::temp_dir().join(format!("spl_kcache_mp_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let spawn = |worker: usize| {
        Command::new(&exe)
            .args(["cache_worker_populates_shared_dir", "--exact"])
            .env(WORKER_ENV, worker.to_string())
            .env(DIR_ENV, &dir)
            .spawn()
            .unwrap()
    };
    let mut children = [spawn(0), spawn(1)];
    for child in &mut children {
        let status = child.wait().unwrap();
        assert!(status.success(), "cache worker failed: {status}");
    }

    // A fresh cache instance (cold memory, index replayed from disk)
    // must serve every key either worker inserted, byte-for-byte.
    let cache = KernelCache::with_dir(&dir).unwrap();
    let mut all: Vec<usize> = worker_keys(0);
    all.extend(worker_keys(1));
    all.sort_unstable();
    all.dedup();
    for i in all {
        let (bytes, _) = cache
            .lookup(&key_name(i))
            .unwrap_or_else(|| panic!("lost entry {}", key_name(i)));
        assert_eq!(*bytes, payload(i), "corrupt entry {}", key_name(i));
    }
    // No abandoned tmp files: every write either renamed or cleaned up.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(stray.is_empty(), "stray tmp files: {stray:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
