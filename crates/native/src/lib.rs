#![warn(missing_docs)]

//! Native execution of generated C code — the paper's own methodology,
//! hardened for unattended searches.
//!
//! The paper evaluates the SPL compiler by feeding its output to the
//! platform's native compiler and timing the resulting machine code.
//! This crate does exactly that on the host: a [`CompiledUnit`]'s C
//! output is written to a temporary file, compiled with the system C
//! compiler (`cc -O2 -shared -fPIC`), loaded with `dlopen`, and invoked
//! through its `void name(double *y, const double *x)` entry point.
//!
//! Because a timing search compiles and runs thousands of generated
//! kernels, every external step is fault-contained:
//!
//! * `cc` runs under a configurable wall-clock timeout with bounded
//!   retry + backoff ([`BuildOptions`]); a hung compiler is killed and
//!   reported as [`NativeError::CompileTimeout`].
//! * Temporary `.c`/`.so` artifacts are cleaned up on **every** path —
//!   success (on kernel drop), compile failure, load failure, timeout —
//!   via an RAII guard, and `cc` diagnostics are truncated to a sane
//!   length before entering error values.
//! * Loaded kernels can be executed and timed in a forked child process
//!   ([`NativeKernel::run_sandboxed`], [`NativeKernel::measure_sandboxed`])
//!   so a SIGSEGV or infinite loop in generated code is contained and
//!   classified ([`NativeError::Crashed`] / [`NativeError::Timeout`])
//!   instead of killing the search.
//!
//! The `spl-vm` interpreter remains available as a portable fallback and
//! as the deterministic substrate for unit tests; benchmarks prefer this
//! native path so that the comparison against the (natively compiled)
//! FFTW-like baseline is apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use spl_compiler::Compiler;
//! use spl_native::NativeKernel;
//!
//! let mut c = Compiler::new();
//! let unit = c.compile_formula_str("(F 2)").unwrap();
//! let kernel = NativeKernel::compile(&unit).unwrap();
//! let x = [1.0, 0.0, 2.0, 0.0]; // (1, 2) as interleaved complex
//! let mut y = [0.0; 4];
//! kernel.run(&x, &mut y);
//! assert_eq!(y, [3.0, 0.0, -1.0, 0.0]);
//! ```

use std::error::Error;
use std::ffi::{c_char, c_int, c_void, CString};
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use spl_compiler::{codegen, CodegenOptions, CompiledUnit};
use spl_frontend::ast::{DataType, Language};
use spl_resilience::command::CommandError;
use spl_resilience::{run_command_with_timeout, run_isolated, RetryPolicy, SandboxError};

pub mod cache;

pub use cache::{CacheOutcome, KernelCache};

extern "C" {
    fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
}

const RTLD_NOW: c_int = 2;

/// The fixed `cc` command line (before `-o` and the file paths). Part
/// of the kernel-cache key: changing these flags invalidates every
/// cached object.
pub(crate) const CC_FLAGS: &[&str] = &["-O2", "-shared", "-fPIC"];

/// The entry-point symbol used by [`NativeKernel::compile_cached`].
/// Cached objects share one canonical name so byte-identical kernels
/// from differently named units still hit; `dlopen`'s default local
/// binding keeps the identically named symbols of concurrently loaded
/// kernels isolated per handle.
const CACHED_SYMBOL: &str = "spl_kernel";

/// Longest `cc` stderr excerpt kept in an error value; full compiler
/// diagnostics for machine-generated code can run to megabytes.
const MAX_STDERR_CHARS: usize = 2000;

/// An error from native compilation, loading, or sandboxed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NativeError {
    /// The unit cannot be emitted as C (complex-typed code).
    Unsupported(String),
    /// Filesystem trouble around the temporary artifacts.
    Io(String),
    /// The host C compiler reported errors (stderr excerpt attached).
    CompileFailed(String),
    /// The host C compiler exceeded its time budget and was killed.
    CompileTimeout(String),
    /// `dlopen`/`dlsym` failed on the built object.
    LoadFailed(String),
    /// The kernel crashed (died on a signal) in its sandbox.
    Crashed(String),
    /// The kernel exceeded its execution time budget and was killed.
    Timeout(String),
    /// Sandbox plumbing failed (fork/pipe trouble, short payload).
    Protocol(String),
}

impl NativeError {
    /// A short machine-readable kind, used for telemetry counters.
    pub fn kind(&self) -> &'static str {
        match self {
            NativeError::Unsupported(_) => "unsupported",
            NativeError::Io(_) => "io",
            NativeError::CompileFailed(_) => "compile_failed",
            NativeError::CompileTimeout(_) => "compile_timeout",
            NativeError::LoadFailed(_) => "load_failed",
            NativeError::Crashed(_) => "crashed",
            NativeError::Timeout(_) => "timeout",
            NativeError::Protocol(_) => "protocol",
        }
    }
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (tag, msg) = match self {
            NativeError::Unsupported(m) => ("unsupported", m),
            NativeError::Io(m) => ("i/o", m),
            NativeError::CompileFailed(m) => ("cc failed", m),
            NativeError::CompileTimeout(m) => ("cc timed out", m),
            NativeError::LoadFailed(m) => ("load failed", m),
            NativeError::Crashed(m) => ("kernel crashed", m),
            NativeError::Timeout(m) => ("kernel timed out", m),
            NativeError::Protocol(m) => ("sandbox", m),
        };
        write!(f, "native execution: {tag}: {msg}")
    }
}

impl Error for NativeError {}

/// How to run the host C compiler.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Wall-clock budget for one `cc` invocation.
    pub cc_timeout: Duration,
    /// Retry policy for *transient* failures (spawn errors, timeouts).
    /// Deterministic compile errors are never retried.
    pub retry: RetryPolicy,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            cc_timeout: Duration::from_secs(60),
            retry: RetryPolicy {
                attempts: 2,
                base_delay: Duration::from_millis(100),
                max_delay: Duration::from_secs(1),
                jitter: spl_resilience::Jitter::None,
            },
        }
    }
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// Truncates `cc` stderr to a bounded, single-report excerpt.
fn clip_stderr(stderr: &[u8]) -> String {
    let s = String::from_utf8_lossy(stderr);
    let s = s.trim();
    if s.len() <= MAX_STDERR_CHARS {
        return s.to_string();
    }
    let mut cut = MAX_STDERR_CHARS;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}... [{} bytes truncated]", &s[..cut], s.len() - cut)
}

/// RAII guard that deletes the temporary `.c`/`.so` pair on drop, so no
/// failure path — compile error, timeout, load failure, panic — can
/// leak artifacts into the shared temp directory. Ownership is handed
/// to the kernel (which deletes them on its own drop) via
/// [`TempArtifacts::into_paths`].
struct TempArtifacts {
    c_path: PathBuf,
    so_path: PathBuf,
    armed: bool,
}

impl TempArtifacts {
    fn new(stem: &str) -> TempArtifacts {
        let dir = std::env::temp_dir();
        TempArtifacts {
            c_path: dir.join(format!("{stem}.c")),
            so_path: dir.join(format!("{stem}.so")),
            armed: true,
        }
    }

    /// Defuses the guard, transferring cleanup duty to the caller.
    fn into_paths(mut self) -> (PathBuf, PathBuf) {
        self.armed = false;
        (self.so_path.clone(), self.c_path.clone())
    }
}

impl Drop for TempArtifacts {
    fn drop(&mut self) {
        if self.armed {
            let _ = std::fs::remove_file(&self.c_path);
            let _ = std::fs::remove_file(&self.so_path);
        }
    }
}

/// A natively compiled, loaded SPL subroutine.
///
/// Dropping the kernel unloads the shared object and removes its
/// temporary files.
pub struct NativeKernel {
    handle: *mut c_void,
    entry: extern "C" fn(*mut f64, *const f64),
    /// Input length in `f64` words.
    pub n_in: usize,
    /// Output length in `f64` words.
    pub n_out: usize,
    so_path: PathBuf,
    c_path: PathBuf,
}

impl fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeKernel")
            .field("n_in", &self.n_in)
            .field("n_out", &self.n_out)
            .field("so_path", &self.so_path)
            .finish()
    }
}

impl NativeKernel {
    /// Emits C for the unit, compiles it with the host `cc` under the
    /// default [`BuildOptions`], and loads the resulting shared object.
    ///
    /// # Errors
    ///
    /// Fails when the unit is complex-typed (C output requires real
    /// code), when `cc` is unavailable, errors, or times out, or when
    /// the object cannot be loaded.
    pub fn compile(unit: &CompiledUnit) -> Result<NativeKernel, NativeError> {
        Self::compile_with(unit, &BuildOptions::default())
    }

    /// [`NativeKernel::compile`] with explicit compiler-run options.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NativeKernel::compile`].
    pub fn compile_with(
        unit: &CompiledUnit,
        opts: &BuildOptions,
    ) -> Result<NativeKernel, NativeError> {
        if unit.program.complex {
            return Err(NativeError::Unsupported(
                "C output requires real-typed code (set #codetype real)".into(),
            ));
        }
        let name = sanitize(&unit.name);
        let c_src = codegen::emit(
            &name,
            &unit.program,
            &CodegenOptions {
                language: Language::C,
                codetype: DataType::Real,
                peephole: false,
                io_params: false,
            },
        );
        let (handle, sym, so_path, c_path) = build_and_load(&name, &c_src, opts)?;
        // SAFETY: the symbol has the C ABI signature
        // `void name(double *y, const double *x)` by construction of the
        // emitter.
        let entry: extern "C" fn(*mut f64, *const f64) = unsafe { std::mem::transmute(sym) };
        Ok(NativeKernel {
            handle,
            entry,
            n_in: unit.program.n_in,
            n_out: unit.program.n_out,
            so_path,
            c_path,
        })
    }

    /// [`NativeKernel::compile_with`] through a content-addressed
    /// [`KernelCache`]: the emitted C (with a canonical entry-point
    /// name) is hashed together with the build options and `cc`
    /// version, and a hit loads the previously built shared object
    /// instead of invoking `cc`. Returns the kernel plus where it came
    /// from ([`CacheOutcome`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NativeKernel::compile`]; a corrupt
    /// disk-cache entry is discarded and recompiled, never an error.
    pub fn compile_cached(
        unit: &CompiledUnit,
        opts: &BuildOptions,
        cache: &KernelCache,
    ) -> Result<(NativeKernel, CacheOutcome), NativeError> {
        let (c_src, key) = Self::cached_source_and_key(unit, opts)?;
        if let Some((bytes, outcome)) = cache.lookup(&key) {
            let kernel = Self::load_cached(&bytes, unit)?;
            return Ok((kernel, outcome));
        }
        cache.count_cc_invocation();
        let (handle, sym, so_path, c_path) = build_and_load(CACHED_SYMBOL, &c_src, opts)?;
        if let Ok(bytes) = std::fs::read(&so_path) {
            cache.insert(&key, bytes);
        }
        // SAFETY: the symbol has the C ABI signature
        // `void name(double *y, const double *x)` by construction of the
        // emitter.
        let entry: extern "C" fn(*mut f64, *const f64) = unsafe { std::mem::transmute(sym) };
        Ok((
            NativeKernel {
                handle,
                entry,
                n_in: unit.program.n_in,
                n_out: unit.program.n_out,
                so_path,
                c_path,
            },
            CacheOutcome::Miss,
        ))
    }

    /// The [`KernelCache`] key [`NativeKernel::compile_cached`] uses for
    /// `unit` under `opts` — for callers that must quarantine
    /// ([`KernelCache::evict`]) a kernel whose *output* was found wrong
    /// after compilation, which the input-addressed key cannot detect.
    ///
    /// # Errors
    ///
    /// Fails like `compile_cached` on complex-typed units.
    pub fn cache_key(unit: &CompiledUnit, opts: &BuildOptions) -> Result<String, NativeError> {
        Self::cached_source_and_key(unit, opts).map(|(_, key)| key)
    }

    fn cached_source_and_key(
        unit: &CompiledUnit,
        opts: &BuildOptions,
    ) -> Result<(String, String), NativeError> {
        if unit.program.complex {
            return Err(NativeError::Unsupported(
                "C output requires real-typed code (set #codetype real)".into(),
            ));
        }
        let c_src = codegen::emit(
            CACHED_SYMBOL,
            &unit.program,
            &CodegenOptions {
                language: Language::C,
                codetype: DataType::Real,
                peephole: false,
                io_params: false,
            },
        );
        let key = KernelCache::key(&c_src, opts);
        Ok((c_src, key))
    }

    /// Materializes a cached object image as a loaded kernel: the bytes
    /// are written to a fresh uniquely named temp `.so` (dlopen works on
    /// files), then loaded exactly like a freshly built object. The
    /// kernel owns the temp file and removes it on drop.
    fn load_cached(bytes: &[u8], unit: &CompiledUnit) -> Result<NativeKernel, NativeError> {
        let tmp = TempArtifacts::new(&fresh_stem());
        std::fs::write(&tmp.so_path, bytes)
            .map_err(|e| NativeError::Io(format!("writing {}: {e}", tmp.so_path.display())))?;
        let (handle, sym) = load_object(&tmp.so_path, CACHED_SYMBOL)?;
        let (so_path, c_path) = tmp.into_paths();
        // SAFETY: cached objects are built by `compile_cached` from the
        // emitter's C, so the symbol has the same C ABI signature.
        let entry: extern "C" fn(*mut f64, *const f64) = unsafe { std::mem::transmute(sym) };
        Ok(NativeKernel {
            handle,
            entry,
            n_in: unit.program.n_in,
            n_out: unit.program.n_out,
            so_path,
            c_path,
        })
    }

    /// Runs the kernel: `y = f(x)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match `n_in`/`n_out`.
    pub fn run(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_in, "input length mismatch");
        assert_eq!(y.len(), self.n_out, "output length mismatch");
        (self.entry)(y.as_mut_ptr(), x.as_ptr());
    }

    /// Runs the kernel in a forked child under `timeout`: a crash or
    /// hang in the generated code is contained and classified instead
    /// of taking the process down. All buffers are allocated before the
    /// fork; the child only executes the kernel entry point.
    ///
    /// # Errors
    ///
    /// [`NativeError::Crashed`], [`NativeError::Timeout`], or
    /// [`NativeError::Protocol`]; falls back to in-process execution on
    /// platforms without fork.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match `n_in`/`n_out`.
    pub fn run_sandboxed(
        &self,
        x: &[f64],
        y: &mut [f64],
        timeout: Duration,
    ) -> Result<(), NativeError> {
        assert_eq!(x.len(), self.n_in, "input length mismatch");
        assert_eq!(y.len(), self.n_out, "output length mismatch");
        let entry = self.entry;
        match run_isolated(timeout, y, |out| {
            entry(out.as_mut_ptr(), x.as_ptr());
        }) {
            Ok(()) => Ok(()),
            Err(SandboxError::Unsupported) => {
                // No fork on this platform: run in-process (the paper's
                // original behavior) rather than failing outright.
                self.run(x, y);
                Ok(())
            }
            Err(e) => Err(sandbox_to_native(e)),
        }
    }

    /// Adaptive timing: seconds per call, measured over at least
    /// `min_time` of repetitions on a deterministic workload.
    pub fn measure(&self, min_time: Duration) -> f64 {
        let x: Vec<f64> = (0..self.n_in)
            .map(|i| ((i as f64) * 0.7311).sin())
            .collect();
        let mut y = vec![0.0f64; self.n_out];
        spl_numeric::metrics::time_adaptive(min_time, || self.run(&x, &mut y))
    }

    /// [`NativeKernel::measure`] in a forked child under `timeout`:
    /// returns seconds per call, or a contained, classified failure if
    /// the generated code crashes or hangs. Buffers are allocated
    /// before the fork.
    ///
    /// # Errors
    ///
    /// [`NativeError::Crashed`], [`NativeError::Timeout`], or
    /// [`NativeError::Protocol`]; falls back to in-process measurement
    /// on platforms without fork.
    pub fn measure_sandboxed(
        &self,
        min_time: Duration,
        timeout: Duration,
    ) -> Result<f64, NativeError> {
        let x: Vec<f64> = (0..self.n_in)
            .map(|i| ((i as f64) * 0.7311).sin())
            .collect();
        let mut y = vec![0.0f64; self.n_out];
        let mut result = [0.0f64; 1];
        let entry = self.entry;
        // Bound the repetition count so the in-child timing loop cannot
        // outlive the parent's deadline by adaptive over-calibration.
        let cap = 1u64 << 22;
        match run_isolated(timeout, &mut result, |out| {
            out[0] = spl_numeric::metrics::time_adaptive_capped(min_time, cap, || {
                entry(y.as_mut_ptr(), x.as_ptr());
            });
        }) {
            Ok(()) => Ok(result[0]),
            Err(SandboxError::Unsupported) => Ok(self.measure(min_time)),
            Err(e) => Err(sandbox_to_native(e)),
        }
    }
}

fn sandbox_to_native(e: SandboxError) -> NativeError {
    match e {
        SandboxError::Crashed { signal } => {
            NativeError::Crashed(format!("generated kernel died on signal {signal}"))
        }
        SandboxError::TimedOut { timeout } => NativeError::Timeout(format!(
            "generated kernel exceeded {:.1}s",
            timeout.as_secs_f64()
        )),
        SandboxError::ChildFailed { code } => {
            NativeError::Protocol(format!("sandbox child exited with code {code}"))
        }
        SandboxError::Protocol(m) => NativeError::Protocol(m),
        SandboxError::Unsupported => NativeError::Protocol("sandbox unsupported".into()),
    }
}

impl Drop for NativeKernel {
    fn drop(&mut self) {
        // SAFETY: handle came from a successful dlopen and is unloaded
        // exactly once.
        unsafe {
            dlclose(self.handle);
        }
        let _ = std::fs::remove_file(&self.so_path);
        let _ = std::fs::remove_file(&self.c_path);
    }
}

/// A natively compiled subroutine with the paper's Section 3.5
/// offset/stride parameters:
/// `void name(double *y, const double *x, long yofs, long xofs,
/// long ystr, long xstr)`, strides and offsets counted in *logical
/// elements* of the generated code (real words for real-typed code).
pub struct NativeIoKernel {
    handle: *mut c_void,
    entry: extern "C" fn(*mut f64, *const f64, i64, i64, i64, i64),
    /// Logical input length (number of strided elements consumed).
    pub n_in: usize,
    /// Logical output length.
    pub n_out: usize,
    so_path: PathBuf,
    c_path: PathBuf,
}

impl fmt::Debug for NativeIoKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeIoKernel")
            .field("n_in", &self.n_in)
            .field("n_out", &self.n_out)
            .finish()
    }
}

impl NativeIoKernel {
    /// Emits C with `io_params` enabled, compiles, and loads it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NativeKernel::compile`].
    pub fn compile(unit: &CompiledUnit) -> Result<NativeIoKernel, NativeError> {
        Self::compile_with(unit, &BuildOptions::default())
    }

    /// [`NativeIoKernel::compile`] with explicit compiler-run options.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NativeKernel::compile`].
    pub fn compile_with(
        unit: &CompiledUnit,
        opts: &BuildOptions,
    ) -> Result<NativeIoKernel, NativeError> {
        if unit.program.complex {
            return Err(NativeError::Unsupported(
                "C output requires real-typed code (set #codetype real)".into(),
            ));
        }
        let name = sanitize(&unit.name);
        let c_src = codegen::emit(
            &name,
            &unit.program,
            &CodegenOptions {
                language: Language::C,
                codetype: DataType::Real,
                peephole: false,
                io_params: true,
            },
        );
        let (handle, sym, so_path, c_path) = build_and_load(&name, &c_src, opts)?;
        // SAFETY: the symbol was emitted with exactly this C signature.
        let entry: extern "C" fn(*mut f64, *const f64, i64, i64, i64, i64) =
            unsafe { std::mem::transmute(sym) };
        Ok(NativeIoKernel {
            handle,
            entry,
            n_in: unit.program.n_in,
            n_out: unit.program.n_out,
            so_path,
            c_path,
        })
    }

    /// Runs the kernel reading `x[xofs + xstr·k]` and writing
    /// `y[yofs + ystr·k]`.
    ///
    /// # Panics
    ///
    /// Panics if any strided access would fall outside the slices.
    pub fn run(
        &self,
        x: &[f64],
        y: &mut [f64],
        yofs: usize,
        xofs: usize,
        ystr: usize,
        xstr: usize,
    ) {
        let last = |ofs: usize, stride: usize, n: usize| {
            stride
                .checked_mul(n.saturating_sub(1))
                .and_then(|v| v.checked_add(ofs))
        };
        assert!(
            last(xofs, xstr, self.n_in).is_some_and(|v| v < x.len()),
            "strided input out of range"
        );
        assert!(
            last(yofs, ystr, self.n_out).is_some_and(|v| v < y.len()),
            "strided output out of range"
        );
        (self.entry)(
            y.as_mut_ptr(),
            x.as_ptr(),
            yofs as i64,
            xofs as i64,
            ystr as i64,
            xstr as i64,
        );
    }
}

impl Drop for NativeIoKernel {
    fn drop(&mut self) {
        // SAFETY: handle came from a successful dlopen, unloaded once.
        unsafe {
            dlclose(self.handle);
        }
        let _ = std::fs::remove_file(&self.so_path);
        let _ = std::fs::remove_file(&self.c_path);
    }
}

/// Runs `cc` on the written source under the timeout/retry policy.
/// Spawn failures and timeouts are retried with backoff (the machine
/// may be briefly overloaded); compile *errors* are deterministic and
/// fail immediately.
fn run_cc(c_path: &PathBuf, so_path: &PathBuf, opts: &BuildOptions) -> Result<(), NativeError> {
    let attempts = opts.retry.attempts.max(1);
    let mut last: Option<NativeError> = None;
    for attempt in 0..attempts {
        let mut cmd = Command::new("cc");
        cmd.args(CC_FLAGS).arg("-o").arg(so_path).arg(c_path);
        match run_command_with_timeout(&mut cmd, opts.cc_timeout) {
            Ok(out) if out.status.success() => return Ok(()),
            Ok(out) => {
                // Deterministic diagnostic: retrying would reproduce it.
                return Err(NativeError::CompileFailed(clip_stderr(&out.stderr)));
            }
            Err(CommandError::TimedOut { timeout }) => {
                last = Some(NativeError::CompileTimeout(format!(
                    "cc exceeded {:.1}s (attempt {}/{attempts})",
                    timeout.as_secs_f64(),
                    attempt + 1
                )));
            }
            Err(e) => {
                last = Some(NativeError::Io(format!(
                    "running cc: {e} (attempt {}/{attempts})",
                    attempt + 1
                )));
            }
        }
        if attempt + 1 < attempts {
            let d = opts.retry.delay_after(attempt);
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        }
    }
    Err(last.unwrap_or_else(|| NativeError::Io("cc never ran".into())))
}

/// Shared cc + dlopen plumbing. The temp artifacts are owned by an RAII
/// guard until the very end, so every early return cleans up.
fn build_and_load(
    name: &str,
    c_src: &str,
    opts: &BuildOptions,
) -> Result<(*mut c_void, *mut c_void, PathBuf, PathBuf), NativeError> {
    let tmp = TempArtifacts::new(&fresh_stem());
    std::fs::write(&tmp.c_path, c_src)
        .map_err(|e| NativeError::Io(format!("writing {}: {e}", tmp.c_path.display())))?;
    run_cc(&tmp.c_path, &tmp.so_path, opts)?;
    let (handle, sym) = load_object(&tmp.so_path, name)?;
    let (so_path, c_path) = tmp.into_paths();
    Ok((handle, sym, so_path, c_path))
}

/// A collision-free temp-file stem: pid + counter + a timestamp
/// component keeps names unique across concurrent processes (and the
/// concurrent worker threads of one search) in the shared temp
/// directory.
fn fresh_stem() -> String {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("spl_native_{}_{}_{nonce}", std::process::id(), id)
}

/// `dlopen`s the shared object and resolves `name` in it.
fn load_object(so_path: &Path, name: &str) -> Result<(*mut c_void, *mut c_void), NativeError> {
    let so_c = CString::new(so_path.to_string_lossy().as_bytes())
        .map_err(|_| NativeError::Io("bad path".into()))?;
    let name_c = CString::new(name.as_bytes()).map_err(|_| NativeError::Io("bad name".into()))?;
    // SAFETY: loading an object this crate built (directly or via the
    // kernel cache); symbol looked up by name. The `long` parameters of
    // the io-params signature are transmuted to `i64`, which matches on
    // every 64-bit Linux target this crate's dlopen path supports (LP64).
    unsafe {
        let handle = dlopen(so_c.as_ptr(), RTLD_NOW);
        if handle.is_null() {
            return Err(NativeError::LoadFailed(format!(
                "dlopen {} failed",
                so_path.display()
            )));
        }
        let sym = dlsym(handle, name_c.as_ptr());
        if sym.is_null() {
            dlclose(handle);
            return Err(NativeError::LoadFailed(format!("symbol {name} not found")));
        }
        Ok((handle, sym))
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, 's');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_compiler::{Compiler, CompilerOptions};
    use spl_numeric::{reference, Complex};

    fn kernel(src: &str, opts: CompilerOptions) -> NativeKernel {
        let mut c = Compiler::with_options(opts);
        let unit = c.compile_formula_str(src).unwrap();
        NativeKernel::compile(&unit).unwrap()
    }

    fn run_complex(k: &NativeKernel, x: &[Complex]) -> Vec<Complex> {
        let flat: Vec<f64> = x.iter().flat_map(|z| [z.re, z.im]).collect();
        let mut y = vec![0.0; k.n_out];
        k.run(&flat, &mut y);
        y.chunks(2).map(|p| Complex::new(p[0], p[1])).collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect()
    }

    #[test]
    fn butterfly_runs_natively() {
        let k = kernel("(F 2)", CompilerOptions::default());
        let x = ramp(2);
        let y = run_complex(&k, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn looped_fft_with_tables_runs_natively() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let k = kernel(src, CompilerOptions::default());
        let x = ramp(8);
        let y = run_complex(&k, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn unrolled_fft_matches_vm() {
        let src = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let opts = CompilerOptions {
            unroll_threshold: Some(64),
            ..Default::default()
        };
        let mut c = Compiler::with_options(opts.clone());
        let unit = c.compile_formula_str(src).unwrap();
        let k = NativeKernel::compile(&unit).unwrap();
        let vm = spl_vm::lower(&unit.program).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y_native = vec![0.0; 8];
        let mut y_vm = vec![0.0; 8];
        k.run(&x, &mut y_native);
        let mut st = spl_vm::VmState::new(&vm);
        vm.run(&x, &mut y_vm, &mut st);
        for (a, b) in y_native.iter().zip(&y_vm) {
            assert!((a - b).abs() < 1e-13, "native {a} vs vm {b}");
        }
    }

    #[test]
    fn measure_returns_positive_time() {
        let k = kernel("(F 4)", CompilerOptions::default());
        let t = k.measure(Duration::from_millis(3));
        assert!(t > 0.0);
    }

    #[test]
    fn sandboxed_run_matches_in_process() {
        let k = kernel("(F 4)", CompilerOptions::default());
        let x: Vec<f64> = (0..k.n_in).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y_direct = vec![0.0; k.n_out];
        let mut y_sandboxed = vec![0.0; k.n_out];
        k.run(&x, &mut y_direct);
        k.run_sandboxed(&x, &mut y_sandboxed, Duration::from_secs(30))
            .unwrap();
        assert_eq!(y_direct, y_sandboxed);
    }

    #[test]
    fn sandboxed_measure_returns_positive_time() {
        let k = kernel("(F 4)", CompilerOptions::default());
        let t = k
            .measure_sandboxed(Duration::from_millis(2), Duration::from_secs(30))
            .unwrap();
        assert!(t > 0.0);
    }

    #[test]
    fn complex_ir_rejected() {
        let mut c = Compiler::new();
        let units = c
            .compile_source("#datatype complex\n#codetype complex\n(F 2)")
            .unwrap();
        assert!(matches!(
            NativeKernel::compile(&units[0]),
            Err(NativeError::Unsupported(_))
        ));
    }

    #[test]
    fn compile_failure_cleans_temp_artifacts_and_clips_stderr() {
        // Force a cc failure through the public path by emitting a unit,
        // then compiling its C with a corrupted entry name via the
        // internal plumbing (the emitter itself never produces bad C).
        let before = count_spl_temps();
        let err = build_and_load(
            "broken",
            "void broken(double *y, const double *x) { this is not C; }",
            &BuildOptions::default(),
        )
        .unwrap_err();
        match &err {
            NativeError::CompileFailed(msg) => {
                assert!(msg.len() <= MAX_STDERR_CHARS + 64, "stderr not clipped");
                assert!(!msg.is_empty());
            }
            other => panic!("expected CompileFailed, got {other:?}"),
        }
        assert_eq!(count_spl_temps(), before, "temp artifacts leaked");
    }

    #[test]
    fn cc_timeout_is_classified_and_cleaned_up() {
        // A 0-budget build can never finish: the runner must kill cc,
        // classify the failure, and leave no artifacts behind.
        let before = count_spl_temps();
        let opts = BuildOptions {
            cc_timeout: Duration::from_millis(0),
            retry: RetryPolicy::none(),
        };
        let err = build_and_load(
            "slowbuild",
            "void slowbuild(double *y, const double *x) { y[0] = x[0]; }",
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, NativeError::CompileTimeout(_)), "got {err:?}");
        assert_eq!(count_spl_temps(), before, "temp artifacts leaked");
    }

    fn count_spl_temps() -> usize {
        std::fs::read_dir(std::env::temp_dir())
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| {
                        let pid = std::process::id().to_string();
                        let name = e.file_name().to_string_lossy().to_string();
                        name.starts_with(&format!("spl_native_{pid}_"))
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    #[test]
    fn clip_stderr_bounds_length() {
        let long = "e".repeat(100_000);
        let clipped = clip_stderr(long.as_bytes());
        assert!(clipped.len() < MAX_STDERR_CHARS + 64);
        assert!(clipped.contains("truncated"));
        assert_eq!(clip_stderr(b"short"), "short");
    }

    #[test]
    fn io_kernel_runs_with_strides_and_offsets() {
        // Run the F2 butterfly on every other complex element of a
        // larger buffer, writing to an offset strided region — the paper's
        // "computation performed on vector elements that are not
        // consecutive" (Section 3.5).
        let mut c = Compiler::new();
        let unit = c.compile_formula_str("(F 2)").unwrap();
        let k = NativeIoKernel::compile(&unit).unwrap();
        assert_eq!(k.n_in, 4); // 2 complex points = 4 real words
                               // Input x embedded at real-word stride 2 starting at word 1:
                               // logical elements x[1], x[3], x[5], x[7].
        let x = [0.0, 3.0, 0.0, 0.5, 0.0, 5.0, 0.0, -1.5];
        let mut y = vec![0.0; 16];
        // Output at word stride 3 starting at word 2.
        k.run(&x, &mut y, 2, 1, 3, 2);
        // (3+0.5i) and (5-1.5i): sum = 8-1i, diff = -2+2i
        assert_eq!(y[2], 8.0);
        assert_eq!(y[5], -1.0);
        assert_eq!(y[8], -2.0);
        assert_eq!(y[11], 2.0);
        // Untouched slots stay zero.
        assert_eq!(y[0], 0.0);
        assert_eq!(y[3], 0.0);
    }

    #[test]
    fn io_kernel_with_unit_strides_matches_plain_kernel() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let mut c = Compiler::new();
        let unit = c.compile_formula_str(src).unwrap();
        let plain = NativeKernel::compile(&unit).unwrap();
        let io = NativeIoKernel::compile(&unit).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; 16];
        let mut y2 = vec![0.0; 16];
        plain.run(&x, &mut y1);
        io.run(&x, &mut y2, 0, 0, 1, 1);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn cached_compile_hits_memory_and_matches_cold_kernel() {
        let mut c = Compiler::new();
        let unit = c.compile_formula_str("(F 4)").unwrap();
        let cache = KernelCache::in_memory();
        let opts = BuildOptions::default();
        let (k1, o1) = NativeKernel::compile_cached(&unit, &opts, &cache).unwrap();
        let (k2, o2) = NativeKernel::compile_cached(&unit, &opts, &cache).unwrap();
        assert_eq!(o1, CacheOutcome::Miss);
        assert_eq!(o2, CacheOutcome::MemoryHit);
        let x: Vec<f64> = (0..k1.n_in).map(|i| (i as f64 * 0.41).sin()).collect();
        let mut y1 = vec![0.0; k1.n_out];
        let mut y2 = vec![0.0; k2.n_out];
        k1.run(&x, &mut y1);
        k2.run(&x, &mut y2);
        assert_eq!(y1, y2, "cached kernel differs from cold compile");
        let tel = cache.drain_telemetry();
        assert_eq!(tel.counter("native.cc_invocations"), Some(1));
        assert_eq!(tel.counter("native.cache.memory_hits"), Some(1));
    }

    #[test]
    fn cached_compile_survives_a_fresh_disk_cache_instance() {
        let dir =
            std::env::temp_dir().join(format!("spl_native_kcache_{}_disk", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Compiler::new();
        let unit = c.compile_formula_str("(F 2)").unwrap();
        let opts = BuildOptions::default();
        {
            let cache = KernelCache::with_dir(&dir).unwrap();
            let (_k, o) = NativeKernel::compile_cached(&unit, &opts, &cache).unwrap();
            assert_eq!(o, CacheOutcome::Miss);
        }
        // A new process would open the directory afresh: the object must
        // come back from disk without another cc run.
        let cache = KernelCache::with_dir(&dir).unwrap();
        let (k, o) = NativeKernel::compile_cached(&unit, &opts, &cache).unwrap();
        assert_eq!(o, CacheOutcome::DiskHit);
        let x = [1.0, 0.0, 2.0, 0.0];
        let mut y = [0.0; 4];
        k.run(&x, &mut y);
        assert_eq!(y, [3.0, 0.0, -1.0, 0.0]);
        let tel = cache.drain_telemetry();
        assert_eq!(tel.counter("native.cc_invocations"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_cached_kernels_do_not_clash_on_the_shared_symbol() {
        // Two *different* kernels share the canonical symbol name; both
        // loaded at once must still dispatch to their own code.
        let mut c1 = Compiler::new();
        let u1 = c1.compile_formula_str("(F 2)").unwrap();
        let mut c2 = Compiler::new();
        let u2 = c2.compile_formula_str("(tensor (I 2) (F 2))").unwrap();
        let cache = KernelCache::in_memory();
        let opts = BuildOptions::default();
        let (k1, _) = NativeKernel::compile_cached(&u1, &opts, &cache).unwrap();
        let (k2, _) = NativeKernel::compile_cached(&u2, &opts, &cache).unwrap();
        let x1 = [1.0, 0.0, 2.0, 0.0];
        let mut y1 = [0.0; 4];
        k1.run(&x1, &mut y1);
        assert_eq!(y1, [3.0, 0.0, -1.0, 0.0]);
        let x2 = [1.0, 0.0, 2.0, 0.0, 5.0, 0.0, 7.0, 0.0];
        let mut y2 = [0.0; 8];
        k2.run(&x2, &mut y2);
        assert_eq!(y2, [3.0, 0.0, -1.0, 0.0, 12.0, 0.0, -2.0, 0.0]);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("fft16"), "fft16");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("1abc"), "s1abc");
    }
}
