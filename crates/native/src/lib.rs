#![warn(missing_docs)]

//! Native execution of generated C code — the paper's own methodology.
//!
//! The paper evaluates the SPL compiler by feeding its output to the
//! platform's native compiler and timing the resulting machine code.
//! This crate does exactly that on the host: a [`CompiledUnit`]'s C
//! output is written to a temporary file, compiled with the system C
//! compiler (`cc -O2 -shared -fPIC`), loaded with `dlopen`, and invoked
//! through its `void name(double *y, const double *x)` entry point.
//!
//! The `spl-vm` interpreter remains available as a portable fallback and
//! as the deterministic substrate for unit tests; benchmarks prefer this
//! native path so that the comparison against the (natively compiled)
//! FFTW-like baseline is apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use spl_compiler::Compiler;
//! use spl_native::NativeKernel;
//!
//! let mut c = Compiler::new();
//! let unit = c.compile_formula_str("(F 2)").unwrap();
//! let kernel = NativeKernel::compile(&unit).unwrap();
//! let x = [1.0, 0.0, 2.0, 0.0]; // (1, 2) as interleaved complex
//! let mut y = [0.0; 4];
//! kernel.run(&x, &mut y);
//! assert_eq!(y, [3.0, 0.0, -1.0, 0.0]);
//! ```

use std::error::Error;
use std::ffi::{c_char, c_int, c_void, CString};
use std::fmt;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use spl_compiler::{codegen, CodegenOptions, CompiledUnit};
use spl_frontend::ast::{DataType, Language};

extern "C" {
    fn dlopen(filename: *const c_char, flag: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlclose(handle: *mut c_void) -> c_int;
}

const RTLD_NOW: c_int = 2;

/// An error from native compilation or loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeError(pub String);

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "native execution: {}", self.0)
    }
}

impl Error for NativeError {}

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A natively compiled, loaded SPL subroutine.
///
/// Dropping the kernel unloads the shared object and removes its
/// temporary files.
pub struct NativeKernel {
    handle: *mut c_void,
    entry: extern "C" fn(*mut f64, *const f64),
    /// Input length in `f64` words.
    pub n_in: usize,
    /// Output length in `f64` words.
    pub n_out: usize,
    so_path: PathBuf,
    c_path: PathBuf,
}

impl fmt::Debug for NativeKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeKernel")
            .field("n_in", &self.n_in)
            .field("n_out", &self.n_out)
            .field("so_path", &self.so_path)
            .finish()
    }
}

impl NativeKernel {
    /// Emits C for the unit, compiles it with the host `cc`, and loads
    /// the resulting shared object.
    ///
    /// # Errors
    ///
    /// Fails when the unit is complex-typed (C output requires real
    /// code), when `cc` is unavailable or reports errors, or when the
    /// object cannot be loaded.
    pub fn compile(unit: &CompiledUnit) -> Result<NativeKernel, NativeError> {
        if unit.program.complex {
            return Err(NativeError(
                "C output requires real-typed code (set #codetype real)".into(),
            ));
        }
        let name = sanitize(&unit.name);
        let c_src = codegen::emit(
            &name,
            &unit.program,
            &CodegenOptions {
                language: Language::C,
                codetype: DataType::Real,
                peephole: false,
                io_params: false,
            },
        );
        let (handle, sym, so_path, c_path) = build_and_load(&name, &c_src)?;
        // SAFETY: the symbol has the C ABI signature
        // `void name(double *y, const double *x)` by construction of the
        // emitter.
        let entry: extern "C" fn(*mut f64, *const f64) = unsafe { std::mem::transmute(sym) };
        Ok(NativeKernel {
            handle,
            entry,
            n_in: unit.program.n_in,
            n_out: unit.program.n_out,
            so_path,
            c_path,
        })
    }

    /// Runs the kernel: `y = f(x)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match `n_in`/`n_out`.
    pub fn run(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_in, "input length mismatch");
        assert_eq!(y.len(), self.n_out, "output length mismatch");
        (self.entry)(y.as_mut_ptr(), x.as_ptr());
    }

    /// Adaptive timing: seconds per call, measured over at least
    /// `min_time` of repetitions on a deterministic workload.
    pub fn measure(&self, min_time: Duration) -> f64 {
        let x: Vec<f64> = (0..self.n_in)
            .map(|i| ((i as f64) * 0.7311).sin())
            .collect();
        let mut y = vec![0.0f64; self.n_out];
        spl_numeric::metrics::time_adaptive(min_time, || self.run(&x, &mut y))
    }
}

impl Drop for NativeKernel {
    fn drop(&mut self) {
        // SAFETY: handle came from a successful dlopen and is unloaded
        // exactly once.
        unsafe {
            dlclose(self.handle);
        }
        let _ = std::fs::remove_file(&self.so_path);
        let _ = std::fs::remove_file(&self.c_path);
    }
}

/// A natively compiled subroutine with the paper's Section 3.5
/// offset/stride parameters:
/// `void name(double *y, const double *x, long yofs, long xofs,
/// long ystr, long xstr)`, strides and offsets counted in *logical
/// elements* of the generated code (real words for real-typed code).
pub struct NativeIoKernel {
    handle: *mut c_void,
    entry: extern "C" fn(*mut f64, *const f64, i64, i64, i64, i64),
    /// Logical input length (number of strided elements consumed).
    pub n_in: usize,
    /// Logical output length.
    pub n_out: usize,
    so_path: PathBuf,
    c_path: PathBuf,
}

impl fmt::Debug for NativeIoKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeIoKernel")
            .field("n_in", &self.n_in)
            .field("n_out", &self.n_out)
            .finish()
    }
}

impl NativeIoKernel {
    /// Emits C with `io_params` enabled, compiles, and loads it.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`NativeKernel::compile`].
    pub fn compile(unit: &CompiledUnit) -> Result<NativeIoKernel, NativeError> {
        if unit.program.complex {
            return Err(NativeError(
                "C output requires real-typed code (set #codetype real)".into(),
            ));
        }
        let name = sanitize(&unit.name);
        let c_src = codegen::emit(
            &name,
            &unit.program,
            &CodegenOptions {
                language: Language::C,
                codetype: DataType::Real,
                peephole: false,
                io_params: true,
            },
        );
        let (handle, sym, so_path, c_path) = build_and_load(&name, &c_src)?;
        // SAFETY: the symbol was emitted with exactly this C signature.
        let entry: extern "C" fn(*mut f64, *const f64, i64, i64, i64, i64) =
            unsafe { std::mem::transmute(sym) };
        Ok(NativeIoKernel {
            handle,
            entry,
            n_in: unit.program.n_in,
            n_out: unit.program.n_out,
            so_path,
            c_path,
        })
    }

    /// Runs the kernel reading `x[xofs + xstr·k]` and writing
    /// `y[yofs + ystr·k]`.
    ///
    /// # Panics
    ///
    /// Panics if any strided access would fall outside the slices.
    pub fn run(
        &self,
        x: &[f64],
        y: &mut [f64],
        yofs: usize,
        xofs: usize,
        ystr: usize,
        xstr: usize,
    ) {
        let last = |ofs: usize, stride: usize, n: usize| {
            stride
                .checked_mul(n.saturating_sub(1))
                .and_then(|v| v.checked_add(ofs))
        };
        assert!(
            last(xofs, xstr, self.n_in).is_some_and(|v| v < x.len()),
            "strided input out of range"
        );
        assert!(
            last(yofs, ystr, self.n_out).is_some_and(|v| v < y.len()),
            "strided output out of range"
        );
        (self.entry)(
            y.as_mut_ptr(),
            x.as_ptr(),
            yofs as i64,
            xofs as i64,
            ystr as i64,
            xstr as i64,
        );
    }
}

impl Drop for NativeIoKernel {
    fn drop(&mut self) {
        // SAFETY: handle came from a successful dlopen, unloaded once.
        unsafe {
            dlclose(self.handle);
        }
        let _ = std::fs::remove_file(&self.so_path);
        let _ = std::fs::remove_file(&self.c_path);
    }
}

/// Shared cc + dlopen plumbing.
fn build_and_load(
    name: &str,
    c_src: &str,
) -> Result<(*mut c_void, *mut c_void, PathBuf, PathBuf), NativeError> {
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir();
    // pid + counter + a timestamp component keeps names collision-free
    // across concurrent processes in the shared temp directory.
    let nonce = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    let stem = format!("spl_native_{}_{}_{nonce}", std::process::id(), id);
    let c_path = dir.join(format!("{stem}.c"));
    let so_path = dir.join(format!("{stem}.so"));
    // Remove the on-disk artifacts on every failure path.
    let cleanup = |c: &PathBuf, s: &PathBuf| {
        let _ = std::fs::remove_file(c);
        let _ = std::fs::remove_file(s);
    };
    std::fs::write(&c_path, c_src)
        .map_err(|e| NativeError(format!("writing {}: {e}", c_path.display())))?;
    let output = Command::new("cc")
        .arg("-O2")
        .arg("-shared")
        .arg("-fPIC")
        .arg("-o")
        .arg(&so_path)
        .arg(&c_path)
        .output()
        .map_err(|e| {
            cleanup(&c_path, &so_path);
            NativeError(format!("running cc: {e}"))
        })?;
    if !output.status.success() {
        cleanup(&c_path, &so_path);
        return Err(NativeError(format!(
            "cc failed: {}",
            String::from_utf8_lossy(&output.stderr)
        )));
    }
    let so_c = CString::new(so_path.to_string_lossy().as_bytes()).map_err(|_| {
        cleanup(&c_path, &so_path);
        NativeError("bad path".into())
    })?;
    let name_c = CString::new(name.as_bytes()).map_err(|_| {
        cleanup(&c_path, &so_path);
        NativeError("bad name".into())
    })?;
    // SAFETY: loading an object we just built; symbol looked up by name.
    // The `long` parameters of the io-params signature are transmuted to
    // `i64`, which matches on every 64-bit Linux target this crate's
    // dlopen path supports (LP64).
    unsafe {
        let handle = dlopen(so_c.as_ptr(), RTLD_NOW);
        if handle.is_null() {
            cleanup(&c_path, &so_path);
            return Err(NativeError(format!("dlopen {} failed", so_path.display())));
        }
        let sym = dlsym(handle, name_c.as_ptr());
        if sym.is_null() {
            dlclose(handle);
            cleanup(&c_path, &so_path);
            return Err(NativeError(format!("symbol {name} not found")));
        }
        Ok((handle, sym, so_path, c_path))
    }
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, 's');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_compiler::{Compiler, CompilerOptions};
    use spl_numeric::{reference, Complex};

    fn kernel(src: &str, opts: CompilerOptions) -> NativeKernel {
        let mut c = Compiler::with_options(opts);
        let unit = c.compile_formula_str(src).unwrap();
        NativeKernel::compile(&unit).unwrap()
    }

    fn run_complex(k: &NativeKernel, x: &[Complex]) -> Vec<Complex> {
        let flat: Vec<f64> = x.iter().flat_map(|z| [z.re, z.im]).collect();
        let mut y = vec![0.0; k.n_out];
        k.run(&flat, &mut y);
        y.chunks(2).map(|p| Complex::new(p[0], p[1])).collect()
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect()
    }

    #[test]
    fn butterfly_runs_natively() {
        let k = kernel("(F 2)", CompilerOptions::default());
        let x = ramp(2);
        let y = run_complex(&k, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-13));
        }
    }

    #[test]
    fn looped_fft_with_tables_runs_natively() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let k = kernel(src, CompilerOptions::default());
        let x = ramp(8);
        let y = run_complex(&k, &x);
        let want = reference::dft(&x);
        for (a, b) in y.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn unrolled_fft_matches_vm() {
        let src = "(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))";
        let opts = CompilerOptions {
            unroll_threshold: Some(64),
            ..Default::default()
        };
        let mut c = Compiler::with_options(opts.clone());
        let unit = c.compile_formula_str(src).unwrap();
        let k = NativeKernel::compile(&unit).unwrap();
        let vm = spl_vm::lower(&unit.program).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();
        let mut y_native = vec![0.0; 8];
        let mut y_vm = vec![0.0; 8];
        k.run(&x, &mut y_native);
        let mut st = spl_vm::VmState::new(&vm);
        vm.run(&x, &mut y_vm, &mut st);
        for (a, b) in y_native.iter().zip(&y_vm) {
            assert!((a - b).abs() < 1e-13, "native {a} vs vm {b}");
        }
    }

    #[test]
    fn measure_returns_positive_time() {
        let k = kernel("(F 4)", CompilerOptions::default());
        let t = k.measure(Duration::from_millis(3));
        assert!(t > 0.0);
    }

    #[test]
    fn complex_ir_rejected() {
        let mut c = Compiler::new();
        let units = c
            .compile_source("#datatype complex\n#codetype complex\n(F 2)")
            .unwrap();
        assert!(NativeKernel::compile(&units[0]).is_err());
    }

    #[test]
    fn io_kernel_runs_with_strides_and_offsets() {
        // Run the F2 butterfly on every other complex element of a
        // larger buffer, writing to an offset strided region — the paper's
        // "computation performed on vector elements that are not
        // consecutive" (Section 3.5).
        let mut c = Compiler::new();
        let unit = c.compile_formula_str("(F 2)").unwrap();
        let k = NativeIoKernel::compile(&unit).unwrap();
        assert_eq!(k.n_in, 4); // 2 complex points = 4 real words
                               // Input x embedded at real-word stride 2 starting at word 1:
                               // logical elements x[1], x[3], x[5], x[7].
        let x = [0.0, 3.0, 0.0, 0.5, 0.0, 5.0, 0.0, -1.5];
        let mut y = vec![0.0; 16];
        // Output at word stride 3 starting at word 2.
        k.run(&x, &mut y, 2, 1, 3, 2);
        // (3+0.5i) and (5-1.5i): sum = 8-1i, diff = -2+2i
        assert_eq!(y[2], 8.0);
        assert_eq!(y[5], -1.0);
        assert_eq!(y[8], -2.0);
        assert_eq!(y[11], 2.0);
        // Untouched slots stay zero.
        assert_eq!(y[0], 0.0);
        assert_eq!(y[3], 0.0);
    }

    #[test]
    fn io_kernel_with_unit_strides_matches_plain_kernel() {
        let src = "(compose (tensor (F 2) (I 4)) (T 8 4) (tensor (I 2) (F 4)) (L 8 2))";
        let mut c = Compiler::new();
        let unit = c.compile_formula_str(src).unwrap();
        let plain = NativeKernel::compile(&unit).unwrap();
        let io = NativeIoKernel::compile(&unit).unwrap();
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y1 = vec![0.0; 16];
        let mut y2 = vec![0.0; 16];
        plain.run(&x, &mut y1);
        io.run(&x, &mut y2, 0, 0, 1, 1);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("fft16"), "fft16");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("1abc"), "s1abc");
    }
}
