//! A content-addressed cache of compiled kernel shared objects.
//!
//! A timing search compiles thousands of generated kernels, and many of
//! them are byte-identical: shared subtrees recur across sizes, and a
//! rerun of the same search recompiles everything. The cache keys each
//! kernel by the *content* that determines the machine code — the
//! emitted C source, the [`BuildOptions`], the `cc` command line, and
//! the `cc` version — so a hit is guaranteed to be the same object `cc`
//! would have produced, and any change to compiler or flags invalidates
//! the entry automatically.
//!
//! Two layers:
//!
//! * **Memory** — an `Arc<Vec<u8>>` per shared object, bounded FIFO, so
//!   concurrent search workers share one copy per distinct kernel.
//! * **Disk (optional)** — `<dir>/<key>.so` files plus a CRC-framed
//!   `index.journal` ([`spl_resilience::journal`]) recording each
//!   entry's length and CRC32. Entries are written atomically
//!   (tmp + rename); a corrupt or truncated `.so` is detected by the
//!   index check, discarded, and recompiled rather than loaded.
//!
//! The disk layer is safe to share between processes (a search and a
//! serving daemon pointed at the same directory, or several daemons):
//! tmp files carry the writer's pid plus a per-process counter so
//! concurrent writers of the same key never interleave into one file,
//! and every disk mutation (index open/heal, insert, evict, corrupt
//! discard) happens under an advisory `index.lock`
//! ([`spl_resilience::lockfile`]), so index appends from different
//! processes never tear each other. The lock is advisory and degrades
//! to a no-op where unsupported — single-process use never needed it
//! for correctness.
//!
//! The cache never runs `cc` itself — callers
//! ([`NativeKernel::compile_cached`](crate::NativeKernel::compile_cached))
//! look up, compile on a miss, and insert the result.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use spl_resilience::crc32::crc32;
use spl_resilience::{FileLock, Journal};
use spl_telemetry::Telemetry;

use crate::{BuildOptions, NativeError, CC_FLAGS};

/// Bound on in-memory entries; a full small-search to 2^10 uses well
/// under a hundred distinct kernels, so this is a leak guard, not a
/// working-set limit.
const MEM_CAP: usize = 512;

/// How a cached-compile request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The shared object was already in memory.
    MemoryHit,
    /// The shared object was loaded (and CRC-verified) from disk.
    DiskHit,
    /// `cc` had to be invoked.
    Miss,
}

/// The version banner of the host C compiler (first line of
/// `cc --version`), computed once per process. Unavailable compilers
/// yield `"unknown"` — the subsequent `cc` invocation will produce the
/// real error.
pub fn cc_version() -> &'static str {
    static VERSION: OnceLock<String> = OnceLock::new();
    VERSION.get_or_init(|| {
        std::process::Command::new("cc")
            .arg("--version")
            .output()
            .ok()
            .and_then(|out| {
                String::from_utf8_lossy(&out.stdout)
                    .lines()
                    .next()
                    .map(str::to_string)
            })
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into())
    })
}

/// 64-bit FNV-1a over `bytes`, from an explicit basis so two passes
/// with different bases give 128 key bits.
fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct CacheInner {
    mem: HashMap<String, Arc<Vec<u8>>>,
    /// Insertion order of `mem` keys, for FIFO eviction.
    order: VecDeque<String>,
    /// Disk entries by key: (byte length, crc32). Later index records
    /// win, so a rewritten entry supersedes the old line.
    disk: HashMap<String, (u64, u32)>,
    index: Option<Journal>,
    tel: Telemetry,
}

/// A thread-safe content-addressed store of compiled `.so` images.
///
/// Shared across search workers behind an [`Arc`]; all internal state
/// is guarded by one mutex (lookups are byte-copies and index updates,
/// never compilations, so the critical sections are short).
pub struct KernelCache {
    inner: Mutex<CacheInner>,
    disk_dir: Option<PathBuf>,
}

impl fmt::Debug for KernelCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelCache")
            .field("disk_dir", &self.disk_dir)
            .finish()
    }
}

impl KernelCache {
    /// A purely in-memory cache (the default for `compile_cached`).
    pub fn in_memory() -> KernelCache {
        KernelCache {
            inner: Mutex::new(CacheInner {
                mem: HashMap::new(),
                order: VecDeque::new(),
                disk: HashMap::new(),
                index: None,
                tel: Telemetry::new(),
            }),
            disk_dir: None,
        }
    }

    /// A cache backed by `dir`: hits survive across processes. The
    /// directory is created if needed and its `index.journal` loaded
    /// tolerantly (a torn final record is dropped, not fatal).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors creating the directory or opening the index.
    pub fn with_dir(dir: &Path) -> Result<KernelCache, NativeError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| NativeError::Io(format!("creating {}: {e}", dir.display())))?;
        // Opening may heal the journal (tmp + rename of the whole
        // file); hold the directory lock so a concurrent writer's
        // append is never torn off by the rewrite.
        let _lock = FileLock::acquire_or_noop(&dir.join("index.lock"));
        let (journal, loaded) = Journal::open(&dir.join("index.journal"))
            .map_err(|e| NativeError::Io(format!("kernel cache index: {e}")))?;
        let mut disk = HashMap::new();
        for rec in &loaded.records {
            if let Some((key, len, crc)) = parse_index_record(rec) {
                disk.insert(key, (len, crc));
            } else if let Some(key) = parse_rm_record(rec) {
                disk.remove(&key);
            }
        }
        let mut tel = Telemetry::new();
        if loaded.dropped > 0 {
            tel.add("native.cache.index_records_dropped", loaded.dropped as u64);
        }
        Ok(KernelCache {
            inner: Mutex::new(CacheInner {
                mem: HashMap::new(),
                order: VecDeque::new(),
                disk,
                index: Some(journal),
                tel,
            }),
            disk_dir: Some(dir.to_path_buf()),
        })
    }

    /// The content key for one compilation: 128 hash bits over the
    /// emitted C source, the build options, the fixed `cc` command
    /// line, and the `cc` version banner. Anything that could change
    /// the produced object changes the key.
    pub fn key(c_src: &str, opts: &BuildOptions) -> String {
        let mut text = String::with_capacity(c_src.len() + 128);
        text.push_str(c_src);
        text.push('\u{1f}');
        text.push_str(&format!("{opts:?}"));
        text.push('\u{1f}');
        text.push_str(&CC_FLAGS.join(" "));
        text.push('\u{1f}');
        text.push_str(cc_version());
        format!(
            "{:016x}{:016x}",
            fnv1a(0xcbf2_9ce4_8422_2325, text.as_bytes()),
            fnv1a(0x9e37_79b9_7f4a_7c15, text.as_bytes())
        )
    }

    /// Looks up a compiled object by key: memory first, then the disk
    /// directory (CRC-verified against the index; corrupt entries are
    /// discarded and reported as a miss so the caller recompiles).
    pub fn lookup(&self, key: &str) -> Option<(Arc<Vec<u8>>, CacheOutcome)> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(bytes) = inner.mem.get(key) {
            let bytes = Arc::clone(bytes);
            inner.tel.add("native.cache.memory_hits", 1);
            return Some((bytes, CacheOutcome::MemoryHit));
        }
        let (want_len, want_crc) = inner.disk.get(key).copied()?;
        let path = self.so_path(key)?;
        let ok = std::fs::read(&path)
            .ok()
            .filter(|b| b.len() as u64 == want_len && crc32(b) == want_crc);
        match ok {
            Some(bytes) => {
                let bytes = Arc::new(bytes);
                Self::remember(&mut inner, key, Arc::clone(&bytes));
                inner.tel.add("native.cache.disk_hits", 1);
                Some((bytes, CacheOutcome::DiskHit))
            }
            None => {
                // Truncated, bit-flipped, or deleted: purge the entry so
                // the recompiled object can take its place. Under the
                // directory lock, so the removal can't race another
                // process's tmp + rename of a fresh copy.
                inner.disk.remove(key);
                let _lock = self.disk_lock();
                let _ = std::fs::remove_file(&path);
                inner.tel.add("native.cache.corrupt_discarded", 1);
                None
            }
        }
    }

    /// Inserts a freshly compiled object under `key`, into memory and —
    /// when disk-backed — the cache directory (atomic tmp + rename with
    /// a pid-unique tmp name, then an index record with length and
    /// CRC32, all under the directory lock). Disk I/O failures are
    /// counted, not propagated: the kernel already compiled, so a full
    /// disk must not fail the candidate.
    pub fn insert(&self, key: &str, bytes: Vec<u8>) {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let mut inner = self.inner.lock().unwrap();
        let bytes = Arc::new(bytes);
        Self::remember(&mut inner, key, Arc::clone(&bytes));
        let Some(path) = self.so_path(key) else {
            return;
        };
        // Unique per writer: two processes (or threads) inserting the
        // same key never write into the same tmp file.
        let tmp = path.with_extension(format!(
            "so.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _lock = self.disk_lock();
        let written = std::fs::write(&tmp, bytes.as_slice())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .is_ok();
        if !written {
            let _ = std::fs::remove_file(&tmp);
            inner.tel.add("native.cache.disk_write_failures", 1);
            return;
        }
        let len = bytes.len() as u64;
        let crc = crc32(&bytes);
        inner.disk.insert(key.to_string(), (len, crc));
        if let Some(journal) = inner.index.as_mut() {
            if journal
                .append(&format!("so {key} {len} {crc:08x}"))
                .is_err()
            {
                inner.tel.add("native.cache.disk_write_failures", 1);
            }
        }
    }

    /// Removes `key` everywhere: memory, the disk directory, and — when
    /// disk-backed — an `rm` tombstone record in the index journal so
    /// the eviction survives a process restart (later records win, so a
    /// subsequent [`KernelCache::insert`] re-admits the key).
    ///
    /// Used to quarantine kernels whose *output* was found wrong after
    /// compilation (verification failure): the cache key only covers
    /// what goes *into* `cc`, so a miscompiled or corrupted object must
    /// be expelled explicitly or every retry would be served the same
    /// bad code.
    pub fn evict(&self, key: &str) {
        let mut inner = self.inner.lock().unwrap();
        if inner.mem.remove(key).is_some() {
            inner.order.retain(|k| k != key);
        }
        let on_disk = inner.disk.remove(key).is_some();
        inner.tel.add("native.cache.quarantined", 1);
        if let Some(path) = self.so_path(key) {
            let _lock = self.disk_lock();
            let _ = std::fs::remove_file(&path);
            if on_disk {
                if let Some(journal) = inner.index.as_mut() {
                    if journal.append(&format!("rm {key}")).is_err() {
                        inner.tel.add("native.cache.disk_write_failures", 1);
                    }
                }
            }
        }
    }

    /// Bumps the `native.cc_invocations` counter; called by the cached
    /// compile path when it actually runs the C compiler.
    pub fn count_cc_invocation(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.tel.add("native.cc_invocations", 1);
    }

    /// Takes the accumulated cache telemetry (hit/miss/evict and cc
    /// invocation counters), leaving the cache's own copy empty — safe
    /// to merge into a per-run report without double counting.
    pub fn drain_telemetry(&self) -> Telemetry {
        std::mem::take(&mut self.inner.lock().unwrap().tel)
    }

    fn remember(inner: &mut CacheInner, key: &str, bytes: Arc<Vec<u8>>) {
        if inner.mem.insert(key.to_string(), bytes).is_none() {
            inner.order.push_back(key.to_string());
            if inner.order.len() > MEM_CAP {
                if let Some(old) = inner.order.pop_front() {
                    inner.mem.remove(&old);
                    inner.tel.add("native.cache.evictions", 1);
                }
            }
        }
    }

    fn so_path(&self, key: &str) -> Option<PathBuf> {
        self.disk_dir.as_ref().map(|d| d.join(format!("{key}.so")))
    }

    /// The advisory cross-process lock over the cache directory, or
    /// `None` for in-memory caches. Degrades to an unlocked guard where
    /// `flock` is unavailable.
    fn disk_lock(&self) -> Option<FileLock> {
        self.disk_dir
            .as_ref()
            .map(|d| FileLock::acquire_or_noop(&d.join("index.lock")))
    }
}

/// Parses one `so <key> <len> <crc:08x>` index record.
fn parse_index_record(rec: &str) -> Option<(String, u64, u32)> {
    let mut it = rec.split_whitespace();
    if it.next()? != "so" {
        return None;
    }
    let key = it.next()?.to_string();
    let len = it.next()?.parse().ok()?;
    let crc = u32::from_str_radix(it.next()?, 16).ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((key, len, crc))
}

/// Parses one `rm <key>` tombstone record (written by
/// [`KernelCache::evict`]).
fn parse_rm_record(rec: &str) -> Option<String> {
    let mut it = rec.split_whitespace();
    if it.next()? != "rm" {
        return None;
    }
    let key = it.next()?.to_string();
    if it.next().is_some() {
        return None;
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("spl_kcache_test_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn key_is_content_addressed() {
        let opts = BuildOptions::default();
        let a = KernelCache::key("void f(void){}", &opts);
        let b = KernelCache::key("void f(void){}", &opts);
        let c = KernelCache::key("void g(void){}", &opts);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 32);
        let slow = BuildOptions {
            cc_timeout: std::time::Duration::from_secs(7),
            ..BuildOptions::default()
        };
        assert_ne!(a, KernelCache::key("void f(void){}", &slow));
    }

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = KernelCache::in_memory();
        assert!(cache.lookup("deadbeef").is_none());
        cache.insert("deadbeef", vec![1, 2, 3]);
        let (bytes, outcome) = cache.lookup("deadbeef").unwrap();
        assert_eq!(*bytes, vec![1, 2, 3]);
        assert_eq!(outcome, CacheOutcome::MemoryHit);
        let tel = cache.drain_telemetry();
        assert_eq!(tel.counter("native.cache.memory_hits"), Some(1));
        // Take-semantics: a second drain starts from zero.
        assert!(cache
            .drain_telemetry()
            .counter("native.cache.memory_hits")
            .is_none());
    }

    #[test]
    fn disk_roundtrip_across_instances() {
        let dir = tmp_dir("roundtrip");
        {
            let cache = KernelCache::with_dir(&dir).unwrap();
            cache.insert("cafe", b"not really elf".to_vec());
        }
        let cache = KernelCache::with_dir(&dir).unwrap();
        let (bytes, outcome) = cache.lookup("cafe").unwrap();
        assert_eq!(outcome, CacheOutcome::DiskHit);
        assert_eq!(bytes.as_slice(), b"not really elf");
        // Now resident in memory too.
        assert_eq!(cache.lookup("cafe").unwrap().1, CacheOutcome::MemoryHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entry_is_discarded() {
        let dir = tmp_dir("corrupt");
        {
            let cache = KernelCache::with_dir(&dir).unwrap();
            cache.insert("beef", vec![9u8; 64]);
        }
        // Flip a byte in the stored object; the index CRC now disagrees.
        let so = dir.join("beef.so");
        let mut bytes = std::fs::read(&so).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&so, &bytes).unwrap();
        let cache = KernelCache::with_dir(&dir).unwrap();
        assert!(cache.lookup("beef").is_none(), "corrupt entry served");
        assert!(!so.exists(), "corrupt file not removed");
        let tel = cache.drain_telemetry();
        assert_eq!(tel.counter("native.cache.corrupt_discarded"), Some(1));
        // A reinsert (the recompile) works and is served again.
        cache.insert("beef", vec![7u8; 64]);
        assert!(cache.lookup("beef").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_disk_entry_is_discarded() {
        let dir = tmp_dir("truncated");
        {
            let cache = KernelCache::with_dir(&dir).unwrap();
            cache.insert("feed", vec![5u8; 128]);
        }
        let so = dir.join("feed.so");
        let bytes = std::fs::read(&so).unwrap();
        std::fs::write(&so, &bytes[..100]).unwrap();
        let cache = KernelCache::with_dir(&dir).unwrap();
        assert!(cache.lookup("feed").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let cache = KernelCache::in_memory();
        for i in 0..(MEM_CAP + 3) {
            cache.insert(&format!("k{i}"), vec![i as u8]);
        }
        assert!(cache.lookup("k0").is_none(), "oldest entry not evicted");
        assert!(cache.lookup("k5").is_some() || MEM_CAP < 6);
        let tel = cache.drain_telemetry();
        assert_eq!(tel.counter("native.cache.evictions"), Some(3));
    }

    #[test]
    fn evict_purges_memory_and_disk() {
        let dir = tmp_dir("evict");
        let cache = KernelCache::with_dir(&dir).unwrap();
        cache.insert("bad0", vec![1u8; 32]);
        assert!(cache.lookup("bad0").is_some());
        cache.evict("bad0");
        assert!(cache.lookup("bad0").is_none(), "evicted key still served");
        assert!(!dir.join("bad0.so").exists(), "evicted .so left on disk");
        let tel = cache.drain_telemetry();
        assert_eq!(tel.counter("native.cache.quarantined"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_tombstone_survives_restart() {
        let dir = tmp_dir("tombstone");
        {
            let cache = KernelCache::with_dir(&dir).unwrap();
            cache.insert("bad1", vec![2u8; 32]);
            cache.evict("bad1");
        }
        let cache = KernelCache::with_dir(&dir).unwrap();
        assert!(cache.lookup("bad1").is_none(), "tombstone ignored on load");
        // A reinsert after the tombstone wins (later records beat earlier).
        cache.insert("bad1", vec![3u8; 32]);
        drop(cache);
        let cache = KernelCache::with_dir(&dir).unwrap();
        assert_eq!(cache.lookup("bad1").unwrap().1, CacheOutcome::DiskHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_unknown_key_is_harmless() {
        let cache = KernelCache::in_memory();
        cache.evict("never-inserted");
        assert!(cache.lookup("never-inserted").is_none());
    }

    #[test]
    fn rm_records_parse() {
        assert_eq!(parse_rm_record("rm abc123"), Some("abc123".into()));
        assert_eq!(parse_rm_record("so abc123 1 ff"), None);
        assert_eq!(parse_rm_record("rm"), None);
        assert_eq!(parse_rm_record("rm k extra"), None);
    }

    #[test]
    fn index_records_parse() {
        assert_eq!(
            parse_index_record("so abc123 42 deadbeef"),
            Some(("abc123".into(), 42, 0xdeadbeef))
        );
        assert_eq!(parse_index_record("wisdom abc 1 2"), None);
        assert_eq!(parse_index_record("so onlykey"), None);
        assert_eq!(parse_index_record("so k 1 zz"), None);
        assert_eq!(parse_index_record("so k 1 ff extra"), None);
    }
}
