#![warn(missing_docs)]

//! An FFTW-style baseline FFT library, built from scratch.
//!
//! The paper compares SPL-generated code against FFTW 2.x, which computes
//! large FFTs recursively from three components: *codelets* (optimized
//! straight-line transforms for small sizes, parameterized by input and
//! output stride), a *planner* (run-time dynamic programming over
//! factorizations, either by **measuring** candidate execution times or by
//! **estimating** them with a cost model), and an *executor* that walks
//! the chosen plan. This crate implements that architecture directly (see
//! DESIGN.md, substitution 2) so the benchmark harness can reproduce the
//! paper's `FFTW` and `FFTW estimate` series.
//!
//! Data layout: complex vectors as interleaved `f64` (`re0, im0, re1,
//! im1, ...`), the same layout the SPL compiler's real-typed output uses.
//!
//! # Examples
//!
//! ```
//! use spl_minifft::{Plan, PlanMode};
//!
//! let plan = Plan::new(8, PlanMode::Estimate);
//! let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
//! let mut y = vec![0.0; 16];
//! plan.execute(&x, &mut y);
//! // y[0..2] is the DC term: sum of the 8 complex points.
//! assert!((y[0] - (0..8).map(|k| 2.0 * k as f64).sum::<f64>()).abs() < 1e-9);
//! ```

pub mod codelet;
pub mod estimate;
pub mod planner;

pub use codelet::Codelet;
pub use planner::{Plan, PlanMode, PlanNode};
