//! Codelets: small fixed-size FFT kernels with stride parameters.
//!
//! Like FFTW's codelets, each computes one n-point DFT reading the input
//! at stride `is` and writing the output at stride `os` (strides counted
//! in complex elements over interleaved-real storage). Sizes 2–8 are
//! hand-unrolled; 16–64 run a compact split-loop over the unrolled
//! kernels with twiddles baked into the codelet at construction time.
//! The executor's twiddle+columns pass gathers strided data into local
//! buffers before applying a kernel, so codelets never alias.

use spl_numeric::twiddle::omega;

/// Sizes for which codelets exist (powers of two up to 64, as in the
/// paper's experiments).
pub const CODELET_SIZES: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// A small fixed-size DFT kernel.
#[derive(Debug, Clone)]
pub struct Codelet {
    n: usize,
    /// Interleaved twiddles for the internal split of sizes 16–64:
    /// `W(n, k·j)` at `[2*(k*s+j)]`, with `s = n/8`.
    tw: Vec<f64>,
}

impl Codelet {
    /// Builds the codelet for `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not one of [`CODELET_SIZES`].
    pub fn new(n: usize) -> Codelet {
        assert!(
            CODELET_SIZES.contains(&n),
            "no codelet for size {n} (have {CODELET_SIZES:?})"
        );
        let tw = if n > 8 {
            let s = n / 8;
            let mut tw = Vec::with_capacity(2 * n);
            for k in 0..8 {
                for j in 0..s {
                    let w = omega(n, (k * j) as i64);
                    tw.push(w.re);
                    tw.push(w.im);
                }
            }
            tw
        } else {
            Vec::new()
        };
        Codelet { n, tw }
    }

    /// The transform size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the codelet (its baked twiddles).
    pub fn bytes(&self) -> usize {
        self.tw.len() * std::mem::size_of::<f64>()
    }

    /// Computes `y = DFT_n(x)` with input stride `is` and output stride
    /// `os` (complex elements).
    ///
    /// # Panics
    ///
    /// Panics if a strided access falls outside either slice.
    pub fn apply(&self, x: &[f64], is: usize, y: &mut [f64], os: usize) {
        match self.n {
            2 => f2(x, is, y, os),
            4 => f4(x, is, y, os),
            8 => f8(x, is, y, os),
            _ => self.split(x, is, y, os),
        }
    }

    /// Sizes 16–64 as one split level: `F_n = (F_8 ⊗ I_s) T^n_s (I_8 ⊗
    /// F_s) L^n_8` with `s = n/8 ∈ {2, 4, 8}`, using the hand-unrolled
    /// kernels for both stages and the baked twiddles.
    fn split(&self, x: &[f64], is: usize, y: &mut [f64], os: usize) {
        let n = self.n;
        let s = n / 8;
        // (I_8 ⊗ F_s) L^n_8: block k of the output is F_s of the
        // decimated subsequence {k, k+8, k+16, ...}.
        for k in 0..8 {
            let sub = |xx: &[f64], yy: &mut [f64]| match s {
                2 => f2(xx, is * 8, yy, os),
                4 => f4(xx, is * 8, yy, os),
                _ => f8(xx, is * 8, yy, os),
            };
            sub(&x[2 * k * is..], &mut y[2 * k * s * os..]);
        }
        // T^n_s then F_8 on the strided "rows": column j collects
        // y[j + k·s] for k = 0..8.
        let mut buf = [0.0f64; 16];
        for j in 0..s {
            for k in 0..8 {
                let idx = 2 * (k * s + j) * os;
                let (re, im) = (y[idx], y[idx + 1]);
                let (wr, wi) = (self.tw[2 * (k * s + j)], self.tw[2 * (k * s + j) + 1]);
                buf[2 * k] = re * wr - im * wi;
                buf[2 * k + 1] = re * wi + im * wr;
            }
            let mut out = [0.0f64; 16];
            f8(&buf, 1, &mut out, 1);
            for k in 0..8 {
                let idx = 2 * (k * s + j) * os;
                y[idx] = out[2 * k];
                y[idx + 1] = out[2 * k + 1];
            }
        }
    }
}

#[inline]
fn ld(x: &[f64], stride: usize, k: usize) -> (f64, f64) {
    let i = 2 * k * stride;
    (x[i], x[i + 1])
}

#[inline]
fn st(y: &mut [f64], stride: usize, k: usize, re: f64, im: f64) {
    let i = 2 * k * stride;
    y[i] = re;
    y[i + 1] = im;
}

/// The 2-point butterfly.
fn f2(x: &[f64], is: usize, y: &mut [f64], os: usize) {
    let (a_re, a_im) = ld(x, is, 0);
    let (b_re, b_im) = ld(x, is, 1);
    st(y, os, 0, a_re + b_re, a_im + b_im);
    st(y, os, 1, a_re - b_re, a_im - b_im);
}

/// The 4-point kernel (radix-2 DIT, fully unrolled).
fn f4(x: &[f64], is: usize, y: &mut [f64], os: usize) {
    let (x0r, x0i) = ld(x, is, 0);
    let (x1r, x1i) = ld(x, is, 1);
    let (x2r, x2i) = ld(x, is, 2);
    let (x3r, x3i) = ld(x, is, 3);
    // Even/odd halves.
    let (e0r, e0i) = (x0r + x2r, x0i + x2i);
    let (e1r, e1i) = (x0r - x2r, x0i - x2i);
    let (o0r, o0i) = (x1r + x3r, x1i + x3i);
    let (o1r, o1i) = (x1r - x3r, x1i - x3i);
    // Twiddle W4^1 = -i on the second odd term: (r, i) -> (i, -r).
    let (t1r, t1i) = (o1i, -o1r);
    st(y, os, 0, e0r + o0r, e0i + o0i);
    st(y, os, 1, e1r + t1r, e1i + t1i);
    st(y, os, 2, e0r - o0r, e0i - o0i);
    st(y, os, 3, e1r - t1r, e1i - t1i);
}

/// The 8-point kernel (radix-2 DIT over two F4 halves, fully unrolled).
fn f8(x: &[f64], is: usize, y: &mut [f64], os: usize) {
    const H: f64 = std::f64::consts::FRAC_1_SQRT_2;
    // Even half: F4 of (x0, x2, x4, x6).
    let (x0r, x0i) = ld(x, is, 0);
    let (x2r, x2i) = ld(x, is, 2);
    let (x4r, x4i) = ld(x, is, 4);
    let (x6r, x6i) = ld(x, is, 6);
    let (e0r, e0i) = (x0r + x4r, x0i + x4i);
    let (e1r, e1i) = (x0r - x4r, x0i - x4i);
    let (e2r, e2i) = (x2r + x6r, x2i + x6i);
    let (e3r, e3i) = (x2i - x6i, x6r - x2r); // -i*(x2-x6)
    let (a0r, a0i) = (e0r + e2r, e0i + e2i);
    let (a1r, a1i) = (e1r + e3r, e1i + e3i);
    let (a2r, a2i) = (e0r - e2r, e0i - e2i);
    let (a3r, a3i) = (e1r - e3r, e1i - e3i);
    // Odd half: F4 of (x1, x3, x5, x7).
    let (x1r, x1i) = ld(x, is, 1);
    let (x3r, x3i) = ld(x, is, 3);
    let (x5r, x5i) = ld(x, is, 5);
    let (x7r, x7i) = ld(x, is, 7);
    let (f0r, f0i) = (x1r + x5r, x1i + x5i);
    let (f1r, f1i) = (x1r - x5r, x1i - x5i);
    let (f2r, f2i) = (x3r + x7r, x3i + x7i);
    let (f3r, f3i) = (x3i - x7i, x7r - x3r); // -i*(x3-x7)
    let (b0r, b0i) = (f0r + f2r, f0i + f2i);
    let (b1r, b1i) = (f1r + f3r, f1i + f3i);
    let (b2r, b2i) = (f0r - f2r, f0i - f2i);
    let (b3r, b3i) = (f1r - f3r, f1i - f3i);
    // Twiddles W8^k on the odd half: 1, (1-i)/√2, -i, (-1-i)/√2.
    let (t0r, t0i) = (b0r, b0i);
    let (t1r, t1i) = (H * (b1r + b1i), H * (b1i - b1r));
    let (t2r, t2i) = (b2i, -b2r);
    let (t3r, t3i) = (H * (b3i - b3r), -H * (b3r + b3i));
    st(y, os, 0, a0r + t0r, a0i + t0i);
    st(y, os, 1, a1r + t1r, a1i + t1i);
    st(y, os, 2, a2r + t2r, a2i + t2i);
    st(y, os, 3, a3r + t3r, a3i + t3i);
    st(y, os, 4, a0r - t0r, a0i - t0i);
    st(y, os, 5, a1r - t1r, a1i - t1i);
    st(y, os, 6, a2r - t2r, a2i - t2i);
    st(y, os, 7, a3r - t3r, a3i - t3i);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_numeric::{reference, Complex};

    fn pack(x: &[Complex]) -> Vec<f64> {
        x.iter().flat_map(|c| [c.re, c.im]).collect()
    }

    fn unpack(x: &[f64]) -> Vec<Complex> {
        x.chunks(2).map(|p| Complex::new(p[0], p[1])).collect()
    }

    fn workload(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.81).cos()))
            .collect()
    }

    #[test]
    fn all_codelet_sizes_match_reference() {
        for n in CODELET_SIZES {
            let c = Codelet::new(n);
            let x = workload(n);
            let mut y = vec![0.0; 2 * n];
            c.apply(&pack(&x), 1, &mut y, 1);
            let got = unpack(&y);
            let want = reference::dft(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-11), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn strided_input_and_output() {
        let n = 8;
        let c = Codelet::new(n);
        let x = workload(n);
        // Input embedded at stride 3, output at stride 2.
        let mut xe = vec![0.0; 2 * n * 3];
        for (k, z) in x.iter().enumerate() {
            xe[2 * k * 3] = z.re;
            xe[2 * k * 3 + 1] = z.im;
        }
        let mut ye = vec![0.0; 2 * n * 2];
        c.apply(&xe, 3, &mut ye, 2);
        let want = reference::dft(&x);
        for (k, w) in want.iter().enumerate() {
            let got = Complex::new(ye[2 * k * 2], ye[2 * k * 2 + 1]);
            assert!(got.approx_eq(*w, 1e-11), "k={k}");
        }
    }

    #[test]
    fn repeated_application_is_deterministic() {
        let n = 32;
        let c = Codelet::new(n);
        let x = pack(&workload(n));
        let mut y1 = vec![0.0; 2 * n];
        let mut y2 = vec![0.0; 2 * n];
        c.apply(&x, 1, &mut y1, 1);
        c.apply(&x, 1, &mut y2, 1);
        assert_eq!(y1, y2);
    }

    #[test]
    fn twiddle_bytes_accounted() {
        assert_eq!(Codelet::new(2).bytes(), 0);
        assert_eq!(Codelet::new(64).bytes(), 2 * 64 * 8);
    }

    #[test]
    #[should_panic(expected = "no codelet for size")]
    fn unsupported_size_panics() {
        Codelet::new(6);
    }
}
