//! The analytic cost model behind [`PlanMode::Estimate`].
//!
//! FFTW's estimate mode ranks plans without running them; ours charges
//! floating-point work plus penalties for strided access (which grows
//! with the left radix, punishing cache-hostile column passes) and for
//! recursion overhead. The constants are deliberately crude — the paper's
//! Figure 4 shows `FFTW estimate` losing to measured plans, and that gap
//! is exactly what a crude model reproduces.
//!
//! [`PlanMode::Estimate`]: crate::planner::PlanMode::Estimate

use crate::planner::PlanNode;

/// Modeled cost (arbitrary units, comparable across candidates of the
/// same size) of executing a plan node once.
pub fn node_cost(node: &PlanNode) -> f64 {
    match node {
        PlanNode::Leaf(c) => codelet_cost(c.n()),
        PlanNode::Split { r, s, child, .. } => {
            let n = (r * s) as f64;
            let child_cost = node_cost(child);
            // r recursions over the child + s column transforms of size
            // r + twiddle multiplies + strided-access penalty.
            (*r as f64) * child_cost
                + (*s as f64) * codelet_cost(*r)
                + 6.0 * n
                + stride_penalty(*r) * n
        }
    }
}

/// Modeled codelet cost: ~`5 n log2 n` flops with a small constant
/// overhead per invocation.
pub fn codelet_cost(n: usize) -> f64 {
    let nf = n as f64;
    5.0 * nf * nf.log2() + 8.0
}

/// Extra cost per point for gathering a column at stride `r`.
fn stride_penalty(r: usize) -> f64 {
    0.75 * (r as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::Codelet;
    use crate::planner::PlanMode;

    #[test]
    fn codelet_cost_grows() {
        assert!(codelet_cost(4) < codelet_cost(8));
        assert!(codelet_cost(32) < codelet_cost(64));
    }

    #[test]
    fn leaf_cheaper_than_needless_split_at_codelet_sizes() {
        // For n = 64 a direct codelet must beat a (2, 32) split.
        let leaf = PlanNode::Leaf(Codelet::new(64));
        let split = PlanNode::Split {
            r: 2,
            s: 32,
            codelet: Codelet::new(2),
            twiddles: vec![0.0; 128],
            child: std::rc::Rc::new(PlanNode::Leaf(Codelet::new(32))),
        };
        assert!(node_cost(&leaf) < node_cost(&split));
    }

    #[test]
    fn estimate_planner_picks_codelets_at_small_sizes() {
        for n in [16usize, 32, 64] {
            let plan = crate::planner::Plan::new(n, PlanMode::Estimate);
            assert_eq!(plan.describe(), n.to_string(), "n={n}");
        }
    }
}
