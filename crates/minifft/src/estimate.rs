//! The analytic cost model behind [`PlanMode::Estimate`], plus the
//! calibrated model the search tier fits from measured probes.
//!
//! FFTW's estimate mode ranks plans without running them; ours charges
//! floating-point work plus penalties for strided access (which grows
//! with the left radix, punishing cache-hostile column passes) and for
//! recursion overhead. The constants are deliberately crude — the paper's
//! Figure 4 shows `FFTW estimate` losing to measured plans, and that gap
//! is exactly what a crude model reproduces. All of them live in
//! [`CostCoefficients`] so calibration has a single place to override
//! them; the defaults reproduce the historical behaviour bit-for-bit.
//!
//! [`CalibratedModel`] is the other half: a linear model over features
//! that the resolved VM engine reports per compiled plan (dynamic op
//! counts plus the `vm.fuse.*` / `vm.lsr.*` / `vm.vec.*` counters),
//! fitted by least squares from a handful of measured probe plans. The
//! search tier uses it to rank DP candidates before compiling anything.
//!
//! [`PlanMode::Estimate`]: crate::planner::PlanMode::Estimate

use crate::planner::PlanNode;

/// The tunable constants of the analytic cost model, gathered in one
/// struct so tests and calibration never chase magic numbers through
/// the formulas. `CostCoefficients::default()` matches the historical
/// hard-coded values exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostCoefficients {
    /// Flops charged per `n log2 n` point of a codelet (default 5.0).
    pub flop: f64,
    /// Fixed overhead per codelet invocation (default 8.0).
    pub codelet_overhead: f64,
    /// Twiddle-multiply cost per point of a split (default 6.0).
    pub twiddle: f64,
    /// Strided-access penalty per point per `log2(radix)` (default 0.75).
    pub stride: f64,
}

impl Default for CostCoefficients {
    fn default() -> Self {
        CostCoefficients {
            flop: 5.0,
            codelet_overhead: 8.0,
            twiddle: 6.0,
            stride: 0.75,
        }
    }
}

/// Modeled cost (arbitrary units, comparable across candidates of the
/// same size) of executing a plan node once, under the default
/// coefficients.
pub fn node_cost(node: &PlanNode) -> f64 {
    node_cost_with(node, &CostCoefficients::default())
}

/// [`node_cost`] under explicit coefficients.
pub fn node_cost_with(node: &PlanNode, co: &CostCoefficients) -> f64 {
    match node {
        PlanNode::Leaf(c) => codelet_cost_with(c.n(), co),
        PlanNode::Split { r, s, child, .. } => {
            let n = (r * s) as f64;
            let child_cost = node_cost_with(child, co);
            // r recursions over the child + s column transforms of size
            // r + twiddle multiplies + strided-access penalty.
            (*r as f64) * child_cost
                + (*s as f64) * codelet_cost_with(*r, co)
                + co.twiddle * n
                + stride_penalty_with(*r, co) * n
        }
    }
}

/// Modeled codelet cost: ~`flop · n log2 n` with a small constant
/// overhead per invocation, under the default coefficients.
pub fn codelet_cost(n: usize) -> f64 {
    codelet_cost_with(n, &CostCoefficients::default())
}

/// [`codelet_cost`] under explicit coefficients.
pub fn codelet_cost_with(n: usize, co: &CostCoefficients) -> f64 {
    let nf = n as f64;
    co.flop * nf * nf.log2() + co.codelet_overhead
}

/// Extra cost per point for gathering a column at stride `r`.
fn stride_penalty_with(r: usize, co: &CostCoefficients) -> f64 {
    co.stride * (r as f64).log2()
}

/// Number of features (including the intercept) in [`PlanFeatures::vector`].
pub const NUM_FEATURES: usize = 6;

/// Per-plan features extracted from the compiled program: the dynamic
/// op count from icode plus the optimization counters the resolved VM
/// engine reports. The search tier fills these in; minifft only does
/// the arithmetic, so this crate stays dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanFeatures {
    /// Transform size the plan computes.
    pub n: f64,
    /// Dynamic scalar op count of the lowered program.
    pub dynamic_ops: f64,
    /// Fused ops: `vm.fuse.muladd + vm.fuse.negfold + vm.fuse.butterfly`.
    pub fused_ops: f64,
    /// Loop bookkeeping: `vm.lsr.cursors + vm.lsr.steps + vm.lsr.hoisted_terms`.
    pub loop_overhead: f64,
    /// Vector work: `vm.vec.ops` (lane-wide ops after vector lowering).
    pub vec_ops: f64,
}

impl PlanFeatures {
    /// The regression feature vector: an intercept, the raw counters,
    /// and an `n log2 n` term so the model can express the classic
    /// FFT work curve even when counters saturate.
    pub fn vector(&self) -> [f64; NUM_FEATURES] {
        let nlogn = if self.n > 1.0 {
            self.n * self.n.log2()
        } else {
            0.0
        };
        [
            1.0,
            self.dynamic_ops,
            self.fused_ops,
            self.loop_overhead,
            self.vec_ops,
            nlogn,
        ]
    }
}

/// Threshold on relative RMS training error above which a fitted model
/// is not trusted to prune candidates.
const CONFIDENCE_REL_RMS: f64 = 0.35;

/// A linear cost model `cost ≈ coeffs · features`, fitted by ridge-
/// regularized least squares from measured probe plans. Stored per
/// machine fingerprint in the wisdom DB and reused across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedModel {
    coeffs: [f64; NUM_FEATURES],
    rel_rms: f64,
}

impl CalibratedModel {
    /// Fit from `(features, measured cost)` samples. Returns `None`
    /// when there are too few samples to determine the coefficients or
    /// the normal equations are singular beyond what ridge damping
    /// rescues.
    pub fn fit(samples: &[(PlanFeatures, f64)]) -> Option<CalibratedModel> {
        if samples.len() < NUM_FEATURES + 2 {
            return None;
        }
        // The raw columns differ by orders of magnitude (an intercept of
        // 1 next to op counts in the tens of thousands) and measured
        // costs can be nanoseconds, so the raw normal equations are
        // catastrophically ill-conditioned. Normalize every column and
        // the response to unit scale, solve, then fold the scales back
        // into the coefficients.
        let mut col_scale = [0.0f64; NUM_FEATURES];
        let mut y_scale = 0.0f64;
        for (f, y) in samples {
            let v = f.vector();
            for (s, x) in col_scale.iter_mut().zip(v.iter()) {
                *s = s.max(x.abs());
            }
            y_scale = y_scale.max(y.abs());
        }
        for s in col_scale.iter_mut() {
            if *s == 0.0 {
                *s = 1.0;
            }
        }
        if y_scale == 0.0 {
            y_scale = 1.0;
        }
        // Normal equations A'A x = A'y with a small ridge term scaled
        // to the diagonal so collinear probe sets stay solvable.
        let mut ata = [[0.0f64; NUM_FEATURES]; NUM_FEATURES];
        let mut aty = [0.0f64; NUM_FEATURES];
        for (f, y) in samples {
            let v = f.vector();
            let ys = y / y_scale;
            for i in 0..NUM_FEATURES {
                let vi = v[i] / col_scale[i];
                aty[i] += vi * ys;
                for j in 0..NUM_FEATURES {
                    ata[i][j] += vi * v[j] / col_scale[j];
                }
            }
        }
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-8 * row[i].max(1.0);
        }
        let mut coeffs = solve(&mut ata, &mut aty)?;
        for (c, s) in coeffs.iter_mut().zip(col_scale.iter()) {
            *c *= y_scale / s;
        }
        let model = CalibratedModel {
            coeffs,
            rel_rms: 0.0,
        };
        // Relative RMS of the training residuals gauges confidence.
        let mut sq = 0.0;
        let mut used = 0usize;
        for (f, y) in samples {
            if *y <= 0.0 {
                continue;
            }
            let rel = (model.predict(f) - y) / y;
            sq += rel * rel;
            used += 1;
        }
        if used == 0 {
            return None;
        }
        let rel_rms = (sq / used as f64).sqrt();
        if !rel_rms.is_finite() {
            return None;
        }
        Some(CalibratedModel { coeffs, rel_rms })
    }

    /// Rebuild a model from stored coefficients (the wisdom-DB load path).
    pub fn from_parts(coeffs: [f64; NUM_FEATURES], rel_rms: f64) -> CalibratedModel {
        CalibratedModel { coeffs, rel_rms }
    }

    /// Predicted cost for a candidate plan.
    pub fn predict(&self, f: &PlanFeatures) -> f64 {
        let v = f.vector();
        self.coeffs.iter().zip(v.iter()).map(|(c, x)| c * x).sum()
    }

    /// Whether the fit is tight enough to trust for pruning.
    pub fn confident(&self) -> bool {
        self.rel_rms < CONFIDENCE_REL_RMS
    }

    /// The fitted coefficients (for persistence).
    pub fn coeffs(&self) -> &[f64; NUM_FEATURES] {
        &self.coeffs
    }

    /// Relative RMS training error (for persistence and reporting).
    pub fn rel_rms(&self) -> f64 {
        self.rel_rms
    }
}

/// Solve the `NUM_FEATURES × NUM_FEATURES` system in place by Gaussian
/// elimination with partial pivoting.
fn solve(
    a: &mut [[f64; NUM_FEATURES]; NUM_FEATURES],
    b: &mut [f64; NUM_FEATURES],
) -> Option<[f64; NUM_FEATURES]> {
    let n = NUM_FEATURES;
    for col in 0..n {
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let (head, tail) = a.split_at_mut(row);
            let pivot_row = &head[col];
            let cur = &mut tail[0];
            let factor = cur[col] / pivot_row[col];
            for (dst, src) in cur[col..].iter_mut().zip(&pivot_row[col..]) {
                *dst -= factor * src;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; NUM_FEATURES];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
        if !x[col].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codelet::Codelet;
    use crate::planner::PlanMode;

    #[test]
    fn codelet_cost_grows() {
        assert!(codelet_cost(4) < codelet_cost(8));
        assert!(codelet_cost(32) < codelet_cost(64));
    }

    #[test]
    fn default_coefficients_match_historical_constants() {
        let co = CostCoefficients::default();
        assert_eq!(co.flop, 5.0);
        assert_eq!(co.codelet_overhead, 8.0);
        assert_eq!(co.twiddle, 6.0);
        assert_eq!(co.stride, 0.75);
        // The formulas under default coefficients reproduce the old
        // hand-expanded expressions.
        for n in [2usize, 4, 8, 64] {
            let nf = n as f64;
            assert_eq!(codelet_cost(n), 5.0 * nf * nf.log2() + 8.0);
            assert_eq!(codelet_cost(n), codelet_cost_with(n, &co));
        }
    }

    #[test]
    fn leaf_cheaper_than_needless_split_at_codelet_sizes() {
        // For n = 64 a direct codelet must beat a (2, 32) split.
        let leaf = PlanNode::Leaf(Codelet::new(64));
        let split = PlanNode::Split {
            r: 2,
            s: 32,
            codelet: Codelet::new(2),
            twiddles: vec![0.0; 128],
            child: std::rc::Rc::new(PlanNode::Leaf(Codelet::new(32))),
        };
        assert!(node_cost(&leaf) < node_cost(&split));
        // Doubling the stride penalty must not change the leaf's cost
        // but must make the split strictly worse.
        let heavy = CostCoefficients {
            stride: 1.5,
            ..CostCoefficients::default()
        };
        assert_eq!(node_cost_with(&leaf, &heavy), node_cost(&leaf));
        assert!(node_cost_with(&split, &heavy) > node_cost(&split));
    }

    #[test]
    fn estimate_planner_picks_codelets_at_small_sizes() {
        for n in [16usize, 32, 64] {
            let plan = crate::planner::Plan::new(n, PlanMode::Estimate);
            assert_eq!(plan.describe(), n.to_string(), "n={n}");
        }
    }

    fn synth_features(i: usize) -> PlanFeatures {
        let n = (1usize << (4 + i % 6)) as f64;
        PlanFeatures {
            n,
            dynamic_ops: 5.2 * n * n.log2() + (i as f64) * 3.0,
            fused_ops: 0.4 * n + (i % 3) as f64,
            loop_overhead: 1.5 * n.log2() * ((i % 4) + 1) as f64,
            vec_ops: if i.is_multiple_of(2) { 0.25 * n } else { 0.0 },
        }
    }

    #[test]
    fn calibrated_model_recovers_linear_ground_truth() {
        let truth = [3.0, 0.8, -1.2, 2.5, 0.5, 1.1];
        let samples: Vec<(PlanFeatures, f64)> = (0..24)
            .map(|i| {
                let f = synth_features(i);
                let v = f.vector();
                let y: f64 = v.iter().zip(&truth).map(|(a, b)| a * b).sum();
                (f, y)
            })
            .collect();
        let model = CalibratedModel::fit(&samples).expect("fit");
        assert!(model.confident(), "rel_rms={}", model.rel_rms());
        // Ridge damping plus near-collinear features costs a little
        // exactness; within half a percent is plenty for pruning.
        for (f, y) in &samples {
            let p = model.predict(f);
            assert!((p - y).abs() <= 5e-3 * y.abs().max(1.0), "{p} vs {y}");
        }
    }

    #[test]
    fn calibrated_model_fits_wall_clock_scale_costs() {
        // Native costs are seconds — around 1e-7..1e-3 against feature
        // columns in the thousands. The raw normal equations are
        // hopeless at that scale; the normalized solve must still
        // recover a tight fit (this is a regression test: the unscaled
        // solver returned training residuals ~100x the response).
        let samples: Vec<(PlanFeatures, f64)> = (0..24)
            .map(|i| {
                let f = synth_features(i);
                let v = f.vector();
                let truth = [2e-8, 3.1e-10, -4e-10, 9e-10, 2e-10, 5.5e-10];
                let y: f64 = v.iter().zip(&truth).map(|(a, b)| a * b).sum();
                // 2% multiplicative noise, deterministic.
                let y = y * (1.0 + 0.02 * (((i * 37) % 7) as f64 - 3.0) / 3.0);
                (f, y)
            })
            .collect();
        let model = CalibratedModel::fit(&samples).expect("fit");
        assert!(model.confident(), "rel_rms={}", model.rel_rms());
        assert!(model.rel_rms() < 0.05, "rel_rms={}", model.rel_rms());
    }

    #[test]
    fn calibrated_model_rejects_tiny_sample_sets() {
        let samples: Vec<(PlanFeatures, f64)> = (0..NUM_FEATURES + 1)
            .map(|i| (synth_features(i), 100.0 + i as f64))
            .collect();
        assert!(CalibratedModel::fit(&samples).is_none());
    }

    #[test]
    fn calibrated_model_flags_noisy_fits_as_unconfident() {
        // Costs that ignore the features entirely and swing wildly
        // leave a large relative residual — the model must say so.
        let samples: Vec<(PlanFeatures, f64)> = (0..24)
            .map(|i| {
                let f = synth_features(i);
                let y = if i % 2 == 0 { 1.0 } else { 1000.0 };
                (f, y)
            })
            .collect();
        let model = CalibratedModel::fit(&samples).expect("fit");
        assert!(!model.confident(), "rel_rms={}", model.rel_rms());
    }

    #[test]
    fn calibrated_model_round_trips_through_parts() {
        let truth = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let model = CalibratedModel::from_parts(truth, 0.1);
        assert_eq!(model.coeffs(), &truth);
        assert_eq!(model.rel_rms(), 0.1);
        assert!(model.confident());
        let f = synth_features(3);
        let v = f.vector();
        let want: f64 = v.iter().zip(&truth).map(|(a, b)| a * b).sum();
        assert!((model.predict(&f) - want).abs() < 1e-12);
    }
}
