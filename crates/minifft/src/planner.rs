//! The planner and executor.
//!
//! Like FFTW's planner, [`Plan::new`] searches recursively for a good
//! factorization of `F_n`: a codelet leaf for `n ≤ 64`, otherwise a
//! Cooley–Tukey split `n = r·s` with a codelet for `r` and a recursive
//! plan for `s` (right-most decomposition, exactly the restriction the
//! paper describes for both FFTW and its own large-size search). Plans
//! are chosen per size by dynamic programming, either **measuring**
//! candidate run times or **estimating** them with the cost model in
//! [`crate::estimate`]. The executor interprets the plan.

use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

use spl_numeric::twiddle::omega;

use crate::codelet::{Codelet, CODELET_SIZES};
use crate::estimate;

/// How the planner scores candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Time each candidate on scratch data (FFTW's default; needs more
    /// memory and planning time).
    Measure,
    /// Use the analytic cost model (FFTW's `ESTIMATE` flag).
    Estimate,
}

/// A node of a plan.
#[derive(Debug)]
pub enum PlanNode {
    /// Direct codelet leaf.
    Leaf(Codelet),
    /// `F_{r·s} = (F_r ⊗ I_s) T^{rs}_s (I_r ⊗ F_s) L^{rs}_r`: `r` runs a
    /// codelet over strided columns (twiddles folded in), `s` recurses.
    Split {
        /// The left (codelet) factor.
        r: usize,
        /// The right (recursive) factor.
        s: usize,
        /// Codelet computing the `F_r` columns.
        codelet: Codelet,
        /// Interleaved twiddles `W(rs, k·j)` indexed by `k·s + j`.
        twiddles: Vec<f64>,
        /// Plan for `F_s`.
        child: Rc<PlanNode>,
    },
}

impl PlanNode {
    /// The transform size of this node.
    pub fn n(&self) -> usize {
        match self {
            PlanNode::Leaf(c) => c.n(),
            PlanNode::Split { r, s, .. } => r * s,
        }
    }

    /// Bytes held by this node and its children (twiddles + codelets);
    /// shared children are counted once by [`Plan::plan_bytes`].
    fn own_bytes(&self) -> usize {
        match self {
            PlanNode::Leaf(c) => c.bytes(),
            PlanNode::Split {
                codelet, twiddles, ..
            } => codelet.bytes() + twiddles.len() * std::mem::size_of::<f64>(),
        }
    }

    /// A plan description like `(8 64)` (codelet radices outermost
    /// first), matching FFTW's notation loosely.
    pub fn describe(&self) -> String {
        match self {
            PlanNode::Leaf(c) => format!("{}", c.n()),
            PlanNode::Split { r, child, .. } => {
                format!("({} {})", r, child.describe())
            }
        }
    }

    /// Executes `y = F_n(x)` with the given strides (complex elements).
    fn execute(&self, x: &[f64], is: usize, y: &mut [f64], os: usize) {
        match self {
            PlanNode::Leaf(c) => c.apply(x, is, y, os),
            PlanNode::Split {
                r,
                s,
                codelet,
                twiddles,
                child,
            } => {
                let (r, s) = (*r, *s);
                // (I_r ⊗ F_s) L^{rs}_r: block k of y gets F_s of the
                // stride-r subsequence starting at k.
                for k in 0..r {
                    child.execute(&x[2 * k * is..], is * r, &mut y[2 * k * s * os..], os);
                }
                // T^{rs}_s then F_r over the strided columns, gathered
                // into local buffers (codelets must not alias).
                let mut buf = [0.0f64; 128];
                let mut out = [0.0f64; 128];
                for j in 0..s {
                    for k in 0..r {
                        let idx = 2 * (k * s + j) * os;
                        let (re, im) = (y[idx], y[idx + 1]);
                        let (wr, wi) = (twiddles[2 * (k * s + j)], twiddles[2 * (k * s + j) + 1]);
                        buf[2 * k] = re * wr - im * wi;
                        buf[2 * k + 1] = re * wi + im * wr;
                    }
                    codelet.apply(&buf[..2 * r], 1, &mut out[..2 * r], 1);
                    for k in 0..r {
                        let idx = 2 * (k * s + j) * os;
                        y[idx] = out[2 * k];
                        y[idx + 1] = out[2 * k + 1];
                    }
                }
            }
        }
    }
}

/// A complete plan for an n-point transform.
#[derive(Debug)]
pub struct Plan {
    root: Rc<PlanNode>,
    n: usize,
    mode: PlanMode,
    planning_peak_bytes: usize,
}

impl Plan {
    /// Plans an n-point transform.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    pub fn new(n: usize, mode: PlanMode) -> Plan {
        assert!(
            n.is_power_of_two() && n >= 2,
            "minifft plans power-of-two sizes >= 2"
        );
        let mut planner = Planner {
            mode,
            memo: HashMap::new(),
            scratch_bytes: 0,
        };
        let root = planner.plan(n);
        let planning_peak_bytes = planner.scratch_bytes;
        Plan {
            root,
            n,
            mode,
            planning_peak_bytes,
        }
    }

    /// The transform size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The planning mode used.
    pub fn mode(&self) -> PlanMode {
        self.mode
    }

    /// The plan shape, e.g. `(8 (64 64))`.
    pub fn describe(&self) -> String {
        self.root.describe()
    }

    /// Executes `y = F_n(x)` on interleaved-real data.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is shorter than `2n`.
    pub fn execute(&self, x: &[f64], y: &mut [f64]) {
        assert!(x.len() >= 2 * self.n && y.len() >= 2 * self.n);
        self.root.execute(x, 1, y, 1);
    }

    /// Executes the inverse transform via conjugation:
    /// `IDFT(x) = conj(DFT(conj(x))) / n`.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is shorter than `2n`.
    pub fn execute_inverse(&self, x: &[f64], y: &mut [f64]) {
        assert!(x.len() >= 2 * self.n && y.len() >= 2 * self.n);
        let mut conj: Vec<f64> = x.to_vec();
        for k in 0..self.n {
            conj[2 * k + 1] = -conj[2 * k + 1];
        }
        self.root.execute(&conj, 1, y, 1);
        let scale = 1.0 / self.n as f64;
        for k in 0..self.n {
            y[2 * k] *= scale;
            y[2 * k + 1] = -y[2 * k + 1] * scale;
        }
    }

    /// Bytes held by the plan itself (nodes, twiddles, codelets), with
    /// shared sub-plans counted once.
    pub fn plan_bytes(&self) -> usize {
        let mut seen: Vec<*const PlanNode> = Vec::new();
        fn walk(node: &Rc<PlanNode>, seen: &mut Vec<*const PlanNode>) -> usize {
            let ptr = Rc::as_ptr(node);
            if seen.contains(&ptr) {
                return 0;
            }
            seen.push(ptr);
            let mut b = node.own_bytes() + std::mem::size_of::<PlanNode>();
            if let PlanNode::Split { child, .. } = &**node {
                b += walk(child, seen);
            }
            b
        }
        walk(&self.root, &mut seen)
    }

    /// Peak scratch bytes the planner used (zero in estimate mode; the
    /// measured planner allocates candidate buffers — the memory gap
    /// Figure 5 shows between `FFTW` and `FFTW estimate`).
    pub fn planning_peak_bytes(&self) -> usize {
        self.planning_peak_bytes
    }
}

struct Planner {
    mode: PlanMode,
    memo: HashMap<usize, Rc<PlanNode>>,
    scratch_bytes: usize,
}

impl Planner {
    fn plan(&mut self, n: usize) -> Rc<PlanNode> {
        if let Some(p) = self.memo.get(&n) {
            return Rc::clone(p);
        }
        let mut candidates: Vec<Rc<PlanNode>> = Vec::new();
        if CODELET_SIZES.contains(&n) {
            candidates.push(Rc::new(PlanNode::Leaf(Codelet::new(n))));
        }
        if n > 2 {
            for &r in &CODELET_SIZES {
                if r >= n || !n.is_multiple_of(r) {
                    continue;
                }
                let s = n / r;
                // s must itself be plannable: a power of two, at least 2.
                if s < 2 || !s.is_power_of_two() {
                    continue;
                }
                let child = self.plan(s);
                let mut twiddles = Vec::with_capacity(2 * n);
                for k in 0..r {
                    for j in 0..s {
                        let w = omega(n, (k * j) as i64);
                        twiddles.push(w.re);
                        twiddles.push(w.im);
                    }
                }
                candidates.push(Rc::new(PlanNode::Split {
                    r,
                    s,
                    codelet: Codelet::new(r),
                    twiddles,
                    child,
                }));
            }
        }
        assert!(!candidates.is_empty(), "no plan candidates for {n}");
        let best = match self.mode {
            PlanMode::Estimate => candidates
                .into_iter()
                .min_by(|a, b| estimate::node_cost(a).total_cmp(&estimate::node_cost(b)))
                .unwrap(),
            PlanMode::Measure => {
                // Scratch buffers for timing (the planner's memory cost).
                let mut x = vec![0.0f64; 2 * n];
                let mut y = vec![0.0f64; 2 * n];
                self.scratch_bytes = self
                    .scratch_bytes
                    .max((x.len() + y.len()) * std::mem::size_of::<f64>());
                for (k, v) in x.iter_mut().enumerate() {
                    *v = ((k as f64) * 0.613).sin();
                }
                let mut best: Option<(f64, Rc<PlanNode>)> = None;
                for cand in candidates {
                    let t = Self::time_node(&cand, &x, &mut y);
                    if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                        best = Some((t, cand));
                    }
                }
                best.unwrap().1
            }
        };
        self.memo.insert(n, Rc::clone(&best));
        best
    }

    /// Seconds per execution, with just enough repetitions to be stable.
    fn time_node(node: &Rc<PlanNode>, x: &[f64], y: &mut [f64]) -> f64 {
        let n = node.n();
        // Aim for ~2 ms of measurement per candidate, as FFTW does
        // (coarsely).
        let start = Instant::now();
        node.execute(x, 1, y, 1);
        let once = start.elapsed().as_secs_f64().max(1e-7);
        let reps = ((0.002 / once) as u64).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..reps {
            node.execute(x, 1, y, 1);
        }
        let _ = n;
        start.elapsed().as_secs_f64() / reps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_numeric::{reference, Complex};

    fn pack(x: &[Complex]) -> Vec<f64> {
        x.iter().flat_map(|c| [c.re, c.im]).collect()
    }

    fn unpack(x: &[f64]) -> Vec<Complex> {
        x.chunks(2).map(|p| Complex::new(p[0], p[1])).collect()
    }

    fn workload(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new((i as f64 * 0.11).cos(), (i as f64 * 0.77).sin()))
            .collect()
    }

    #[test]
    fn estimate_plans_match_reference() {
        for n in [2usize, 4, 8, 16, 64, 128, 256, 1024] {
            let plan = Plan::new(n, PlanMode::Estimate);
            let x = workload(n);
            let mut y = vec![0.0; 2 * n];
            plan.execute(&pack(&x), &mut y);
            let got = unpack(&y);
            let want = reference::dft(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-8 * n as f64), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn measured_plans_match_reference() {
        for n in [128usize, 512] {
            let plan = Plan::new(n, PlanMode::Measure);
            let x = workload(n);
            let mut y = vec![0.0; 2 * n];
            plan.execute(&pack(&x), &mut y);
            let got = unpack(&y);
            let want = reference::dft(&x);
            for (a, b) in got.iter().zip(&want) {
                assert!(a.approx_eq(*b, 1e-8 * n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        let n = 256;
        let plan = Plan::new(n, PlanMode::Estimate);
        let x = pack(&workload(n));
        let mut y = vec![0.0; 2 * n];
        let mut back = vec![0.0; 2 * n];
        plan.execute(&x, &mut y);
        plan.execute_inverse(&y, &mut back);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn plan_memory_accounting() {
        let est = Plan::new(4096, PlanMode::Estimate);
        assert!(est.plan_bytes() > 0);
        assert_eq!(est.planning_peak_bytes(), 0);
        let meas = Plan::new(256, PlanMode::Measure);
        assert!(meas.planning_peak_bytes() >= 2 * 2 * 256 * 8);
    }

    #[test]
    fn describe_shows_radices() {
        let plan = Plan::new(128, PlanMode::Estimate);
        let d = plan.describe();
        assert!(d.starts_with('('), "{d}");
        assert!(d.contains(' '), "{d}");
    }

    #[test]
    fn large_power_of_two() {
        let n = 1 << 14;
        let plan = Plan::new(n, PlanMode::Estimate);
        // Constant input -> impulse output.
        let x = vec![1.0; 2 * n]; // (1+1i) constant
        let mut y = vec![0.0; 2 * n];
        plan.execute(&x, &mut y);
        assert!((y[0] - n as f64).abs() < 1e-6);
        assert!((y[1] - n as f64).abs() < 1e-6);
        let tail_energy: f64 = y[2..].iter().map(|v| v * v).sum();
        assert!(tail_energy < 1e-12 * (n as f64) * (n as f64));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        Plan::new(12, PlanMode::Estimate);
    }
}
