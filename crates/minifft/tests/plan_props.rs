//! Property-style tests of the FFTW-like baseline: any planned
//! power-of-two size computes the DFT, both planner modes agree, and the
//! inverse round-trips. Cases are enumerated deterministically over
//! (size, seed) grids instead of sampled, so every run is identical.

use spl_minifft::{Plan, PlanMode};
use spl_numeric::{reference, relative_rms_error, Complex};

fn workload(n: usize, seed: u64) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = (seed as f64) * 0.61 + i as f64;
            Complex::new((t * 0.37).sin(), (t * 0.91).cos())
        })
        .collect()
}

fn execute(plan: &Plan, x: &[Complex]) -> Vec<Complex> {
    let flat: Vec<f64> = x.iter().flat_map(|z| [z.re, z.im]).collect();
    let mut y = vec![0.0; 2 * x.len()];
    plan.execute(&flat, &mut y);
    y.chunks(2).map(|p| Complex::new(p[0], p[1])).collect()
}

#[test]
fn estimate_plans_compute_the_dft() {
    for k in 1u32..10 {
        for seed in [0u64, 17, 43] {
            let n = 1usize << k;
            let plan = Plan::new(n, PlanMode::Estimate);
            let x = workload(n, seed);
            let got = execute(&plan, &x);
            let want = reference::dft(&x);
            assert!(
                relative_rms_error(&got, &want) < 1e-12 * (n as f64),
                "n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn both_modes_agree() {
    for k in 6u32..12 {
        let n = 1usize << k;
        let x = workload(n, 7);
        let a = execute(&Plan::new(n, PlanMode::Estimate), &x);
        let b = execute(&Plan::new(n, PlanMode::Measure), &x);
        assert!(relative_rms_error(&a, &b) < 1e-11, "n={n}");
    }
}

#[test]
fn inverse_round_trips() {
    for k in 1u32..13 {
        for seed in [0u64, 29] {
            let n = 1usize << k;
            let plan = Plan::new(n, PlanMode::Estimate);
            let x = workload(n, seed);
            let flat: Vec<f64> = x.iter().flat_map(|z| [z.re, z.im]).collect();
            let mut y = vec![0.0; 2 * n];
            let mut back = vec![0.0; 2 * n];
            plan.execute(&flat, &mut y);
            plan.execute_inverse(&y, &mut back);
            let b: Vec<Complex> = back.chunks(2).map(|p| Complex::new(p[0], p[1])).collect();
            assert!(relative_rms_error(&b, &x) < 1e-11, "n={n} seed={seed}");
        }
    }
}

#[test]
fn linearity() {
    // DFT(a·x + y) = a·DFT(x) + DFT(y)
    for k in 2u32..8 {
        for seed in [3u64, 11, 31] {
            let n = 1usize << k;
            let plan = Plan::new(n, PlanMode::Estimate);
            let x = workload(n, seed);
            let y = workload(n, seed + 1000);
            let a = Complex::new(0.7, -0.3);
            let combined: Vec<Complex> = x.iter().zip(&y).map(|(&xv, &yv)| xv * a + yv).collect();
            let lhs = execute(&plan, &combined);
            let fx = execute(&plan, &x);
            let fy = execute(&plan, &y);
            let rhs: Vec<Complex> = fx.iter().zip(&fy).map(|(&u, &v)| u * a + v).collect();
            assert!(relative_rms_error(&lhs, &rhs) < 1e-11, "n={n} seed={seed}");
        }
    }
}
