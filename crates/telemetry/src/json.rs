//! A minimal JSON value type with a serializer and parser.
//!
//! Run reports must serialize to JSON without pulling in serde (this crate
//! is dependency-free by design), and the test suite must be able to read
//! reports back. This module provides exactly that: a small [`Json`] enum,
//! `Display`-based serialization, and a recursive-descent [`parse`].
//!
//! Numbers are `f64` throughout (every value the telemetry layer records —
//! nanoseconds, counters, costs — fits without loss at the magnitudes
//! involved).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_num(*n, out),
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&inner);
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str(&inner);
                escape_into(k, out);
                out.push_str(": ");
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(self, 0, &mut s);
        f.write_str(&s)
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{s}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // serializer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("splc".into())),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(0.125)),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Str("two".into())]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_special_characters() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("π ≈ 3.14159 — naïve".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(1234.0).to_string(), "1234");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
    }

    #[test]
    fn accessors_navigate() {
        let v = parse(r#"{"a": {"b": [1, 2, 3]}, "s": "x"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        let arr = v
            .get("a")
            .and_then(|a| a.get("b"))
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64(), Some(2.0));
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn nonfinite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn escaped_strings_round_trip_in_keys_and_values() {
        // Escapes in *keys* exercise a different parser path than values.
        let v = Json::Obj(vec![
            ("tab\there".to_string(), Json::Str("line\none".into())),
            ("quote\"key".to_string(), Json::Str("back\\slash".into())),
            ("ctrl\u{2}".to_string(), Json::Str("cr\rlf\n".into())),
            ("naïve π".to_string(), Json::Str("emoji ☃".into())),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
        // The writer escaped every control character (raw text is pure
        // printable ASCII apart from the multi-byte UTF-8 sequences).
        assert!(!text.contains('\t') || text.contains("\\t"));
        assert!(text.contains("\\n") && text.contains("\\\"") && text.contains("\\\\"));
        assert!(text.contains("\\u0002"));
    }

    #[test]
    fn parses_standard_escape_sequences() {
        let v = parse(r#""aA\t\r\n\f\b\/\\\"z""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\t\r\n\u{c}\u{8}/\\\"z"));
    }

    #[test]
    fn deeply_nested_objects_round_trip() {
        let v = Json::obj(vec![(
            "report",
            Json::obj(vec![
                (
                    "sections",
                    Json::Arr(vec![
                        Json::obj(vec![
                            ("name", Json::Str("unit:\"fft\"".into())),
                            ("counters", Json::obj(vec![("a.b", Json::Num(3.0))])),
                            ("empty_obj", Json::Obj(vec![])),
                            ("empty_arr", Json::Arr(vec![])),
                        ]),
                        Json::Null,
                    ]),
                ),
                (
                    "nested",
                    Json::obj(vec![(
                        "deeper",
                        Json::obj(vec![("deepest", Json::Arr(vec![Json::Bool(false)]))]),
                    )]),
                ),
            ]),
        )]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // And the re-rendering is stable (fixed point after one trip).
        assert_eq!(back.to_string(), text);
    }
}
