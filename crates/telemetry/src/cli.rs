//! Shared command-line plumbing for telemetry-emitting tools.
//!
//! Every binary in the workspace exposes the same three reporting flags
//! (`--stats`, `--trace-json <file>`, `--trace-chrome <file>`); this
//! module owns their parsing, the human-readable `--stats` table, and
//! the end-of-run artifact writing, so the tools don't each reimplement
//! them.
//!
//! ```
//! use spl_telemetry::cli::ReportOptions;
//! use spl_telemetry::{RunReport, Telemetry};
//!
//! let args = vec!["--stats".to_string(), "--verbose".to_string()];
//! let mut opts = ReportOptions::default();
//! let mut it = args.iter();
//! while let Some(a) = it.next() {
//!     if opts.accept(a, &mut it).unwrap() {
//!         continue; // consumed by the reporting layer
//!     }
//!     // ... tool-specific flags ("--verbose" here) ...
//! }
//! let mut report = RunReport::new("demo");
//! report.push_section("run", Telemetry::new());
//! opts.finish(&report).unwrap();
//! ```

use std::io::Write as _;
use std::path::Path;

use crate::{RunReport, Telemetry};

/// Writes formatted text to stdout, treating a broken pipe as a quiet,
/// successful exit. Tools whose stdout feeds a pipeline
/// (`splprof ... | head`) must not panic when the reader goes away —
/// the classic `println!` does exactly that. Any other write error is
/// reported on stderr and exits nonzero.
///
/// Call as `emit(format_args!(...))`; [`emitln`] appends a newline.
pub fn emit(args: std::fmt::Arguments<'_>) {
    write_stdout(args, false);
}

/// [`emit`] plus a trailing newline — the broken-pipe-safe `println!`.
pub fn emitln(args: std::fmt::Arguments<'_>) {
    write_stdout(args, true);
}

/// The broken-pipe-safe `print!`: forwards to [`cli::emit`](emit).
#[macro_export]
macro_rules! out {
    ($($arg:tt)*) => { $crate::cli::emit(format_args!($($arg)*)) };
}

/// The broken-pipe-safe `println!`: forwards to
/// [`cli::emitln`](emitln).
#[macro_export]
macro_rules! outln {
    () => { $crate::cli::emitln(format_args!("")) };
    ($($arg:tt)*) => { $crate::cli::emitln(format_args!($($arg)*)) };
}

fn write_stdout(args: std::fmt::Arguments<'_>, newline: bool) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let res = out.write_fmt(args).and_then(|()| {
        if newline {
            out.write_all(b"\n")
        } else {
            Ok(())
        }
    });
    if let Err(e) = res {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            // The reader (e.g. `head`) closed the pipe: a normal end of
            // output, not an error.
            std::process::exit(0);
        }
        eprintln!("error: writing stdout: {e}");
        std::process::exit(1);
    }
}

/// Usage text for the shared flags, for splicing into a tool's `--help`.
pub const USAGE: &str = "  --stats        print per-phase times and per-pass counters to stderr
  --trace-json <file>
                 write the telemetry run report to <file> as JSON
  --trace-chrome <file>
                 write a Chrome trace-event JSON file to <file>
                 (load it in ui.perfetto.dev or chrome://tracing)
";

/// The three shared reporting flags of one tool invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportOptions {
    /// `--stats`: print the merged telemetry table to stderr.
    pub stats: bool,
    /// `--trace-json <file>`: write the full run report as JSON.
    pub trace_json: Option<String>,
    /// `--trace-chrome <file>`: write a Chrome trace-event file.
    pub trace_chrome: Option<String>,
}

impl ReportOptions {
    /// Offers one argument to the reporting layer inside a tool's own
    /// parse loop. Returns `Ok(true)` when the argument (and possibly
    /// its value, taken from `it`) was consumed.
    ///
    /// # Errors
    ///
    /// A flag that requires a value but is last on the line yields a
    /// ready-to-print message.
    pub fn accept<'a, I>(&mut self, arg: &str, it: &mut I) -> Result<bool, String>
    where
        I: Iterator<Item = &'a String>,
    {
        match arg {
            "--stats" => {
                self.stats = true;
                Ok(true)
            }
            "--trace-json" => match it.next() {
                Some(path) => {
                    self.trace_json = Some(path.clone());
                    Ok(true)
                }
                None => Err("--trace-json requires a file path".to_string()),
            },
            "--trace-chrome" => match it.next() {
                Some(path) => {
                    self.trace_chrome = Some(path.clone());
                    Ok(true)
                }
                None => Err("--trace-chrome requires a file path".to_string()),
            },
            _ => Ok(false),
        }
    }

    /// Scans an argument slice for the shared flags, ignoring everything
    /// else (for tools whose other options are parsed positionally).
    ///
    /// # Errors
    ///
    /// Same as [`accept`](ReportOptions::accept).
    pub fn from_args(args: &[String]) -> Result<ReportOptions, String> {
        let mut opts = ReportOptions::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            opts.accept(a, &mut it)?;
        }
        Ok(opts)
    }

    /// [`from_args`](ReportOptions::from_args) over the process
    /// arguments.
    ///
    /// # Errors
    ///
    /// Same as [`accept`](ReportOptions::accept).
    pub fn from_env() -> Result<ReportOptions, String> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::from_args(&args)
    }

    /// Emits everything the flags asked for: the `--stats` table on
    /// stderr and the JSON / Chrome-trace artifacts.
    ///
    /// # Errors
    ///
    /// A ready-to-print message on I/O failure.
    pub fn finish(&self, report: &RunReport) -> Result<(), String> {
        if self.stats {
            eprint!("{}", render_stats(&report.merged()));
        }
        if let Some(path) = &self.trace_json {
            report
                .write_to_file(Path::new(path))
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        if let Some(path) = &self.trace_chrome {
            report
                .write_chrome_trace(Path::new(path))
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
        Ok(())
    }
}

/// The human-readable `--stats` table: phase timings, pass counters,
/// metrics, and notes, in recording order.
///
/// Counter lines are `  <name padded to 36> <value right-aligned>` with
/// nothing after the value — scripts extract values with e.g.
/// `sed -n 's/^ *native.cc_invocations *\([0-9]*\)$/\1/p'`.
pub fn render_stats(tel: &Telemetry) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if !tel.spans().is_empty() {
        let _ = writeln!(out, "phase timings:");
        for s in tel.spans() {
            let _ = writeln!(
                out,
                "  {:<36} {:>12.1} us  ({} call{})",
                s.name,
                s.wall_ns as f64 / 1e3,
                s.calls,
                if s.calls == 1 { "" } else { "s" }
            );
        }
    }
    if !tel.counters().is_empty() {
        let _ = writeln!(out, "pass counters:");
        for c in tel.counters() {
            let _ = writeln!(out, "  {:<36} {:>12}", c.name, c.value);
        }
    }
    if !tel.metrics().is_empty() {
        let _ = writeln!(out, "metrics:");
        for (name, value) in tel.metrics() {
            let _ = writeln!(out, "  {name:<36} {value:>12.6}");
        }
    }
    if !tel.notes().is_empty() {
        let _ = writeln!(out, "notes:");
        for (key, value) in tel.notes() {
            let _ = writeln!(out, "  {key:<36} {value}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn accept_consumes_shared_flags_only() {
        let args = strs(&["--stats", "--trace-json", "t.json", "--jobs", "4"]);
        let mut opts = ReportOptions::default();
        let mut rest = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if opts.accept(a, &mut it).unwrap() {
                continue;
            }
            rest.push(a.clone());
        }
        assert!(opts.stats);
        assert_eq!(opts.trace_json.as_deref(), Some("t.json"));
        assert_eq!(opts.trace_chrome, None);
        assert_eq!(rest, strs(&["--jobs", "4"]));
    }

    #[test]
    fn missing_value_is_an_error() {
        let args = strs(&["--trace-chrome"]);
        assert!(ReportOptions::from_args(&args).is_err());
        let args = strs(&["--trace-json"]);
        assert!(ReportOptions::from_args(&args).is_err());
    }

    #[test]
    fn from_args_scans_past_unknown_options() {
        let args = strs(&["--quick", "--out", "x.json", "--trace-chrome", "c.json"]);
        let opts = ReportOptions::from_args(&args).unwrap();
        assert!(!opts.stats);
        assert_eq!(opts.trace_chrome.as_deref(), Some("c.json"));
    }

    #[test]
    fn stats_table_keeps_script_friendly_counter_lines() {
        let mut tel = Telemetry::new();
        tel.record_span("compile", std::time::Duration::from_micros(12));
        tel.add("native.cc_invocations", 4);
        tel.set_metric("median", 2.5);
        tel.note("wisdom", "out.txt");
        let table = render_stats(&tel);
        // The counter line ends in its value, nothing after.
        let line = table
            .lines()
            .find(|l| l.contains("native.cc_invocations"))
            .unwrap();
        assert!(line.trim_end().ends_with('4'));
        assert!(line.starts_with("  native.cc_invocations"));
        assert!(table.contains("phase timings:"));
        assert!(table.contains("pass counters:"));
        assert!(table.contains("metrics:"));
        assert!(table.contains("notes:"));
    }
}
