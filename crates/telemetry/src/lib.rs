#![warn(missing_docs)]

//! Dependency-free observability substrate for the SPL toolchain.
//!
//! The paper's entire evaluation is about *where time goes*: per-phase
//! compile cost (Figure 2), search time versus run time (Section 4.2),
//! instruction counts before and after each optimization. This crate
//! provides the recording layer the rest of the workspace reports
//! through:
//!
//! * [`Span`] — a named wall-clock timing, accumulated per name;
//! * counters — named monotonic tallies (instructions removed, CSE hits,
//!   plans evaluated, …);
//! * metrics — named `f64` gauges (best cost per size, seconds per call);
//! * [`Telemetry`] — an ordered collection of all three plus free-form
//!   notes;
//! * [`RunReport`] — one tool invocation's telemetry, sectioned (per
//!   compiled unit, per search size, …), serializable to JSON via the
//!   std-only [`json`] module.
//!
//! Everything is plain data: no globals, no threads, no I/O except the
//! explicit [`RunReport::write_to_file`].
//!
//! # Examples
//!
//! ```
//! use spl_telemetry::{RunReport, Telemetry};
//!
//! let mut tel = Telemetry::new();
//! let answer = tel.time("optimize", || 6 * 7);
//! assert_eq!(answer, 42);
//! tel.add("optimize.cse_hits", 3);
//! tel.set_metric("best_cost", 1.5e-6);
//!
//! let mut report = RunReport::new("example");
//! report.push_section("unit:fft4", tel);
//! let text = report.to_json_string();
//! assert!(text.contains("optimize.cse_hits"));
//! ```

pub mod cli;
pub mod json;

use std::time::{Duration, Instant};

use json::Json;

/// One named wall-clock span, accumulated over possibly many calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Phase name (e.g. `"optimize"`).
    pub name: String,
    /// Total wall time across all calls, in nanoseconds.
    pub wall_ns: u128,
    /// How many timed calls were accumulated.
    pub calls: u64,
}

/// A named monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Counter name (e.g. `"optimize.dce_removed"`).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One interval in the hierarchical trace, relative to the collector's
/// epoch (the instant its first [`begin_span`](Telemetry::begin_span)
/// ran).
///
/// Unlike [`Span`]s — which accumulate by name — trace events keep every
/// individual begin/end pair together with its position in the span
/// stack, so a run renders as a flame chart rather than a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (e.g. `"compile"`, `"measure:2^8"`).
    pub name: String,
    /// Start offset from the collector epoch, in nanoseconds.
    pub start_ns: u128,
    /// Duration in nanoseconds (`0` while the span is still open).
    pub dur_ns: u128,
    /// Nesting depth at begin time (0 = top level).
    pub depth: u32,
    /// Index of the enclosing event in the trace, if any.
    pub parent: Option<u32>,
}

/// The recording surface: ordered spans, counters, metrics, and notes.
///
/// Names are deduplicated on insert — recording under an existing name
/// accumulates (spans, counters) or overwrites (metrics, notes) — and
/// first-insertion order is preserved so reports read in pipeline order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    spans: Vec<Span>,
    counters: Vec<Counter>,
    metrics: Vec<(String, f64)>,
    notes: Vec<(String, String)>,
    /// Hierarchical trace: set on the first `begin_span`.
    epoch: Option<Instant>,
    events: Vec<TraceEvent>,
    /// Indices into `events` of the currently open spans.
    stack: Vec<u32>,
}

impl Telemetry {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f` under `name`, accumulating into the span of that name.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record_span(name, start.elapsed());
        r
    }

    /// Opens a hierarchical span: subsequent spans nest under it until
    /// the matching [`end_span`](Telemetry::end_span).
    ///
    /// The first `begin_span` fixes the collector's epoch; all trace
    /// events are recorded relative to it.
    pub fn begin_span(&mut self, name: &str) {
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        let parent = self.stack.last().copied();
        let idx = self.events.len() as u32;
        self.events.push(TraceEvent {
            name: name.to_string(),
            start_ns: epoch.elapsed().as_nanos(),
            dur_ns: 0,
            depth: self.stack.len() as u32,
            parent,
        });
        self.stack.push(idx);
    }

    /// Closes the innermost open span, finalizing its duration and
    /// accumulating it into the flat [`Span`] of the same name.
    ///
    /// A call with no span open is a no-op (unbalanced stacks degrade
    /// gracefully rather than panic).
    pub fn end_span(&mut self) {
        let (Some(idx), Some(epoch)) = (self.stack.pop(), self.epoch) else {
            return;
        };
        let now_ns = epoch.elapsed().as_nanos();
        let ev = &mut self.events[idx as usize];
        ev.dur_ns = now_ns.saturating_sub(ev.start_ns);
        let (name, dur_ns) = (ev.name.clone(), ev.dur_ns);
        self.record_span(
            &name,
            Duration::from_nanos(dur_ns.min(u64::MAX as u128) as u64),
        );
    }

    /// Times `f` as a hierarchical span under `name`: like
    /// [`time`](Telemetry::time), but the interval also lands on the
    /// trace with the current span stack as its ancestry.
    pub fn time_nested<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        self.begin_span(name);
        let r = f();
        self.end_span();
        r
    }

    /// All hierarchical trace events, in begin order.
    pub fn trace_events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records an externally measured duration under `name`.
    pub fn record_span(&mut self, name: &str, elapsed: Duration) {
        match self.spans.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.wall_ns += elapsed.as_nanos();
                s.calls += 1;
            }
            None => self.spans.push(Span {
                name: name.to_string(),
                wall_ns: elapsed.as_nanos(),
                calls: 1,
            }),
        }
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.counters.iter_mut().find(|c| c.name == name) {
            Some(c) => c.value += delta,
            None => self.counters.push(Counter {
                name: name.to_string(),
                value: delta,
            }),
        }
    }

    /// Sets the counter `name` to an absolute value.
    pub fn set(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|c| c.name == name) {
            Some(c) => c.value = value,
            None => self.counters.push(Counter {
                name: name.to_string(),
                value,
            }),
        }
    }

    /// Sets the gauge `name` (overwriting any previous value).
    pub fn set_metric(&mut self, name: &str, value: f64) {
        match self.metrics.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((name.to_string(), value)),
        }
    }

    /// Adds `delta` to the gauge `name` (creating it at zero).
    pub fn add_metric(&mut self, name: &str, delta: f64) {
        match self.metrics.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => self.metrics.push((name.to_string(), delta)),
        }
    }

    /// Attaches a free-form note (overwriting any previous value).
    pub fn note(&mut self, key: &str, value: &str) {
        match self.notes.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value.to_string(),
            None => self.notes.push((key.to_string(), value.to_string())),
        }
    }

    /// The current value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Total nanoseconds recorded under a span name, if any.
    pub fn span_ns(&self, name: &str) -> Option<u128> {
        self.spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.wall_ns)
    }

    /// The current value of a gauge, if recorded.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// All spans, in first-recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// All counters, in first-recording order.
    pub fn counters(&self) -> &[Counter] {
        &self.counters
    }

    /// The counters whose name starts with `prefix`, in
    /// first-recording order — e.g. `counters_with_prefix("native.cache.")`
    /// to pull one subsystem's counters out of a merged run.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |c| c.name.starts_with(prefix))
            .map(|c| (c.name.as_str(), c.value))
    }

    /// All metrics, in first-recording order.
    pub fn metrics(&self) -> &[(String, f64)] {
        &self.metrics
    }

    /// All notes, in first-recording order.
    pub fn notes(&self) -> &[(String, String)] {
        &self.notes
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.metrics.is_empty()
            && self.notes.is_empty()
            && self.events.is_empty()
    }

    /// Folds another collector into this one: spans and counters
    /// accumulate; metrics and notes from `other` win on name clashes.
    pub fn merge(&mut self, other: &Telemetry) {
        for s in &other.spans {
            match self.spans.iter_mut().find(|mine| mine.name == s.name) {
                Some(mine) => {
                    mine.wall_ns += s.wall_ns;
                    mine.calls += s.calls;
                }
                None => self.spans.push(s.clone()),
            }
        }
        for c in &other.counters {
            self.add(&c.name, c.value);
        }
        for (n, v) in &other.metrics {
            self.set_metric(n, *v);
        }
        for (k, v) in &other.notes {
            self.note(k, v);
        }
        if !other.events.is_empty() {
            // Rebase the other trace onto this collector's epoch so both
            // land on one timeline. If the other epoch is earlier, shift
            // our own events forward instead (epochs only move back).
            let offset_ns = match (self.epoch, other.epoch) {
                (Some(mine), Some(theirs)) => {
                    let back = mine.saturating_duration_since(theirs).as_nanos();
                    if back > 0 {
                        for ev in &mut self.events {
                            ev.start_ns += back;
                        }
                        self.epoch = other.epoch;
                        0
                    } else {
                        theirs.saturating_duration_since(mine).as_nanos()
                    }
                }
                (None, theirs) => {
                    self.epoch = theirs;
                    0
                }
                (Some(_), None) => 0,
            };
            let base = self.events.len() as u32;
            self.events.extend(other.events.iter().map(|ev| TraceEvent {
                start_ns: ev.start_ns + offset_ns,
                parent: ev.parent.map(|p| p + base),
                ..ev.clone()
            }));
        }
    }

    /// The JSON rendering used inside [`RunReport`]s.
    pub fn to_json(&self) -> Json {
        let phases = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("name", Json::Str(s.name.clone())),
                        ("wall_ns", Json::Num(s.wall_ns as f64)),
                        ("calls", Json::Num(s.calls as f64)),
                    ])
                })
                .collect(),
        );
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|c| (c.name.clone(), Json::Num(c.value as f64)))
                .collect(),
        );
        let metrics = Json::Obj(
            self.metrics
                .iter()
                .map(|(n, v)| (n.clone(), Json::Num(*v)))
                .collect(),
        );
        let notes = Json::Obj(
            self.notes
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let mut body = vec![
            ("phases", phases),
            ("counters", counters),
            ("metrics", metrics),
            ("notes", notes),
        ];
        if !self.events.is_empty() {
            body.push((
                "events",
                Json::Arr(
                    self.events
                        .iter()
                        .map(|ev| {
                            Json::obj(vec![
                                ("name", Json::Str(ev.name.clone())),
                                ("start_ns", Json::Num(ev.start_ns as f64)),
                                ("dur_ns", Json::Num(ev.dur_ns as f64)),
                                ("depth", Json::Num(ev.depth as f64)),
                                (
                                    "parent",
                                    match ev.parent {
                                        Some(p) => Json::Num(p as f64),
                                        None => Json::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Json::obj(body)
    }
}

/// A complete, self-describing record of one tool invocation.
///
/// Sections keep per-unit (or per-size) telemetry separate; the report
/// also exposes a [`merged`](RunReport::merged) view that folds every
/// section together — the view `splc --stats` prints and tests assert on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// The emitting tool (`"splc"`, `"fig2"`, …).
    pub tool: String,
    /// Free-form invocation metadata (options, input file, …).
    pub meta: Vec<(String, String)>,
    /// Named telemetry sections in recording order.
    pub sections: Vec<(String, Telemetry)>,
}

impl RunReport {
    /// An empty report for the named tool.
    pub fn new(tool: &str) -> Self {
        RunReport {
            tool: tool.to_string(),
            meta: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Attaches an invocation-metadata pair.
    pub fn meta(&mut self, key: &str, value: &str) {
        self.meta.push((key.to_string(), value.to_string()));
    }

    /// Appends a named section.
    pub fn push_section(&mut self, name: &str, tel: Telemetry) {
        self.sections.push((name.to_string(), tel));
    }

    /// Every section folded into one [`Telemetry`].
    pub fn merged(&self) -> Telemetry {
        let mut all = Telemetry::new();
        for (_, tel) in &self.sections {
            all.merge(tel);
        }
        all
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        let meta = Json::Obj(
            self.meta
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect(),
        );
        let sections = Json::Arr(
            self.sections
                .iter()
                .map(|(name, tel)| {
                    let mut obj = vec![("name".to_string(), Json::Str(name.clone()))];
                    if let Json::Obj(body) = tel.to_json() {
                        obj.extend(body);
                    }
                    Json::Obj(obj)
                })
                .collect(),
        );
        Json::obj(vec![
            ("tool", Json::Str(self.tool.clone())),
            ("schema_version", Json::Num(1.0)),
            ("meta", meta),
            ("merged", self.merged().to_json()),
            ("sections", sections),
        ])
    }

    /// The report as a Chrome trace-event JSON value, loadable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Each section becomes one named track (`tid`). Sections that
    /// recorded hierarchical [`TraceEvent`]s render as a flame chart
    /// (Perfetto infers nesting from time containment); sections with
    /// only flat [`Span`]s get back-to-back synthetic intervals so every
    /// tool produces a useful trace.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events = Vec::new();
        for (tid0, (name, tel)) in self.sections.iter().enumerate() {
            let tid = tid0 as f64 + 1.0;
            events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(tid)),
                ("args", Json::obj(vec![("name", Json::Str(name.clone()))])),
            ]));
            let complete = |ev_name: &str, ts_ns: u128, dur_ns: u128| {
                Json::obj(vec![
                    ("name", Json::Str(ev_name.to_string())),
                    ("cat", Json::Str(name.clone())),
                    ("ph", Json::Str("X".into())),
                    ("ts", Json::Num(ts_ns as f64 / 1e3)),
                    ("dur", Json::Num(dur_ns as f64 / 1e3)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(tid)),
                ])
            };
            if tel.trace_events().is_empty() {
                // Synthetic timeline: flat spans laid end to end.
                let mut cursor = 0u128;
                for s in tel.spans() {
                    events.push(complete(&s.name, cursor, s.wall_ns));
                    cursor += s.wall_ns;
                }
            } else {
                for ev in tel.trace_events() {
                    events.push(complete(&ev.name, ev.start_ns, ev.dur_ns));
                }
            }
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
            (
                "otherData",
                Json::obj(vec![("tool", Json::Str(self.tool.clone()))]),
            ),
        ])
    }

    /// Writes the Chrome trace rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut s = self.to_chrome_trace().to_string();
        s.push('\n');
        std::fs::write(path, s)
    }

    /// The report as pretty-printed JSON text (trailing newline included).
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string();
        s.push('\n');
        s
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json_string())
    }
}

/// A guard-style stopwatch for ad-hoc timing without a closure.
///
/// ```
/// use spl_telemetry::{Stopwatch, Telemetry};
///
/// let mut tel = Telemetry::new();
/// let sw = Stopwatch::start();
/// // ... work ...
/// tel.record_span("work", sw.elapsed());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time since [`start`](Stopwatch::start).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_with_prefix_selects_one_subsystem() {
        let mut tel = Telemetry::new();
        tel.add("native.cache.memory_hits", 3);
        tel.add("search.plans_evaluated", 10);
        tel.add("native.cache.disk_hits", 1);
        tel.add("native.cc_invocations", 4);
        let cache: Vec<_> = tel.counters_with_prefix("native.cache.").collect();
        assert_eq!(
            cache,
            vec![
                ("native.cache.memory_hits", 3),
                ("native.cache.disk_hits", 1)
            ]
        );
        assert_eq!(tel.counters_with_prefix("nope.").count(), 0);
    }

    #[test]
    fn spans_accumulate_by_name() {
        let mut tel = Telemetry::new();
        tel.record_span("parse", Duration::from_nanos(100));
        tel.record_span("parse", Duration::from_nanos(50));
        tel.record_span("optimize", Duration::from_nanos(7));
        assert_eq!(tel.span_ns("parse"), Some(150));
        assert_eq!(tel.spans().len(), 2);
        assert_eq!(tel.spans()[0].calls, 2);
    }

    #[test]
    fn counters_and_metrics() {
        let mut tel = Telemetry::new();
        tel.add("hits", 2);
        tel.add("hits", 3);
        tel.set("abs", 10);
        tel.set("abs", 4);
        tel.set_metric("cost", 1.5);
        tel.add_metric("total", 0.25);
        tel.add_metric("total", 0.25);
        assert_eq!(tel.counter("hits"), Some(5));
        assert_eq!(tel.counter("abs"), Some(4));
        assert_eq!(tel.counter("missing"), None);
        assert_eq!(tel.metric("cost"), Some(1.5));
        assert_eq!(tel.metric("total"), Some(0.5));
    }

    #[test]
    fn time_returns_closure_value() {
        let mut tel = Telemetry::new();
        let v = tel.time("phase", || 99);
        assert_eq!(v, 99);
        assert!(tel.span_ns("phase").is_some());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Telemetry::new();
        a.add("n", 1);
        a.record_span("s", Duration::from_nanos(10));
        let mut b = Telemetry::new();
        b.add("n", 2);
        b.add("m", 5);
        b.record_span("s", Duration::from_nanos(20));
        b.note("k", "v");
        a.merge(&b);
        assert_eq!(a.counter("n"), Some(3));
        assert_eq!(a.counter("m"), Some(5));
        assert_eq!(a.span_ns("s"), Some(30));
        assert_eq!(a.notes(), &[("k".to_string(), "v".to_string())]);
    }

    #[test]
    fn merge_covers_all_four_channels() {
        let mut a = Telemetry::new();
        a.record_span("shared", Duration::from_nanos(100));
        a.record_span("only_a", Duration::from_nanos(7));
        a.add("shared.count", 1);
        a.set_metric("shared.gauge", 1.0);
        a.set_metric("only_a.gauge", 9.0);
        a.note("shared.note", "old");
        a.note("only_a.note", "kept");

        let mut b = Telemetry::new();
        b.record_span("shared", Duration::from_nanos(50));
        b.record_span("only_b", Duration::from_nanos(3));
        b.add("shared.count", 4);
        b.add("only_b.count", 2);
        b.set_metric("shared.gauge", 2.5);
        b.note("shared.note", "new");
        b.note("only_b.note", "added");

        a.merge(&b);
        // Spans accumulate by name; new names append.
        assert_eq!(a.span_ns("shared"), Some(150));
        assert_eq!(a.span_ns("only_a"), Some(7));
        assert_eq!(a.span_ns("only_b"), Some(3));
        assert_eq!(
            a.spans().iter().find(|s| s.name == "shared").unwrap().calls,
            2
        );
        // Counters accumulate.
        assert_eq!(a.counter("shared.count"), Some(5));
        assert_eq!(a.counter("only_b.count"), Some(2));
        // Metrics: the other side wins on clashes, absent names survive.
        assert_eq!(a.metric("shared.gauge"), Some(2.5));
        assert_eq!(a.metric("only_a.gauge"), Some(9.0));
        // Notes: same overwrite semantics.
        let note = |t: &Telemetry, k: &str| {
            t.notes()
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(note(&a, "shared.note").as_deref(), Some("new"));
        assert_eq!(note(&a, "only_a.note").as_deref(), Some("kept"));
        assert_eq!(note(&a, "only_b.note").as_deref(), Some("added"));
    }

    #[test]
    fn nested_spans_build_a_trace() {
        let mut tel = Telemetry::new();
        tel.begin_span("outer");
        let v = tel.time_nested("inner", || std::hint::black_box((0..100).sum::<u64>()));
        assert!(v > 0);
        tel.end_span();
        let evs = tel.trace_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "outer");
        assert_eq!(evs[0].depth, 0);
        assert_eq!(evs[0].parent, None);
        assert_eq!(evs[1].name, "inner");
        assert_eq!(evs[1].depth, 1);
        assert_eq!(evs[1].parent, Some(0));
        // The child interval lies inside the parent interval.
        assert!(evs[1].start_ns >= evs[0].start_ns);
        assert!(evs[1].start_ns + evs[1].dur_ns <= evs[0].start_ns + evs[0].dur_ns);
        // end_span feeds the flat accumulated view too.
        assert!(tel.span_ns("outer").is_some());
        assert!(tel.span_ns("inner").is_some());
        // Unbalanced end_span is a no-op, not a panic.
        tel.end_span();
        assert_eq!(tel.trace_events().len(), 2);
    }

    #[test]
    fn merge_rebases_trace_events() {
        let mut a = Telemetry::new();
        a.time_nested("first", || std::hint::black_box(1));
        let mut b = Telemetry::new();
        b.begin_span("outer");
        b.time_nested("inner", || std::hint::black_box(2));
        b.end_span();
        a.merge(&b);
        let evs = a.trace_events();
        assert_eq!(evs.len(), 3);
        // Parent links survived the append with the right offset.
        assert_eq!(evs[2].name, "inner");
        assert_eq!(evs[2].parent, Some(1));
        // b began after a's epoch, so its events land at or after it.
        assert!(evs[1].start_ns >= evs[0].start_ns);
    }

    #[test]
    fn chrome_trace_is_valid_trace_event_json() {
        let mut tel = Telemetry::new();
        tel.begin_span("compile");
        tel.time_nested("optimize", || std::hint::black_box(3));
        tel.end_span();
        let mut flat = Telemetry::new();
        flat.record_span("measure", Duration::from_micros(5));
        flat.record_span("verify", Duration::from_micros(2));
        let mut report = RunReport::new("t");
        report.push_section("unit", tel);
        report.push_section("bench", flat);

        let parsed = json::parse(&report.to_chrome_trace().to_string()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread_name metadata + 2 hierarchical + 2 synthetic flat.
        assert_eq!(events.len(), 6);
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).unwrap();
            assert!(ph == "X" || ph == "M");
            assert!(ev.get("pid").and_then(Json::as_f64).is_some());
            assert!(ev.get("tid").and_then(Json::as_f64).is_some());
            if ph == "X" {
                assert!(ev.get("ts").and_then(Json::as_f64).is_some());
                assert!(ev.get("dur").and_then(Json::as_f64).is_some());
            }
        }
        // Flat spans were laid end to end on their own track.
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("bench"))
            .collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(xs[1].get("ts").and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut tel = Telemetry::new();
        tel.record_span("parse", Duration::from_micros(3));
        tel.add("optimize.cse_hits", 7);
        tel.set_metric("cost", 2.5e-7);
        tel.note("formula", "(F 4)");
        let mut report = RunReport::new("splc");
        report.meta("opt_level", "O2");
        report.push_section("unit:fft4", tel);

        let parsed = json::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed.get("tool").and_then(Json::as_str), Some("splc"));
        let merged = parsed.get("merged").unwrap();
        assert_eq!(
            merged
                .get("counters")
                .and_then(|c| c.get("optimize.cse_hits"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        let sections = parsed.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(
            sections[0].get("name").and_then(Json::as_str),
            Some("unit:fft4")
        );
        let phases = sections[0].get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").and_then(Json::as_str), Some("parse"));
    }

    #[test]
    fn merged_view_folds_sections() {
        let mut report = RunReport::new("t");
        let mut a = Telemetry::new();
        a.add("x", 1);
        let mut b = Telemetry::new();
        b.add("x", 2);
        report.push_section("a", a);
        report.push_section("b", b);
        assert_eq!(report.merged().counter("x"), Some(3));
    }

    #[test]
    fn stopwatch_measures() {
        let sw = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(sw.elapsed().as_nanos() > 0);
    }
}
