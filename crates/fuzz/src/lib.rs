//! Differential fuzzing for the SPL compiler pipeline.
//!
//! This crate closes the robustness loop around the reproduction of
//! Xiong, Johnson, Johnson & Padua, *SPL: A Language and Compiler for
//! DSP Algorithms* (PLDI 2001): the paper's pipeline is only as
//! trustworthy as its agreement with the mathematics, so we generate
//! random formulas over the full SPL operator vocabulary and check
//! every independent implementation against the dense-matrix ground
//! truth.
//!
//! Three pieces, usable separately:
//!
//! * [`gen`] — a seeded, grammar-aware formula generator biased toward
//!   shapes that historically break compilers (deep nesting, rank-1
//!   tensor factors, repeated sub-formulas, near-miss invalid sizes);
//! * [`oracle`] — the differential oracle (dense vs. i-code VM vs.
//!   optional sandboxed native kernel) with panic capture and typed
//!   bug classes;
//! * [`shrink`] — a delta-debugging shrinker that minimizes a failing
//!   formula while preserving its bug class.
//!
//! [`run`] ties them together: generate, check, dedup by bug class,
//! shrink, and write reproducer files under `results/fuzz/`. The
//! `splfuzz` binary is a thin CLI over [`run`].

#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod shrink;

pub use gen::{gen_formula, gen_program, GenConfig};
pub use oracle::{Bug, BugClass, Oracle, Verdict};
pub use shrink::{shrink, ShrinkConfig};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use spl_frontend::sexp::Sexp;
use spl_numeric::rng::Rng;
use spl_telemetry::Telemetry;

/// Everything a fuzzing campaign needs to know.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; case `i` derives its own generator stream from it.
    pub seed: u64,
    /// Number of formulas to generate and check.
    pub count: usize,
    /// Formula generation knobs (size/depth bounds, invalid-mutation
    /// probability).
    pub gen: GenConfig,
    /// Differential-oracle knobs (tolerance, native stage).
    pub oracle: Oracle,
    /// Whether to minimize each first-of-class bug before reporting.
    pub shrink: bool,
    /// Shrinker budget.
    pub shrink_cfg: ShrinkConfig,
    /// After shrinking, recompile each reproducer under per-pass
    /// translation validation to name the optimization pass (if any)
    /// that miscompiles it ([`Oracle::localize_pass`]).
    pub localize: bool,
    /// Directory for reproducer files; `None` disables emission.
    pub out_dir: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            count: 100,
            gen: GenConfig::default(),
            oracle: Oracle::default(),
            shrink: true,
            shrink_cfg: ShrinkConfig::default(),
            localize: false,
            out_dir: Some(PathBuf::from("results/fuzz")),
        }
    }
}

/// One reported bug: the first member of its class seen in the run.
#[derive(Debug, Clone)]
pub struct FoundBug {
    /// The triaged bug.
    pub bug: Bug,
    /// Index of the generated case that first hit this class.
    pub case: usize,
    /// The formula exactly as generated.
    pub original: Sexp,
    /// The minimized reproducer (equals `original` when shrinking is
    /// off or found nothing smaller).
    pub shrunk: Sexp,
    /// The optimization pass per-pass validation blames for the bug
    /// (`--localize`); `None` when localization is off, every pass
    /// validates, or the bug is not an optimizer miscompile.
    pub guilty_pass: Option<String>,
    /// Where the reproducer file was written, if emission is on.
    pub file: Option<PathBuf>,
}

/// Aggregate outcome of a fuzzing campaign.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases where every oracle computed the same result.
    pub agree_ok: usize,
    /// Cases where every oracle rejected with a typed error.
    pub agree_reject: usize,
    /// Cases skipped as too large to evaluate numerically.
    pub skipped: usize,
    /// Total cases that hit an already-reported bug class.
    pub duplicate_bugs: usize,
    /// First-of-class bugs, in discovery order.
    pub bugs: Vec<FoundBug>,
    /// `fuzz.*` counters for `--trace-json` and tests.
    pub telemetry: Telemetry,
}

impl FuzzReport {
    /// Total generated cases.
    pub fn total(&self) -> usize {
        self.agree_ok + self.agree_reject + self.skipped + self.duplicate_bugs + self.bugs.len()
    }
}

/// Runs a fuzzing campaign: generate `cfg.count` formulas, check each
/// against the differential oracle, shrink and persist the first bug
/// of every class.
///
/// Determinism: the same `cfg` always produces the same cases in the
/// same order (each case derives its generator from `seed` and the
/// case index, so changing `count` only appends cases).
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut seen: BTreeMap<BugClass, usize> = BTreeMap::new();
    for case in 0..cfg.count {
        let mut rng = case_rng(cfg.seed, case as u64);
        let sexp = gen_formula(&mut rng, &cfg.gen);
        report.telemetry.add("fuzz.cases", 1);
        match cfg.oracle.check(&sexp) {
            Verdict::AgreeOk { .. } => {
                report.agree_ok += 1;
                report.telemetry.add("fuzz.agree_ok", 1);
            }
            Verdict::AgreeReject => {
                report.agree_reject += 1;
                report.telemetry.add("fuzz.agree_reject", 1);
            }
            Verdict::Skipped => {
                report.skipped += 1;
                report.telemetry.add("fuzz.skipped", 1);
            }
            Verdict::Bug(bug) => {
                if seen.contains_key(&bug.class) {
                    report.duplicate_bugs += 1;
                    report.telemetry.add("fuzz.duplicate_bugs", 1);
                    continue;
                }
                seen.insert(bug.class, case);
                report
                    .telemetry
                    .add(&format!("fuzz.bugs.{}", bug.class.name()), 1);
                let found = triage(cfg, case, &sexp, bug, &mut report.telemetry);
                report.bugs.push(found);
            }
        }
    }
    report
}

/// Derives the per-case generator stream: a SplitMix64 jump keyed by
/// the master seed and the case index.
fn case_rng(seed: u64, case: u64) -> Rng {
    Rng::new(
        seed ^ case
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03),
    )
}

/// Shrinks (when enabled) and writes the reproducer file for a
/// first-of-class bug.
fn triage(cfg: &FuzzConfig, case: usize, sexp: &Sexp, bug: Bug, tel: &mut Telemetry) -> FoundBug {
    let (shrunk, spent) = if cfg.shrink {
        shrink::shrink(
            sexp,
            &cfg.shrink_cfg,
            |cand| matches!(cfg.oracle.check(cand), Verdict::Bug(b) if b.class == bug.class),
        )
    } else {
        (sexp.clone(), 0)
    };
    tel.add("fuzz.shrink_steps", spent as u64);
    let guilty_pass = if cfg.localize {
        let guilty = cfg.oracle.localize_pass(&shrunk);
        if guilty.is_some() {
            tel.add("fuzz.localized", 1);
        }
        guilty
    } else {
        None
    };
    let file = cfg.out_dir.as_deref().and_then(|dir| {
        write_reproducer(
            dir,
            cfg.seed,
            case,
            &bug,
            sexp,
            &shrunk,
            guilty_pass.as_deref(),
        )
        .map_err(|e| eprintln!("splfuzz: cannot write reproducer: {e}"))
        .ok()
    });
    FoundBug {
        bug,
        case,
        original: sexp.clone(),
        shrunk,
        guilty_pass,
        file,
    }
}

/// Writes `<class>-seed<N>-i<K>.spl`: a parse-ready SPL file whose
/// comment header carries the triage context.
fn write_reproducer(
    dir: &Path,
    seed: u64,
    case: usize,
    bug: &Bug,
    original: &Sexp,
    shrunk: &Sexp,
    guilty_pass: Option<&str>,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-seed{}-i{}.spl", bug.class.name(), seed, case));
    let mut text = String::new();
    text.push_str(&format!("; splfuzz reproducer: {}\n", bug.class.name()));
    text.push_str(&format!("; stage:  {}\n", bug.stage));
    text.push_str(&format!("; detail: {}\n", bug.detail.replace('\n', " ")));
    if let Some(pass) = guilty_pass {
        text.push_str(&format!("; guilty-pass: {pass}\n"));
    }
    text.push_str(&format!("; seed {seed}, case {case}\n"));
    if format!("{original}") != format!("{shrunk}") {
        text.push_str(&format!("; original: {original}\n"));
    }
    text.push_str(&format!("{shrunk}\n"));
    std::fs::write(&path, text)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_finds_no_bugs_on_valid_formulas() {
        let cfg = FuzzConfig {
            seed: 7,
            count: 40,
            gen: GenConfig {
                p_invalid: 0.0,
                ..GenConfig::default()
            },
            out_dir: None,
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        assert_eq!(report.total(), 40);
        assert!(report.bugs.is_empty(), "{:?}", report.bugs);
        assert!(report.agree_ok > 0, "nothing actually evaluated");
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = FuzzConfig {
            seed: 11,
            count: 30,
            out_dir: None,
            ..FuzzConfig::default()
        };
        let (a, b) = (run(&cfg), run(&cfg));
        assert_eq!(a.agree_ok, b.agree_ok);
        assert_eq!(a.agree_reject, b.agree_reject);
        assert_eq!(a.bugs.len(), b.bugs.len());
    }

    #[test]
    fn invalid_mutants_reject_but_never_panic() {
        let cfg = FuzzConfig {
            seed: 3,
            count: 60,
            gen: GenConfig {
                p_invalid: 0.9,
                ..GenConfig::default()
            },
            out_dir: None,
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        // Mutants may legally still be valid; what must not happen is a
        // panic escaping any stage, or the oracles disagreeing.
        if let Some(bug) = report.bugs.first() {
            panic!("{}: {} ({})", bug.bug.class, bug.bug.detail, bug.original);
        }
        assert!(report.agree_reject > 0, "mutation produced no rejects");
    }

    #[test]
    fn reproducers_are_written_and_parse_back() {
        // Force a bug through a poisoned oracle: a negative tolerance
        // turns every computed agreement into a reported mismatch.
        let dir = std::env::temp_dir().join(format!("spl-fuzz-test-{}", std::process::id()));
        let cfg = FuzzConfig {
            seed: 5,
            count: 20,
            gen: GenConfig {
                p_invalid: 0.0,
                ..GenConfig::default()
            },
            oracle: Oracle {
                tolerance: -1.0,
                ..Oracle::default()
            },
            out_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        assert!(!report.bugs.is_empty(), "poisoned oracle found nothing");
        for bug in &report.bugs {
            let path = bug.file.as_ref().expect("reproducer path");
            let text = std::fs::read_to_string(path).expect("reproducer readable");
            assert!(text.starts_with("; splfuzz reproducer:"), "{text}");
            let body: String = text.lines().filter(|l| !l.starts_with(';')).collect();
            spl_frontend::parse_formula(&body).expect("reproducer parses");
            assert!(
                bug.shrunk.node_count() <= bug.original.node_count(),
                "shrinker grew the formula"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
