//! Seeded grammar-aware formula generation.
//!
//! The generator builds S-expressions over the full operator vocabulary
//! (`compose`, `tensor`, `direct-sum`, `F`, `I`, `J`, `L`, `T`,
//! `diagonal`, `permutation`, `matrix`) with known shapes, so n-ary
//! operations are well-formed by construction. It is deliberately
//! biased toward the shapes that historically break compilers:
//!
//! * **deep nesting** — the depth budget is drawn from a skewed
//!   distribution, so a fraction of formulas exhaust it;
//! * **rank-1 tensors** — `(I 1)` and `1x1` matrix factors are
//!   over-represented in tensor products;
//! * **repeated sub-formulas** — compose chains reuse one generated
//!   operand several times, stressing sharing assumptions.
//!
//! A configurable fraction of formulas is *mutated* after generation
//! (parameters perturbed, operands dropped, unknown operators spliced
//! in): those must be rejected with a typed error by every oracle, never
//! a panic. [`gen_program`] additionally wraps a formula in the
//! program-level vocabulary — `define`, `#unroll`, `#datatype` /
//! `#codetype` directives — for whole-pipeline fuzzing.

use spl_frontend::sexp::Sexp;
use spl_numeric::rng::Rng;

/// Bounds and biases for one generated formula.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Upper bound on the generated formula's vector size.
    pub max_size: usize,
    /// Nesting budget (operator depth).
    pub max_depth: usize,
    /// Probability a formula is mutated into a (likely) invalid one.
    pub p_invalid: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_size: 64,
            max_depth: 8,
            p_invalid: 0.15,
        }
    }
}

/// Generates one formula S-expression (possibly deliberately invalid —
/// see [`GenConfig::p_invalid`]).
pub fn gen_formula(rng: &mut Rng, cfg: &GenConfig) -> Sexp {
    // Skewed depth budget: mostly shallow, occasionally the full budget
    // (deep nesting is where recursion limits and stack discipline live).
    let depth = if rng.chance(0.2) {
        cfg.max_depth
    } else {
        rng.range(1, cfg.max_depth.max(1) as u64) as usize
    };
    let size = pick_size(rng, cfg.max_size);
    let mut sexp = gen_sized(rng, size, depth);
    if rng.chance(cfg.p_invalid) {
        sexp = mutate(rng, &sexp);
    }
    sexp
}

/// Generates a whole SPL program exercising the program-level
/// vocabulary: optional `#unroll` / `#datatype` / `#codetype`
/// directives and `define`d sub-formulas referenced from the final
/// formula. The text is meant for `Compiler::compile_source`.
pub fn gen_program(rng: &mut Rng, cfg: &GenConfig) -> String {
    let mut out = String::new();
    if rng.chance(0.5) {
        out.push_str(if rng.chance(0.5) {
            "#unroll on\n"
        } else {
            "#unroll off\n"
        });
    }
    if rng.chance(0.3) {
        out.push_str("#datatype complex\n");
    }
    let formula = gen_formula(rng, cfg);
    if rng.chance(0.5) {
        // Route part of the formula through a define, the template
        // mechanism's user-facing entry point.
        let sub_size = pick_size(rng, cfg.max_size);
        let sub = gen_sized(rng, sub_size, 2);
        out.push_str(&format!("(define SUB {sub})\n"));
        let with_sub = Sexp::list(vec![
            Sexp::sym("compose"),
            formula.clone(),
            Sexp::sym("SUB"),
        ]);
        // Shapes rarely line up; keep the simple formula when they
        // cannot (the compose would be rejected, which is also a fine
        // case but we want mostly-compiling programs here).
        if shape_of(&formula) == shape_of(&sub) {
            out.push_str(&format!("{with_sub}\n"));
        } else {
            out.push_str(&format!("{formula}\n"));
        }
    } else {
        out.push_str(&format!("{formula}\n"));
    }
    out
}

/// The square size of a generated formula (generated formulas are
/// square by construction; mutation can break that).
fn shape_of(sexp: &Sexp) -> Option<usize> {
    match sexp.head()? {
        "I" | "F" | "J" | "L" | "T" => sexp.as_list()?.get(1)?.as_int().map(|v| v as usize),
        "diagonal" | "permutation" => sexp.as_list()?.get(1)?.as_list().map(<[Sexp]>::len),
        "matrix" => Some(sexp.as_list()?.len() - 1),
        "compose" => shape_of(sexp.as_list()?.get(1)?),
        "tensor" => sexp.as_list()?[1..]
            .iter()
            .map(shape_of)
            .try_fold(1usize, |a, s| s.map(|s| a * s)),
        "direct-sum" => sexp.as_list()?[1..]
            .iter()
            .map(shape_of)
            .try_fold(0usize, |a, s| s.map(|s| a + s)),
        _ => None,
    }
}

/// A size in `1..=max`, biased toward small and highly composite values
/// (powers of two are what the operator algebra is richest on).
fn pick_size(rng: &mut Rng, max: usize) -> usize {
    let max = max.max(1) as u64;
    let v = if rng.chance(0.6) {
        // A power of two up to max.
        let maxk = u64::from(63 - max.leading_zeros());
        1u64 << rng.range(0, maxk.min(6))
    } else {
        rng.range(1, max.min(24))
    };
    v.min(max) as usize
}

/// Generates a square `size x size` formula within `depth` levels.
fn gen_sized(rng: &mut Rng, size: usize, depth: usize) -> Sexp {
    if depth == 0 || size == 1 || rng.chance(0.25) {
        return gen_leaf(rng, size);
    }
    match rng.below(4) {
        0 => {
            // compose: 2..=4 square operands of the same size, with a
            // repeated-subformula bias.
            let k = rng.range(2, 4) as usize;
            let mut parts = vec![Sexp::sym("compose")];
            if rng.chance(0.3) {
                let shared = gen_sized(rng, size, depth - 1);
                parts.extend((0..k).map(|_| shared.clone()));
            } else {
                for _ in 0..k {
                    parts.push(gen_sized(rng, size, depth - 1));
                }
            }
            Sexp::list(parts)
        }
        1 => {
            // tensor: factor the size, over-representing rank-1 factors.
            let mut parts = vec![Sexp::sym("tensor")];
            let mut rest = size;
            while rest > 1 && parts.len() < 4 {
                let f = pick_factor(rng, rest);
                parts.push(gen_sized(rng, f, depth - 1));
                rest /= f;
            }
            if rest > 1 || parts.len() == 1 {
                parts.push(gen_sized(rng, rest, depth - 1));
            }
            if rng.chance(0.35) {
                // Rank-1 factor: size-neutral but shape-degenerate.
                parts.push(gen_sized(rng, 1, depth - 1));
            }
            Sexp::list(parts)
        }
        2 if size >= 2 => {
            // direct-sum: split the size into 2..=3 blocks that sum
            // exactly to `size` (compose siblings rely on the square
            // contract), with a trailing 1x1 block bias.
            let a = rng.range(1, (size - 1) as u64) as usize;
            let mut parts = vec![Sexp::sym("direct-sum"), gen_sized(rng, a, depth - 1)];
            if size - a >= 2 && rng.chance(0.2) {
                parts.push(gen_sized(rng, size - a - 1, depth - 1));
                parts.push(gen_sized(rng, 1, depth - 1));
            } else {
                parts.push(gen_sized(rng, size - a, depth - 1));
            }
            Sexp::list(parts)
        }
        _ => gen_leaf(rng, size),
    }
}

/// A leaf operator of the exact size.
fn gen_leaf(rng: &mut Rng, size: usize) -> Sexp {
    let n = Sexp::Int(size as i64);
    match rng.below(7) {
        0 => Sexp::list(vec![Sexp::sym("I"), n]),
        1 => Sexp::list(vec![Sexp::sym("F"), n]),
        2 => Sexp::list(vec![Sexp::sym("J"), n]),
        3 if size > 1 => {
            let s = pick_divisor(rng, size);
            Sexp::list(vec![Sexp::sym("L"), n, Sexp::Int(s as i64)])
        }
        4 if size > 1 => {
            let s = pick_divisor(rng, size);
            Sexp::list(vec![Sexp::sym("T"), n, Sexp::Int(s as i64)])
        }
        5 => {
            let entries = (0..size)
                .map(|_| Sexp::Int(rng.range(1, 5) as i64))
                .collect();
            Sexp::list(vec![Sexp::sym("diagonal"), Sexp::List(entries)])
        }
        _ => {
            // A random permutation, written 1-based as in SPL source.
            let mut idx: Vec<usize> = (1..=size).collect();
            for i in (1..idx.len()).rev() {
                let j = rng.below((i + 1) as u64) as usize;
                idx.swap(i, j);
            }
            let entries = idx.into_iter().map(|v| Sexp::Int(v as i64)).collect();
            Sexp::list(vec![Sexp::sym("permutation"), Sexp::List(entries)])
        }
    }
}

/// A factor of `n` (possibly 1 or `n`), biased toward proper factors.
fn pick_factor(rng: &mut Rng, n: usize) -> usize {
    let proper: Vec<usize> = (2..n).filter(|d| n.is_multiple_of(*d)).collect();
    if proper.is_empty() || rng.chance(0.3) {
        if rng.chance(0.5) {
            n
        } else {
            1
        }
    } else {
        *rng.pick(&proper)
    }
}

/// A divisor of `n`, including the degenerate 1 and `n`.
fn pick_divisor(rng: &mut Rng, n: usize) -> usize {
    let divs: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    *rng.pick(&divs)
}

/// Applies one random breaking mutation; the result is *likely* invalid
/// (wrong parameters, mismatched shapes, unknown operators) and must be
/// rejected with a typed error by every oracle.
fn mutate(rng: &mut Rng, sexp: &Sexp) -> Sexp {
    match rng.below(4) {
        // Perturb the first integer parameter found.
        0 => perturb_int(rng, sexp).unwrap_or_else(|| sexp.clone()),
        // Replace a random operand with a differently-sized leaf.
        1 => match sexp {
            Sexp::List(items) if items.len() > 1 => {
                let mut items = items.clone();
                let i = 1 + rng.below((items.len() - 1) as u64) as usize;
                let size = rng.range(2, 9) as usize;
                items[i] = gen_leaf(rng, size);
                Sexp::List(items)
            }
            other => other.clone(),
        },
        // Drop all operands: `(compose)`.
        2 => match sexp.head() {
            Some(h) => Sexp::list(vec![Sexp::sym(h)]),
            None => sexp.clone(),
        },
        // Splice in an unknown operator.
        _ => Sexp::list(vec![Sexp::sym("Q"), Sexp::Int(rng.range(1, 8) as i64)]),
    }
}

/// Replaces the first integer in the tree with a nearby (often
/// invalid) value: 0, a bump, or a non-divisor.
fn perturb_int(rng: &mut Rng, sexp: &Sexp) -> Option<Sexp> {
    match sexp {
        Sexp::Int(v) => {
            let nv = match rng.below(3) {
                0 => 0,
                1 => v + 1,
                _ => v.saturating_mul(3) + 1,
            };
            Some(Sexp::Int(nv))
        }
        Sexp::List(items) => {
            for (i, item) in items.iter().enumerate() {
                if let Some(changed) = perturb_int(rng, item) {
                    let mut items = items.clone();
                    items[i] = changed;
                    return Some(Sexp::List(items));
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a: Vec<String> = {
            let mut rng = Rng::new(42);
            (0..50)
                .map(|_| gen_formula(&mut rng, &cfg).to_string())
                .collect()
        };
        let b: Vec<String> = {
            let mut rng = Rng::new(42);
            (0..50)
                .map(|_| gen_formula(&mut rng, &cfg).to_string())
                .collect()
        };
        assert_eq!(a, b);
        let c: Vec<String> = {
            let mut rng = Rng::new(43);
            (0..50)
                .map(|_| gen_formula(&mut rng, &cfg).to_string())
                .collect()
        };
        assert_ne!(a, c, "different seeds must explore different formulas");
    }

    #[test]
    fn generated_formulas_parse_back() {
        let cfg = GenConfig {
            p_invalid: 0.0,
            ..GenConfig::default()
        };
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let s = gen_formula(&mut rng, &cfg).to_string();
            spl_frontend::parse_formula(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn valid_formulas_have_consistent_shapes() {
        let cfg = GenConfig {
            p_invalid: 0.0,
            ..GenConfig::default()
        };
        let mut rng = Rng::new(11);
        for _ in 0..200 {
            let sexp = gen_formula(&mut rng, &cfg);
            let f = spl_formula::formula_from_sexp(&sexp, &std::collections::HashMap::new())
                .unwrap_or_else(|e| panic!("{sexp}: {e}"));
            assert!(f.rows() >= 1);
            assert_eq!(f.rows(), f.cols(), "{sexp} not square");
        }
    }

    #[test]
    fn programs_compile_or_fail_typed() {
        let cfg = GenConfig {
            p_invalid: 0.0,
            max_size: 16,
            ..GenConfig::default()
        };
        let mut rng = Rng::new(3);
        for _ in 0..40 {
            let src = gen_program(&mut rng, &cfg);
            let mut c = spl_compiler::Compiler::new();
            // Either outcome is fine — the property is "no panic".
            let _ = c.compile_source(&src);
        }
    }
}
