//! The differential oracle: dense reference vs. i-code VM vs. (opt-in)
//! sandboxed native kernel.
//!
//! Each formula is pushed through independent implementations of the
//! same semantics and the outcomes are cross-checked:
//!
//! * **dense** — `spl_formula`'s matrix algebra ([`spl_formula::dense`]),
//!   the semantics ground truth;
//! * **vm** — template expansion to i-code plus the interpreter
//!   (`spl_templates` + `spl_icode`), the compiler's front half;
//! * **native** (optional) — the full pipeline down to `cc`-compiled C
//!   executed in a fork sandbox (`spl_native`), classifying crashes and
//!   hangs as their own bug classes;
//! * **vm-engine** (optional) — the full pipeline down to the register
//!   VM (`spl_vm`), cross-checking the resolved execution engine
//!   against the checked reference executor bit-for-bit.
//!
//! Agreement means either *both computed the same vector* (within
//! tolerance) or *both rejected with a typed error*. One side accepting
//! what the other rejects, a numeric mismatch, and any caught panic are
//! distinct [`BugClass`]es. Panics are caught with a quiet hook so a
//! fuzzing run's log is the report, not a panic backtrace firehose.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Duration;

use spl_frontend::sexp::Sexp;
use spl_numeric::Complex;
use spl_templates::{ExpandOptions, TemplateTable};

/// What kind of disagreement (or worse) the oracle found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugClass {
    /// A panic escaped one of the stages (caught at the oracle boundary).
    Panic,
    /// Dense and VM both computed, with numerically different results.
    Mismatch,
    /// One oracle accepted the formula, the other rejected it.
    AcceptDisagree,
    /// The native kernel's output disagrees with the dense reference.
    NativeMismatch,
    /// The native kernel crashed (signal) in its sandbox.
    NativeCrash,
    /// The native kernel exceeded its time budget.
    NativeHang,
    /// The native pipeline rejected a formula both other oracles ran.
    NativeReject,
    /// The VM's resolved execution engine disagrees with its checked
    /// reference executor (bitwise) or with the dense reference.
    EngineMismatch,
}

impl BugClass {
    /// A stable kebab-case name, used in reproducer filenames and
    /// telemetry counters.
    pub fn name(&self) -> &'static str {
        match self {
            BugClass::Panic => "panic",
            BugClass::Mismatch => "oracle-mismatch",
            BugClass::AcceptDisagree => "accept-disagree",
            BugClass::NativeMismatch => "native-mismatch",
            BugClass::NativeCrash => "native-crash",
            BugClass::NativeHang => "native-hang",
            BugClass::NativeReject => "native-reject",
            BugClass::EngineMismatch => "engine-mismatch",
        }
    }
}

impl std::fmt::Display for BugClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A confirmed disagreement, with enough context to triage.
#[derive(Debug, Clone)]
pub struct Bug {
    /// The bug class (dedup key for reproducer emission).
    pub class: BugClass,
    /// Which stage observed it (`"dense"`, `"vm"`, `"native"`, ...).
    pub stage: String,
    /// Human-readable detail (error strings, the first diverging lane).
    pub detail: String,
}

/// The oracle's verdict on one formula.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// All enabled oracles computed the same `n`-point result.
    AgreeOk {
        /// The formula's vector size.
        n: usize,
    },
    /// All enabled oracles rejected the formula with typed errors.
    AgreeReject,
    /// The formula was too large to evaluate numerically.
    Skipped,
    /// A genuine disagreement or an escaped panic.
    Bug(Bug),
}

/// The differential oracle configuration.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Scaled elementwise tolerance for numeric agreement.
    pub tolerance: f64,
    /// Largest vector size evaluated numerically; larger formulas are
    /// [`Verdict::Skipped`] after the shape cross-check.
    pub max_eval: usize,
    /// Whether to run the native (`cc` + fork sandbox) stage.
    pub native: bool,
    /// Sandbox execution timeout for the native stage.
    pub native_timeout: Duration,
    /// Whether to run the VM engine stage: full pipeline to the VM,
    /// resolved engine vs. reference executor (bitwise) vs. dense.
    pub vm_engine: bool,
    /// Inject the deliberately miscompiling test pass into every
    /// compiler the oracle builds (exercises miscompile localization;
    /// only observable through the `native`/`vm_engine` stages, which
    /// run the optimizer).
    pub inject_buggy_pass: bool,
}

impl Default for Oracle {
    fn default() -> Self {
        Oracle {
            tolerance: 1e-9,
            max_eval: 4096,
            native: false,
            native_timeout: Duration::from_secs(10),
            vm_engine: false,
            inject_buggy_pass: false,
        }
    }
}

/// The deterministic workload every oracle runs: a sin/cos ramp, no
/// special symmetry that could mask index bugs.
pub fn fuzz_input(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            Complex::new((0.7 * t + 0.3).sin(), (1.3 * t - 0.1).cos())
        })
        .collect()
}

impl Oracle {
    /// Checks one formula S-expression against all enabled oracles.
    pub fn check(&self, sexp: &Sexp) -> Verdict {
        let table = TemplateTable::builtin();
        let max = self.max_eval.min(MAX_EVAL_HARD);
        let dense = quiet_catch(|| dense_result(sexp, max));
        let vm = quiet_catch(|| vm_result(sexp, &table, max));
        let (dense, vm) = match (dense, vm) {
            (Ok(d), Ok(v)) => (d, v),
            (Err(p), _) => {
                return Verdict::Bug(Bug {
                    class: BugClass::Panic,
                    stage: "dense".into(),
                    detail: p,
                })
            }
            (_, Err(p)) => {
                return Verdict::Bug(Bug {
                    class: BugClass::Panic,
                    stage: "vm".into(),
                    detail: p,
                })
            }
        };
        match (dense, vm) {
            (Err(_), Err(_)) => Verdict::AgreeReject,
            (Ok(_), Err(e)) => Verdict::Bug(Bug {
                class: BugClass::AcceptDisagree,
                stage: "vm".into(),
                detail: format!("dense accepts, vm rejects: {e}"),
            }),
            (Err(e), Ok(_)) => Verdict::Bug(Bug {
                class: BugClass::AcceptDisagree,
                stage: "dense".into(),
                detail: format!("vm accepts, dense rejects: {e}"),
            }),
            (Ok(None), Ok(_)) | (Ok(_), Ok(None)) => Verdict::Skipped,
            (Ok(Some(d)), Ok(Some(v))) => {
                if let Some(detail) = self.compare(&d, &v) {
                    return Verdict::Bug(Bug {
                        class: BugClass::Mismatch,
                        stage: "dense-vs-vm".into(),
                        detail,
                    });
                }
                if self.native {
                    if let Some(bug) = self.native_check(sexp, &d) {
                        return Verdict::Bug(bug);
                    }
                }
                if self.vm_engine {
                    if let Some(bug) = self.vm_engine_check(sexp, &d) {
                        return Verdict::Bug(bug);
                    }
                }
                Verdict::AgreeOk { n: d.len() }
            }
        }
    }

    /// A full-pipeline compiler configured like the oracle's `native`
    /// and `vm_engine` stages build it (including the injected buggy
    /// pass when enabled).
    fn compiler(&self) -> spl_compiler::Compiler {
        spl_compiler::Compiler::with_options(spl_compiler::CompilerOptions {
            inject_buggy_pass: self.inject_buggy_pass,
            ..spl_compiler::CompilerOptions::default()
        })
    }

    /// Recompiles one formula under per-pass translation validation
    /// (abort-on-mismatch, no dump files) and returns the name of the
    /// first optimization pass whose output diverged from the probe
    /// reference — the miscompile localization behind
    /// `splfuzz --localize`. `None` when every pass validates (the bug,
    /// if any, is not an optimizer miscompile) or when compilation
    /// fails for an unrelated reason.
    pub fn localize_pass(&self, sexp: &Sexp) -> Option<String> {
        let mut compiler = spl_compiler::Compiler::with_options(spl_compiler::CompilerOptions {
            inject_buggy_pass: self.inject_buggy_pass,
            verify_passes: Some(spl_compiler::passes::Validation {
                dump_dir: None,
                ..spl_compiler::passes::Validation::default()
            }),
            ..spl_compiler::CompilerOptions::default()
        });
        match quiet_catch(|| compiler.compile_formula_str(&sexp.to_string())) {
            Ok(Err(spl_compiler::CompileError::MiscompilingPass { pass, .. })) => Some(pass),
            _ => None,
        }
    }

    /// `None` when equal within tolerance, else the first divergence.
    fn compare(&self, a: &[Complex], b: &[Complex]) -> Option<String> {
        if a.len() != b.len() {
            return Some(format!("output lengths {} vs {}", a.len(), b.len()));
        }
        let scale = 1.0 + a.iter().map(|v| v.norm()).fold(0.0, f64::max);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            if (*x - *y).norm() > self.tolerance * scale {
                return Some(format!("lane {i}: {x} vs {y} (scale {scale:.3e})"));
            }
        }
        None
    }

    /// Runs the full native pipeline and compares against the dense
    /// reference `want`; `None` when it agrees.
    fn native_check(&self, sexp: &Sexp, want: &[Complex]) -> Option<Bug> {
        use spl_native::NativeError;
        let bug = |class: BugClass, detail: String| {
            Some(Bug {
                class,
                stage: "native".into(),
                detail,
            })
        };
        let src = format!("#language c\n#codetype real\n{sexp}\n");
        let mut compiler = self.compiler();
        let unit = match quiet_catch(|| compiler.compile_source(&src).map(|mut units| units.pop()))
        {
            Err(p) => return bug(BugClass::Panic, p),
            Ok(Err(e)) => return bug(BugClass::NativeReject, format!("compile: {e}")),
            Ok(Ok(None)) => return bug(BugClass::NativeReject, "no unit emitted".into()),
            Ok(Ok(Some(u))) => u,
        };
        let kernel = match spl_native::NativeKernel::compile_with(
            &unit,
            &spl_native::BuildOptions::default(),
        ) {
            Ok(k) => k,
            Err(e) => return bug(BugClass::NativeReject, format!("cc: {e}")),
        };
        // Real-typed kernels take interleaved re/im pairs; a width that
        // disagrees with the dense reference is itself a pipeline bug.
        let cols = kernel.n_in / 2;
        if kernel.n_out != 2 * want.len() || kernel.n_in % 2 != 0 {
            return bug(
                BugClass::NativeMismatch,
                format!(
                    "kernel I/O width {}x{} vs dense output {}",
                    kernel.n_in,
                    kernel.n_out,
                    want.len()
                ),
            );
        }
        let x = interleave(&fuzz_input(cols));
        let mut y = vec![0.0; kernel.n_out];
        match kernel.run_sandboxed(&x, &mut y, self.native_timeout) {
            Ok(()) => {}
            Err(NativeError::Crashed(d)) => return bug(BugClass::NativeCrash, d),
            Err(NativeError::Timeout(d)) => return bug(BugClass::NativeHang, d),
            Err(e) => return bug(BugClass::NativeReject, e.to_string()),
        }
        let got = deinterleave(&y);
        self.compare(want, &got)
            .and_then(|d| bug(BugClass::NativeMismatch, d))
    }

    /// Runs the full pipeline down to the VM and cross-checks the
    /// resolved engine against the reference executor bit-for-bit, and
    /// against the dense reference `want` within tolerance. Pipeline
    /// rejects are not this stage's concern (the accept/reject
    /// cross-check belongs to dense-vs-vm) and return `None`.
    fn vm_engine_check(&self, sexp: &Sexp, want: &[Complex]) -> Option<Bug> {
        let bug = |class: BugClass, detail: String| {
            Some(Bug {
                class,
                stage: "vm-engine".into(),
                detail,
            })
        };
        let mut compiler = self.compiler();
        let unit = match quiet_catch(|| compiler.compile_formula_str(&sexp.to_string())) {
            Err(p) => return bug(BugClass::Panic, p),
            Ok(Err(_)) => return None,
            Ok(Ok(u)) => u,
        };
        let mut prog = match quiet_catch(|| spl_vm::lower(&unit.program)) {
            Err(p) => return bug(BugClass::Panic, p),
            Ok(Err(_)) => return None,
            Ok(Ok(p)) => p,
        };
        // The engine cross-checks below demand bit-exactness, which
        // only the never-fused mode guarantees; pin FMA off so a
        // future default flip cannot silently weaken this stage. (FMA
        // accuracy has its own ULP-bound test in `spl-vm`.)
        prog.set_fma(false);
        if prog.n_out != 2 * want.len() || prog.n_in % 2 != 0 {
            return bug(
                BugClass::EngineMismatch,
                format!(
                    "VM I/O width {}x{} vs dense output {}",
                    prog.n_in,
                    prog.n_out,
                    want.len()
                ),
            );
        }
        let x = interleave(&fuzz_input(prog.n_in / 2));
        let mut y_ref = vec![0.0; prog.n_out];
        let mut y_new = vec![0.0; prog.n_out];
        let mut st = spl_vm::VmState::new(&prog);
        if let Err(p) = quiet_catch(|| prog.run_reference(&x, &mut y_ref, &mut st)) {
            return bug(BugClass::Panic, p);
        }
        if let Err(p) = quiet_catch(|| prog.run(&x, &mut y_new, &mut st)) {
            return bug(BugClass::Panic, p);
        }
        if let Some(i) = (0..y_ref.len()).find(|&i| y_ref[i].to_bits() != y_new[i].to_bits()) {
            return bug(
                BugClass::EngineMismatch,
                format!(
                    "resolved vs reference at lane {i}: {:?} vs {:?} ({})",
                    y_new[i],
                    y_ref[i],
                    match prog.resolve_fallback() {
                        Some(why) => format!("unresolved: {why}"),
                        None => "resolved".into(),
                    }
                ),
            );
        }
        // Third leg: when a vector backend is active, re-run with the
        // scalar fallback forced and demand bit-identity with the
        // vector run — the lane backends promise exactly the scalar
        // IEEE-754 operations, so any drift is an engine bug. (If
        // scalar was already forced — env var or caller — `width()`
        // is 0 and this leg is the same run twice; skip it.)
        if spl_vm::simd::width() != 0 {
            let mut y_scalar = vec![0.0; prog.n_out];
            spl_vm::simd::set_force_scalar(true);
            let r = quiet_catch(|| prog.run(&x, &mut y_scalar, &mut st));
            spl_vm::simd::set_force_scalar(false);
            if let Err(p) = r {
                return bug(BugClass::Panic, p);
            }
            if let Some(i) = (0..y_new.len()).find(|&i| y_scalar[i].to_bits() != y_new[i].to_bits())
            {
                return bug(
                    BugClass::EngineMismatch,
                    format!(
                        "vector vs forced-scalar at lane {i}: {:?} vs {:?} (backend {})",
                        y_new[i],
                        y_scalar[i],
                        spl_vm::simd::backend_name()
                    ),
                );
            }
        }
        self.compare(want, &deinterleave(&y_new))
            .and_then(|d| bug(BugClass::EngineMismatch, format!("vs dense: {d}")))
    }
}

/// Dense-reference evaluation: typed formula, checked dims, structural
/// apply. `Ok(None)` when the formula is too large to evaluate.
#[allow(clippy::type_complexity)]
fn dense_result(sexp: &Sexp, max: usize) -> Result<Option<Vec<Complex>>, String> {
    let f = spl_formula::formula_from_sexp(sexp, &HashMap::new()).map_err(|e| e.to_string())?;
    let (rows, cols) = f.checked_dims().map_err(|e| e.to_string())?;
    if cols > max || rows > max {
        return Ok(None);
    }
    spl_formula::dense::apply(&f, &fuzz_input(cols))
        .map(Some)
        .map_err(|e| e.to_string())
}

/// VM evaluation: template expansion to i-code, then the interpreter.
#[allow(clippy::type_complexity)]
fn vm_result(
    sexp: &Sexp,
    table: &TemplateTable,
    max: usize,
) -> Result<Option<Vec<Complex>>, String> {
    let prog = spl_templates::expand_formula(sexp, table, &ExpandOptions::default())
        .map_err(|e| e.to_string())?;
    if prog.n_in > max || prog.n_out > max {
        return Ok(None);
    }
    spl_icode::interp::run(&prog, &fuzz_input(prog.n_in))
        .map(Some)
        .map_err(|e| e.to_string())
}

/// Hard evaluation-size ceiling, independent of [`Oracle::max_eval`]
/// (kept conservative so a mutated size cannot OOM the fuzzer).
const MAX_EVAL_HARD: usize = 1 << 12;

fn interleave(x: &[Complex]) -> Vec<f64> {
    x.iter().flat_map(|c| [c.re, c.im]).collect()
}

fn deinterleave(y: &[f64]) -> Vec<Complex> {
    y.chunks_exact(2)
        .map(|c| Complex::new(c[0], c[1]))
        .collect()
}

thread_local! {
    static CATCHING: Cell<bool> = const { Cell::new(false) };
}

/// `catch_unwind` with a process-wide hook that stays quiet for panics
/// we are catching on purpose and defers to the previous hook for
/// everything else.
fn quiet_catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !CATCHING.with(Cell::get) {
                prev(info);
            }
        }));
    });
    CATCHING.with(|c| c.set(true));
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    CATCHING.with(|c| c.set(false));
    r.map_err(|e| {
        e.downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic (non-string payload)".into())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parse_formula;

    fn check(src: &str) -> Verdict {
        Oracle::default().check(&parse_formula(src).unwrap())
    }

    #[test]
    fn paper_factorization_agrees() {
        let v = check("(compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2))");
        assert!(matches!(v, Verdict::AgreeOk { n: 4 }), "{v:?}");
    }

    #[test]
    fn full_vocabulary_agrees() {
        for src in [
            "(F 5)",
            "(J 4)",
            "(direct-sum (F 2) (I 3))",
            "(diagonal (1 2 3))",
            "(permutation (3 1 2))",
            "(matrix (1 2) (3 4))",
            "(tensor (I 1) (F 3) (I 1))",
        ] {
            let v = check(src);
            assert!(matches!(v, Verdict::AgreeOk { .. }), "{src}: {v:?}");
        }
    }

    #[test]
    fn invalid_formulas_reject_on_both_sides() {
        for src in ["(L 6 4)", "(T 9 2)", "(compose (F 2) (F 3))", "(Q 4)"] {
            let v = check(src);
            assert!(matches!(v, Verdict::AgreeReject), "{src}: {v:?}");
        }
    }

    #[test]
    fn oversized_formulas_are_skipped_not_oom() {
        let v = check("(tensor (I 4096) (I 4096))");
        assert!(matches!(v, Verdict::Skipped), "{v:?}");
    }

    #[test]
    fn quiet_catch_reports_panics() {
        let r = quiet_catch(|| panic!("boom {}", 42));
        assert_eq!(r.unwrap_err(), "boom 42");
        assert_eq!(quiet_catch(|| 7).unwrap(), 7);
    }
}
