//! Delta-debugging shrinker for formula S-expressions.
//!
//! Given a formula that triggers a bug and a *property* closure that
//! answers "does this candidate still trigger the same bug class?",
//! the shrinker greedily applies structure-reducing rewrites until no
//! candidate both (a) still reproduces and (b) is strictly smaller
//! under the ([`Sexp::node_count`], integer-magnitude) measure. The
//! result is the minimal reproducer written next to each bug report.
//!
//! Rewrites tried at every node, smallest-result-first:
//!
//! * **hoist** — replace an operator node by one of its operands
//!   (the classic delta-debugging subtree promotion);
//! * **drop** — remove one operand from an n-ary node
//!   (`compose`/`tensor`/`direct-sum` and element lists);
//! * **integer shrink** — rewrite an integer toward `1` (then halve,
//!   then decrement), which shrinks sizes and strides without
//!   reshaping the tree.
//!
//! The loop is bounded by [`ShrinkConfig::max_steps`] property
//! evaluations, so a flaky property cannot spin forever.

use spl_frontend::sexp::Sexp;

/// Shrinker budget knobs.
#[derive(Debug, Clone, Copy)]
pub struct ShrinkConfig {
    /// Maximum number of property evaluations before giving up and
    /// returning the best reproducer found so far.
    pub max_steps: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { max_steps: 2_000 }
    }
}

/// The size measure the shrinker minimizes: node count first, then the
/// sum of integer magnitudes (so `(F 2)` beats `(F 64)`).
pub fn measure(s: &Sexp) -> (usize, u64) {
    fn ints(s: &Sexp, acc: &mut u64) {
        match s {
            Sexp::Int(v) => *acc = acc.saturating_add(v.unsigned_abs()),
            Sexp::List(items) => items.iter().for_each(|i| ints(i, acc)),
            _ => {}
        }
    }
    let mut mag = 0;
    ints(s, &mut mag);
    (s.node_count(), mag)
}

/// Shrinks `sexp` while `still_fails` keeps returning `true` for the
/// shrunk candidate. Returns the smallest reproducer found (possibly
/// the input itself) and the number of property evaluations spent.
pub fn shrink(
    sexp: &Sexp,
    cfg: &ShrinkConfig,
    mut still_fails: impl FnMut(&Sexp) -> bool,
) -> (Sexp, usize) {
    let mut best = sexp.clone();
    let mut spent = 0usize;
    loop {
        let mut improved = false;
        let mut cands = candidates(&best);
        // Try the most aggressive reductions first: a hoist that lands
        // accepts the whole subtree's savings in one evaluation.
        cands.sort_by_key(measure);
        for cand in cands {
            if spent >= cfg.max_steps {
                return (best, spent);
            }
            if measure(&cand) >= measure(&best) {
                continue;
            }
            spent += 1;
            if still_fails(&cand) {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return (best, spent);
        }
    }
}

/// All single-rewrite reductions of `s` (deduplicated, any depth).
fn candidates(s: &Sexp) -> Vec<Sexp> {
    let mut out = Vec::new();
    rewrites_at(s, &mut |cand| out.push(cand));
    out.sort_by_key(|c| format!("{c}"));
    out.dedup_by_key(|c| format!("{c}"));
    out
}

/// Calls `emit` with every tree obtained by one rewrite somewhere in
/// `s`. Recursion rebuilds the spine above the rewritten node. The
/// callback is `dyn` so recursion depth does not stack closure types
/// (which would hit the monomorphization recursion limit).
fn rewrites_at(s: &Sexp, emit: &mut dyn FnMut(Sexp)) {
    match s {
        Sexp::Int(v) => {
            for smaller in int_shrinks(*v) {
                emit(Sexp::Int(smaller));
            }
        }
        Sexp::List(items) => {
            // Hoist: the node collapses to one of its operands.
            for item in items.iter().skip(1) {
                emit(item.clone());
            }
            // Drop: remove one operand (keep the head).
            if items.len() > 2 {
                for k in 1..items.len() {
                    let mut rest = items.clone();
                    rest.remove(k);
                    emit(Sexp::List(rest));
                }
            }
            // Recurse: rewrite inside one operand.
            for (k, item) in items.iter().enumerate() {
                rewrites_at(item, &mut |cand| {
                    let mut rest = items.clone();
                    rest[k] = cand;
                    emit(Sexp::List(rest));
                });
            }
        }
        _ => {}
    }
}

/// Candidate replacements for an integer, most aggressive first.
fn int_shrinks(v: i64) -> Vec<i64> {
    let mut out = Vec::new();
    for cand in [1, v / 2, v - 1] {
        if cand != v && cand.abs() < v.abs() && !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spl_frontend::parse_formula;

    fn p(src: &str) -> Sexp {
        parse_formula(src).unwrap()
    }

    /// Property: the formula still contains an `(L n s)` with a
    /// non-divisor stride — the archetypal shape bug.
    fn has_bad_stride(s: &Sexp) -> bool {
        match s {
            Sexp::List(items) => {
                if s.head() == Some("L") {
                    if let (Some(Sexp::Int(n)), Some(Sexp::Int(k))) = (items.get(1), items.get(2)) {
                        if *n > 0 && *k > 0 && n % k != 0 {
                            return true;
                        }
                    }
                }
                items.iter().any(has_bad_stride)
            }
            _ => false,
        }
    }

    #[test]
    fn shrinks_to_the_offending_subtree() {
        let big = p("(compose (tensor (F 2) (I 2) (F 2) (I 2)) (L 6 4) (tensor (I 4) (F 2)))");
        let (small, spent) = shrink(&big, &ShrinkConfig::default(), has_bad_stride);
        assert!(has_bad_stride(&small), "shrunk away the bug: {small}");
        assert!(
            small.node_count() <= 4,
            "not minimal ({} nodes): {small}",
            small.node_count()
        );
        assert!(spent > 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let big = p("(tensor (compose (L 10 4) (F 10)) (direct-sum (F 3) (J 5)))");
        let a = shrink(&big, &ShrinkConfig::default(), has_bad_stride);
        let b = shrink(&big, &ShrinkConfig::default(), has_bad_stride);
        assert_eq!(format!("{}", a.0), format!("{}", b.0));
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn respects_the_step_budget() {
        let big = p("(compose (L 6 4) (L 6 4) (L 6 4) (L 6 4))");
        let (_, spent) = shrink(&big, &ShrinkConfig { max_steps: 3 }, has_bad_stride);
        assert!(spent <= 3);
    }

    #[test]
    fn integers_shrink_toward_one() {
        assert_eq!(int_shrinks(64), vec![1, 32, 63]);
        assert_eq!(int_shrinks(2), vec![1]);
        assert_eq!(int_shrinks(1), vec![0]);
        assert_eq!(int_shrinks(0), Vec::<i64>::new());
    }

    #[test]
    fn integer_shrinking_reaches_the_smallest_bad_stride() {
        let tiny = p("(L 6 4)");
        let (small, _) = shrink(&tiny, &ShrinkConfig::default(), has_bad_stride);
        assert_eq!(format!("{small}"), "(L 1 2)");
    }
}
