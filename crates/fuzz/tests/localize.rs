//! End-to-end miscompile localization: `splfuzz --localize` against a
//! compiler with a deliberately miscompiling pass injected must (a)
//! catch the miscompile through the differential oracle, (b) shrink the
//! reproducer, and (c) blame the injected pass *by name* via per-pass
//! translation validation.

use spl_fuzz::{run, FuzzConfig, GenConfig, Oracle};

fn localizing_config() -> FuzzConfig {
    FuzzConfig {
        seed: 3,
        count: 15,
        gen: GenConfig {
            p_invalid: 0.0,
            ..GenConfig::default()
        },
        oracle: Oracle {
            vm_engine: true,
            inject_buggy_pass: true,
            ..Oracle::default()
        },
        localize: true,
        out_dir: None,
        ..FuzzConfig::default()
    }
}

#[test]
fn injected_buggy_pass_is_caught_and_localized_by_name() {
    let report = run(&localizing_config());
    assert!(
        !report.bugs.is_empty(),
        "injected miscompiling pass escaped the differential oracle"
    );
    let bug = &report.bugs[0];
    assert_eq!(
        bug.guilty_pass.as_deref(),
        Some(spl_compiler::passes::testing::DROP_OP_NAME),
        "localization blamed the wrong pass: {:?}",
        bug.guilty_pass
    );
    assert!(
        bug.shrunk.node_count() <= bug.original.node_count(),
        "shrinker grew the reproducer"
    );
    assert_eq!(
        report.telemetry.counter("fuzz.localized"),
        Some(1),
        "fuzz.localized counter missing"
    );
}

#[test]
fn clean_compiler_localizes_nothing() {
    let cfg = FuzzConfig {
        oracle: Oracle {
            vm_engine: true,
            inject_buggy_pass: false,
            ..Oracle::default()
        },
        ..localizing_config()
    };
    let report = run(&cfg);
    assert!(
        report.bugs.is_empty(),
        "clean pipeline reported bugs: {:#?}",
        report.bugs
    );
    assert_eq!(report.telemetry.counter("fuzz.localized"), None);
}
