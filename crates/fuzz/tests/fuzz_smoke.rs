//! Deterministic fuzzing smoke test: the differential oracle must stay
//! silent on a fixed seeded corpus, and the shrinker must stay
//! deterministic and effective under a pinned seed.
//!
//! These tests are the regression net for the whole robustness PR: any
//! future divergence between the dense reference and the template/VM
//! pipeline — or a panic escaping any stage — turns a green run red
//! with a reproducible seed to chase.

use spl_fuzz::{run, shrink, FuzzConfig, GenConfig, Oracle, ShrinkConfig, Verdict};
use spl_numeric::rng::Rng;

/// 200 seeded formulas through dense-vs-VM: zero mismatches, zero
/// panics, zero accept/reject disagreements. The corpus is pinned by
/// the seed, so a failure here is always reproducible.
#[test]
fn two_hundred_seeded_formulas_agree() {
    let cfg = FuzzConfig {
        seed: 1,
        count: 200,
        gen: GenConfig::default(),
        out_dir: None,
        ..FuzzConfig::default()
    };
    let report = run(&cfg);
    assert_eq!(report.total(), 200);
    assert!(
        report.bugs.is_empty(),
        "differential bugs on the pinned corpus: {:#?}",
        report.bugs
    );
    assert_eq!(report.duplicate_bugs, 0);
    assert!(
        report.agree_ok >= 100,
        "corpus degenerated: only {} cases evaluated",
        report.agree_ok
    );
    assert_eq!(report.telemetry.counter("fuzz.cases"), Some(200));
}

/// The same campaign twice produces identical verdict counts — the
/// generator derives every case from (seed, index) alone.
#[test]
fn campaigns_are_reproducible() {
    let cfg = FuzzConfig {
        seed: 42,
        count: 120,
        out_dir: None,
        ..FuzzConfig::default()
    };
    let (a, b) = (run(&cfg), run(&cfg));
    assert_eq!(a.agree_ok, b.agree_ok);
    assert_eq!(a.agree_reject, b.agree_reject);
    assert_eq!(a.skipped, b.skipped);
    assert_eq!(a.bugs.len(), b.bugs.len());
}

/// Pinned-seed shrinker bound: for a generated formula flagged by a
/// poisoned oracle (negative tolerance → every computed case
/// "mismatches"), the minimized reproducer must come out tiny.
#[test]
fn shrinker_minimizes_a_pinned_generated_case() {
    let poisoned = Oracle {
        tolerance: -1.0,
        ..Oracle::default()
    };
    let cfg = GenConfig {
        p_invalid: 0.0,
        ..GenConfig::default()
    };
    // Scan the pinned stream for the first formula the poisoned oracle
    // flags (i.e. the first one that actually computes).
    let mut rng = Rng::new(9001);
    let (case, sexp) = (0..50)
        .map(|i| (i, spl_fuzz::gen_formula(&mut rng, &cfg)))
        .find(|(_, s)| matches!(poisoned.check(s), Verdict::Bug(_)))
        .expect("pinned stream produced no computable formula");
    let before = sexp.node_count();
    let (small, spent) = shrink(&sexp, &ShrinkConfig::default(), |cand| {
        matches!(poisoned.check(cand), Verdict::Bug(_))
    });
    assert!(
        matches!(poisoned.check(&small), Verdict::Bug(_)),
        "shrinker lost the bug (case {case})"
    );
    assert!(
        small.node_count() <= 4,
        "not minimal: {} nodes from {} ({small})",
        small.node_count(),
        before
    );
    assert!(spent <= ShrinkConfig::default().max_steps);

    // And it is bit-for-bit deterministic.
    let (again, spent2) = shrink(&sexp, &ShrinkConfig::default(), |cand| {
        matches!(poisoned.check(cand), Verdict::Bug(_))
    });
    assert_eq!(format!("{small}"), format!("{again}"));
    assert_eq!(spent, spent2);
}
