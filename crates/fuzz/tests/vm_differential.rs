//! Differential test for the VM's resolved execution engine.
//!
//! Three independent executions of the same compiled program must agree
//! bit-for-bit: the i-code interpreter (semantics oracle), the VM's
//! op-at-a-time reference executor, and the fused cursor-based resolved
//! engine. The corpus is the pinned fuzz stream (seed 1, 200 cases,
//! default generator knobs) — the same formulas `splfuzz` replays —
//! plus hand-built programs covering the engine's tricky corners:
//! zero-trip loops, deep nests, and aliased temporaries.

use spl_compiler::Compiler;
use spl_fuzz::{gen_formula, GenConfig};
use spl_icode::{Affine, BinOp, IProgram, Instr, LoopVar, Place, Value, VecKind, VecRef};
use spl_numeric::rng::Rng;
use spl_numeric::Complex;
use spl_vm::{lower, VmProgram, VmState};

/// The per-case generator stream `spl_fuzz::run` uses (a SplitMix64
/// jump keyed by seed and case index), replicated here so the corpus
/// is pinned to exactly what `splfuzz --seed 1 --count 200` generates.
fn case_rng(seed: u64, case: u64) -> Rng {
    Rng::new(
        seed ^ case
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0xD1B5_4A32_D192_ED03),
    )
}

/// The oracle workload: a sin/cos ramp with no masking symmetry,
/// interleaved for real-typed programs.
fn workload(n_in: usize) -> (Vec<Complex>, Vec<f64>) {
    let logical: Vec<Complex> = (0..n_in / 2)
        .map(|i| {
            let t = i as f64;
            Complex::new((0.7 * t + 0.3).sin(), (1.3 * t - 0.1).cos())
        })
        .collect();
    let flat: Vec<f64> = logical.iter().flat_map(|c| [c.re, c.im]).collect();
    let interp_in: Vec<Complex> = flat.iter().map(|&v| Complex::real(v)).collect();
    (interp_in, flat)
}

/// Runs one lowered program through all three executions and demands
/// bitwise agreement. Returns whether the resolved engine (rather than
/// the reference fallback) actually ran.
fn check_three_way(prog: &IProgram, vm: &VmProgram, label: &str) -> bool {
    let (interp_in, x) = workload(vm.n_in);
    let interp_out = spl_icode::interp::run(prog, &interp_in).expect("interpreter accepts");
    let mut y_ref = vec![0.0; vm.n_out];
    let mut y_new = vec![0.0; vm.n_out];
    vm.run_reference(&x, &mut y_ref, &mut VmState::new(vm));
    vm.run(&x, &mut y_new, &mut VmState::new(vm));
    for i in 0..vm.n_out {
        assert_eq!(
            y_new[i].to_bits(),
            y_ref[i].to_bits(),
            "{label}: resolved vs reference at lane {i}: {} vs {}",
            y_new[i],
            y_ref[i]
        );
        assert_eq!(
            y_ref[i].to_bits(),
            interp_out[i].re.to_bits(),
            "{label}: vm vs interpreter at lane {i}: {} vs {}",
            y_ref[i],
            interp_out[i].re
        );
        assert_eq!(
            interp_out[i].im, 0.0,
            "{label}: real-typed program produced imaginary residue"
        );
    }
    vm.is_resolved()
}

#[test]
fn pinned_corpus_is_bit_identical_across_engines() {
    let cfg = GenConfig::default();
    let mut compiled = 0usize;
    let mut resolved = 0usize;
    for case in 0..200u64 {
        let mut rng = case_rng(1, case);
        let sexp = gen_formula(&mut rng, &cfg);
        // Pipeline rejects (invalid mutants, unsupported constructs)
        // are the accept/reject cross-check's concern, not this test's.
        let mut compiler = Compiler::new();
        let Ok(unit) = compiler.compile_formula_str(&sexp.to_string()) else {
            continue;
        };
        let Ok(vm) = lower(&unit.program) else {
            continue;
        };
        compiled += 1;
        if check_three_way(&unit.program, &vm, &format!("case {case} ({sexp})")) {
            resolved += 1;
        }
    }
    // The corpus must genuinely exercise the engine: most generated
    // formulas compile, and everything that lowers must also resolve
    // (the fallback is for hand-built pathologies, not compiler output).
    assert!(compiled >= 100, "only {compiled}/200 corpus cases compiled");
    assert_eq!(
        resolved, compiled,
        "compiler output fell back to the reference executor"
    );
}

#[test]
fn corpus_vector_and_forced_scalar_runs_are_bit_identical() {
    // Every pinned `tests/corpus/` formula must produce bit-identical
    // output whether marked loops run through the lane backend or
    // through the forced scalar fallback — the equivalence the fuzz
    // oracle's third leg checks per case, pinned here on the
    // pass-validation corpus. A no-op when the host (or
    // SPL_VM_FORCE_SCALAR) gives no vector backend.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("tests/corpus exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "spl"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "empty corpus at {dir}");
    let mut vectorized = 0u64;
    for path in &entries {
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path).unwrap();
        let formula: String = src
            .lines()
            .filter(|l| !l.trim_start().starts_with(';'))
            .collect();
        let mut compiler = Compiler::new();
        let unit = compiler
            .compile_formula_str(&formula)
            .unwrap_or_else(|e| panic!("{label}: corpus formula must compile: {e}"));
        let vm = lower(&unit.program).unwrap_or_else(|e| panic!("{label}: must lower: {e}"));
        vectorized += vm.resolve_stats().map_or(0, |s| s.vec_loops);
        let (_, x) = workload(vm.n_in);
        let mut y_vec = vec![0.0; vm.n_out];
        let mut y_sc = vec![0.0; vm.n_out];
        vm.run(&x, &mut y_vec, &mut VmState::new(&vm));
        spl_vm::simd::set_force_scalar(true);
        vm.run(&x, &mut y_sc, &mut VmState::new(&vm));
        spl_vm::simd::set_force_scalar(false);
        for i in 0..vm.n_out {
            assert_eq!(
                y_vec[i].to_bits(),
                y_sc[i].to_bits(),
                "{label}: vector vs forced-scalar at lane {i}: {} vs {}",
                y_vec[i],
                y_sc[i]
            );
        }
    }
    // The corpus must actually exercise the vector path: at least the
    // looped formulas carry verified lane plans.
    assert!(
        vectorized >= 1,
        "no corpus formula produced a verified vector loop"
    );
}

fn vec_ref(kind: VecKind, c: i64, terms: &[(i64, u32)]) -> Place {
    Place::Vec(VecRef {
        kind,
        idx: Affine {
            c,
            terms: terms.iter().map(|&(k, v)| (k, LoopVar(v))).collect(),
        },
    })
}

#[test]
fn zero_trip_loops_agree() {
    // An empty loop (lo > hi) must leave its body unexecuted, including
    // a body whose subscripts would be out of bounds if it ever ran.
    // The i-code validator rejects empty loops before the interpreter
    // runs, so this compares the two VM engines only.
    let prog = IProgram {
        instrs: vec![
            Instr::Bin {
                op: BinOp::Add,
                dst: vec_ref(VecKind::Out, 0, &[]),
                a: Value::Place(vec_ref(VecKind::In, 0, &[])),
                b: Value::Const(Complex::real(1.0)),
            },
            Instr::DoStart {
                var: LoopVar(0),
                lo: 3,
                hi: 1,
                unroll: false,
            },
            Instr::Bin {
                op: BinOp::Mul,
                dst: vec_ref(VecKind::Out, -100, &[(1, 0)]),
                a: Value::Place(vec_ref(VecKind::In, 0, &[(50, 0)])),
                b: Value::Const(Complex::real(2.0)),
            },
            Instr::DoEnd,
            Instr::Bin {
                op: BinOp::Sub,
                dst: vec_ref(VecKind::Out, 1, &[]),
                a: Value::Place(vec_ref(VecKind::In, 1, &[])),
                b: Value::Const(Complex::real(0.25)),
            },
        ],
        n_in: 2,
        n_out: 2,
        n_loop: 1,
        complex: false,
        ..IProgram::empty()
    };
    let vm = lower(&prog).unwrap();
    assert!(vm.is_resolved(), "{:?}", vm.resolve_fallback());
    let (_, x) = workload(vm.n_in);
    let mut y_ref = vec![0.0; vm.n_out];
    let mut y_new = vec![0.0; vm.n_out];
    vm.run_reference(&x, &mut y_ref, &mut VmState::new(&vm));
    vm.run(&x, &mut y_new, &mut VmState::new(&vm));
    assert_eq!(y_ref, y_new);
    assert_eq!(y_new, [x[0] + 1.0, x[1] - 0.25]);
}

#[test]
fn nested_loops_with_shared_subscripts_agree() {
    // out[4i + j] accumulates in[4j + i] over a 4x4 nest — transposed
    // access, both variables live in both subscripts.
    let prog = IProgram {
        instrs: vec![
            Instr::DoStart {
                var: LoopVar(0),
                lo: 0,
                hi: 3,
                unroll: false,
            },
            Instr::DoStart {
                var: LoopVar(1),
                lo: 0,
                hi: 3,
                unroll: false,
            },
            Instr::Bin {
                op: BinOp::Add,
                dst: vec_ref(VecKind::Out, 0, &[(4, 0), (1, 1)]),
                a: Value::Place(vec_ref(VecKind::In, 0, &[(1, 0), (4, 1)])),
                b: Value::Place(vec_ref(VecKind::In, 0, &[(4, 0), (1, 1)])),
            },
            Instr::DoEnd,
            Instr::DoEnd,
        ],
        n_in: 16,
        n_out: 16,
        n_loop: 2,
        complex: false,
        ..IProgram::empty()
    };
    let vm = lower(&prog).unwrap();
    assert!(check_three_way(&prog, &vm, "nested"));
}

#[test]
fn aliased_temp_reads_after_writes_agree() {
    // t[0] is read, overwritten, and re-read inside one loop body; the
    // fusion pass must not pair the ops across the intervening write,
    // and cursor-based addressing must observe the fresh value.
    let prog = IProgram {
        instrs: vec![
            Instr::Bin {
                op: BinOp::Add,
                dst: vec_ref(VecKind::Temp(0), 0, &[]),
                a: Value::Place(vec_ref(VecKind::In, 0, &[])),
                b: Value::Place(vec_ref(VecKind::In, 1, &[])),
            },
            Instr::DoStart {
                var: LoopVar(0),
                lo: 0,
                hi: 3,
                unroll: false,
            },
            // t[0] += in[i]  (read-modify-write of the aliased temp)
            Instr::Bin {
                op: BinOp::Add,
                dst: vec_ref(VecKind::Temp(0), 0, &[]),
                a: Value::Place(vec_ref(VecKind::Temp(0), 0, &[])),
                b: Value::Place(vec_ref(VecKind::In, 0, &[(1, 0)])),
            },
            // out[i] = t[0] - in[i]  (must see the value written above)
            Instr::Bin {
                op: BinOp::Sub,
                dst: vec_ref(VecKind::Out, 0, &[(1, 0)]),
                a: Value::Place(vec_ref(VecKind::Temp(0), 0, &[])),
                b: Value::Place(vec_ref(VecKind::In, 0, &[(1, 0)])),
            },
            Instr::DoEnd,
        ],
        n_in: 4,
        n_out: 4,
        n_loop: 1,
        complex: false,
        ..IProgram::empty()
    };
    let mut prog = prog;
    prog.temps = vec![1];
    prog.validate().expect("hand-built program is well-formed");
    let vm = lower(&prog).unwrap();
    assert!(check_three_way(&prog, &vm, "aliased-temp"));
}
