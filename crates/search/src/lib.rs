#![warn(missing_docs)]

//! The search engine (the SPIRAL component that picks implementations).
//!
//! Reproduces the strategy of paper Section 4:
//!
//! * **Small sizes (2…64)** — dynamic programming over all factorizations
//!   of Equation 10, compiled to straight-line code (full unrolling) and
//!   timed; the fastest formula per size is kept ([`small_search`]).
//! * **Large sizes (2⁷…2²⁰)** — dynamic programming over binary,
//!   right-most Cooley–Tukey splits `F_n = (F_r ⊗ I_s) T (I_r ⊗ F_s) L`
//!   with `r ≤ 64` taken from the small-size winners; a *k-best* variant
//!   keeps the three best plans per size because "the best formula for
//!   one size is not necessarily also the best sub-formula for a larger
//!   size" ([`large_search`]).
//!
//! Costs come from an [`Evaluator`]: [`NativeEvaluator`] compiles the
//! generated C with the host compiler and times real machine code (the
//! paper's methodology); [`MeasuredEvaluator`] times the portable VM
//! instead; [`OpCountEvaluator`] is a deterministic operation-count model
//! used in tests and for "FFTW estimate"-style comparisons.
//!
//! # Fault tolerance
//!
//! An unattended search compiles and runs thousands of machine-generated
//! kernels, so evaluation is hardened end to end:
//!
//! * Measured evaluators **verify** each candidate against the dense
//!   reference semantics (`spl-formula::dense`) before accepting its
//!   timing; miscompiles surface as
//!   [`SearchError::VerificationFailed`] instead of corrupt plans.
//! * [`NativeEvaluator`] compiles with a `cc` timeout and runs/times each
//!   kernel in a forked sandbox, so a crashing or hanging candidate is
//!   classified ([`SearchError::KernelCrashed`], [`SearchError::Timeout`])
//!   rather than fatal.
//! * [`ResilientEvaluator`] degrades per candidate through a tier chain
//!   (native → VM → op-count by default), quarantining verification
//!   failures and counting every degradation in telemetry.
//! * The search loops skip candidates whose evaluation fails (counted as
//!   `search.skipped.<kind>`) and only error when a whole size has no
//!   surviving candidate.
//! * [`small_search_journaled`]/[`large_search_journaled`] persist each
//!   completed size to a CRC-checked append-only journal
//!   (`spl-resilience`), so a killed search resumes where it stopped.
//! * [`FaultyEvaluator`] injects deterministic faults for testing the
//!   whole chain.
//!
//! # Parallel evaluation
//!
//! [`EvaluatorPool`] fans each size's candidates out over a crew of
//! worker evaluators ([`small_search_parallel`],
//! [`large_search_parallel`], and the journaled variants). Formula
//! expansion, compilation, `cc`, and verification run concurrently;
//! wall-clock timing stays serialized behind a single
//! [`MeasurementGate`], and per-candidate results are merged back in
//! candidate order — so with a deterministic evaluator the winners are
//! bit-identical to the serial search at any job count.
//! [`NativeEvaluator`] workers can additionally share one
//! content-addressed compiled-kernel cache
//! ([`NativeEvaluator::with_kernel_cache`]) so identical generated C is
//! compiled by `cc` only once across the whole pool — and, with a disk
//! directory, across runs.
//!
//! # Examples
//!
//! ```
//! use spl_search::{small_search, OpCountEvaluator, SearchConfig};
//!
//! let mut eval = OpCountEvaluator::default();
//! let best = small_search(4, &SearchConfig::default(), &mut eval).unwrap();
//! assert_eq!(best.len(), 4); // sizes 2, 4, 8, 16
//! assert_eq!(best[2].tree.size(), 8);
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use spl_compiler::{Compiler, CompilerOptions, OptLevel};
use spl_generator::fft::{rightmost_splits, FftTree, Rule};
use spl_native::{BuildOptions, CacheOutcome, KernelCache, NativeError};
use spl_numeric::Complex;
use spl_telemetry::Telemetry;
use spl_vm::{describe_policy, lower, measure, VmProgram, VmState};

mod faults;
mod journal;
mod parallel;
mod resilient;
mod wisdom;

pub use faults::FaultyEvaluator;
pub use journal::{
    config_fingerprint, large_search_journaled, large_search_journaled_parallel,
    small_search_journaled, small_search_journaled_parallel,
};
pub(crate) use parallel::{CostSource, SerialSource};
pub use parallel::{EvaluatorPool, MeasurementGate, MeasurementToken, WorkerContext};
pub use resilient::{QuarantineEntry, ResilientEvaluator};
pub use wisdom::{
    cc_fingerprint, large_search_wisdom, large_search_wisdom_parallel, machine_fingerprint,
    plan_features, small_search_wisdom, small_search_wisdom_parallel, transform_key,
    wisdom_from_string, wisdom_to_string, PruneConfig, WisdomDb, WisdomEntry, WisdomError,
    WisdomErrorKind, WisdomSession,
};

/// A structured search failure. Every variant carries human-readable
/// detail; [`SearchError::kind`] gives the stable label used in
/// telemetry counters (`search.failures.<kind>`, `search.skipped.<kind>`).
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The SPL compiler, lowering, or the host `cc` rejected a candidate.
    CompileFailed(String),
    /// Compiling or running a candidate exceeded its time budget.
    Timeout(String),
    /// A candidate kernel died on a signal inside its sandbox.
    KernelCrashed(String),
    /// A candidate produced numerically wrong output against the dense
    /// reference; the candidate is quarantined, its timing discarded.
    VerificationFailed(String),
    /// The wisdom journal is unreadable or was written by a different
    /// search configuration.
    JournalCorrupt(String),
    /// No candidate for a size survived evaluation.
    NoCandidates {
        /// The transform size that has no surviving candidate.
        n: usize,
    },
    /// Every tier of a degradation chain failed for a candidate.
    Exhausted(String),
    /// Wisdom text or a wisdom database entry failed to parse.
    Wisdom(WisdomError),
    /// Anything else (I/O, ...).
    Other(String),
}

impl SearchError {
    /// A short, stable machine-readable label for this failure class.
    pub fn kind(&self) -> &'static str {
        match self {
            SearchError::CompileFailed(_) => "compile_failed",
            SearchError::Timeout(_) => "timeout",
            SearchError::KernelCrashed(_) => "kernel_crashed",
            SearchError::VerificationFailed(_) => "verification_failed",
            SearchError::JournalCorrupt(_) => "journal_corrupt",
            SearchError::NoCandidates { .. } => "no_candidates",
            SearchError::Exhausted(_) => "exhausted",
            SearchError::Wisdom(_) => "wisdom",
            SearchError::Other(_) => "other",
        }
    }
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::CompileFailed(m) => write!(f, "search: compile failed: {m}"),
            SearchError::Timeout(m) => write!(f, "search: timed out: {m}"),
            SearchError::KernelCrashed(m) => write!(f, "search: kernel crashed: {m}"),
            SearchError::VerificationFailed(m) => write!(f, "search: verification failed: {m}"),
            SearchError::JournalCorrupt(m) => write!(f, "search: journal corrupt: {m}"),
            SearchError::NoCandidates { n } => {
                write!(f, "search: no candidate for size {n} survived evaluation")
            }
            SearchError::Exhausted(m) => write!(f, "search: evaluation exhausted: {m}"),
            SearchError::Wisdom(e) => write!(f, "search: {e}"),
            SearchError::Other(m) => write!(f, "search: {m}"),
        }
    }
}

impl Error for SearchError {}

/// Maps a native-layer failure onto the search error taxonomy.
fn native_err(e: NativeError) -> SearchError {
    match &e {
        NativeError::CompileTimeout(_) | NativeError::Timeout(_) => {
            SearchError::Timeout(e.to_string())
        }
        NativeError::Crashed(_) => SearchError::KernelCrashed(e.to_string()),
        NativeError::CompileFailed(_)
        | NativeError::Unsupported(_)
        | NativeError::LoadFailed(_) => SearchError::CompileFailed(e.to_string()),
        NativeError::Io(_) | NativeError::Protocol(_) => SearchError::Other(e.to_string()),
    }
}

/// Search-wide configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Breakdown rule used for splits.
    pub rule: Rule,
    /// Largest leaf transform (the paper uses 64).
    pub leaf_max: usize,
    /// How many best plans to keep per size in the large-size DP
    /// (the paper keeps 3).
    pub keep: usize,
    /// `-B` threshold handed to the compiler (sub-formulas up to this
    /// input size are fully unrolled).
    pub unroll_threshold: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rule: Rule::CooleyTukey,
            leaf_max: 64,
            keep: 3,
            unroll_threshold: 64,
        }
    }
}

/// Compiles a factorization tree the way the paper's experiments do:
/// complex data, real code, leaves unrolled up to the threshold, default
/// optimizations — and lowers it to an executable VM program.
///
/// # Errors
///
/// Propagates compiler and lowering failures.
pub fn compile_tree(tree: &FftTree, unroll_threshold: usize) -> Result<VmProgram, SearchError> {
    let unit = compile_sexp_for_search(
        &tree.to_sexp(),
        unroll_threshold,
        spl_frontend::ast::DataType::Complex,
    )
    .map_err(|e| SearchError::CompileFailed(format!("compiling {}: {e}", tree.describe())))?;
    lower(&unit.program).map_err(|e| SearchError::CompileFailed(e.to_string()))
}

/// Compiles `I_m ⊗ A` for a factorization tree `A`: one program that
/// applies the tree's transform to `m` independent inputs laid out
/// back-to-back. The tensor-product translation (paper Table 2) turns
/// the identity factor into an outer loop over the tree's code, so a
/// server can answer `m` queued same-transform requests with a single
/// dispatch instead of `m` — same configuration as [`compile_tree`]
/// otherwise.
///
/// # Errors
///
/// Propagates compiler and lowering failures; `m = 0` is rejected.
pub fn compile_tree_batched(
    tree: &FftTree,
    m: usize,
    unroll_threshold: usize,
) -> Result<VmProgram, SearchError> {
    if m == 0 {
        return Err(SearchError::CompileFailed("batch factor m = 0".into()));
    }
    let batched =
        spl_formula::Formula::tensor(vec![spl_formula::Formula::identity(m), tree.to_formula()]);
    let sexp = spl_formula::formula_to_sexp(&batched);
    let unit = compile_sexp_for_search(
        &sexp,
        unroll_threshold,
        spl_frontend::ast::DataType::Complex,
    )
    .map_err(|e| {
        SearchError::CompileFailed(format!("compiling (I_{m} tensor {}): {e}", tree.describe()))
    })?;
    lower(&unit.program).map_err(|e| SearchError::CompileFailed(e.to_string()))
}

/// Shared compile plumbing for every evaluator: the paper's experimental
/// configuration (real code, default optimizations, leaves unrolled up to
/// the threshold) over the given data type.
fn compile_sexp_for_search(
    sexp: &spl_frontend::Sexp,
    unroll_threshold: usize,
    datatype: spl_frontend::ast::DataType,
) -> Result<spl_compiler::CompiledUnit, SearchError> {
    let mut compiler = Compiler::with_options(CompilerOptions {
        unroll_threshold: Some(unroll_threshold),
        opt_level: OptLevel::Default,
        ..Default::default()
    });
    let directives = spl_frontend::ast::DirectiveState {
        datatype,
        codetype: spl_frontend::ast::DataType::Real,
        ..Default::default()
    };
    compiler
        .compile_sexp(sexp, &directives)
        .map_err(|e| SearchError::CompileFailed(e.to_string()))
}

/// Largest size verified against the dense reference. Dense application
/// grows quadratically in memory; beyond this the check is skipped (the
/// candidate is still timed).
const VERIFY_MAX_SIZE: usize = 1 << 12;

/// Verification threshold on the benchfft relative RMS metric; generated
/// double-precision FFTs land many orders of magnitude below this, so
/// anything above it is a miscompile, not roundoff.
const VERIFY_TOLERANCE: f64 = 1e-6;

/// The deterministic verification workload: every candidate of a size is
/// checked on the identical complex vector.
fn verification_input(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
        .collect()
}

/// Checks a candidate's computed output against the dense reference
/// semantics of its own formula (`spl-formula::dense` is the independent
/// oracle: it never goes through the compiler backend under test).
///
/// # Errors
///
/// [`SearchError::VerificationFailed`] when the relative RMS error
/// exceeds [`VERIFY_TOLERANCE`].
fn verify_against_dense(tree: &FftTree, got: &[Complex]) -> Result<(), SearchError> {
    let x = verification_input(tree.size());
    let want = spl_formula::dense::apply(&tree.to_formula(), &x)
        .map_err(|e| SearchError::Other(format!("dense reference for {}: {e}", tree.describe())))?;
    let err = spl_numeric::metrics::relative_rms_error(got, &want);
    if err > VERIFY_TOLERANCE {
        return Err(SearchError::VerificationFailed(format!(
            "{}: relative RMS error {err:.3e} exceeds {VERIFY_TOLERANCE:.0e}",
            tree.describe()
        )));
    }
    Ok(())
}

/// A cost oracle for candidate trees. Lower is better.
///
/// `Send` so evaluators can serve as [`EvaluatorPool`] workers; an
/// evaluator is never *shared* between threads (each worker owns its
/// own), so `Sync` is not required.
pub trait Evaluator: Send {
    /// The cost of a candidate (seconds for measured evaluators,
    /// operation counts for model evaluators).
    ///
    /// # Errors
    ///
    /// May fail when a candidate cannot be compiled.
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError>;

    /// Takes whatever telemetry the evaluator accumulated (timer
    /// repetitions, cache hits, measurement policy), leaving it empty.
    /// Model evaluators keep no telemetry and return an empty set.
    fn drain_telemetry(&mut self) -> Telemetry {
        Telemetry::new()
    }
}

impl Evaluator for Box<dyn Evaluator> {
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError> {
        (**self).cost(tree)
    }

    fn drain_telemetry(&mut self) -> Telemetry {
        (**self).drain_telemetry()
    }
}

/// Times each candidate on the VM (the paper's measured search).
///
/// Before a candidate's timing is accepted, its output is verified
/// against the dense reference (on by default; see
/// [`MeasuredEvaluator::with_verify`]).
#[derive(Debug)]
pub struct MeasuredEvaluator {
    /// Unroll threshold used when compiling candidates.
    pub unroll_threshold: usize,
    /// Minimum total measurement time per candidate.
    pub min_time: Duration,
    verify: bool,
    gate: MeasurementGate,
    cache: HashMap<String, f64>,
    tel: Telemetry,
}

impl MeasuredEvaluator {
    /// A measured evaluator with the paper's defaults (verification on).
    pub fn new(unroll_threshold: usize, min_time: Duration) -> Self {
        let mut tel = Telemetry::new();
        describe_policy(&mut tel, min_time);
        MeasuredEvaluator {
            unroll_threshold,
            min_time,
            verify: true,
            gate: MeasurementGate::new(),
            cache: HashMap::new(),
            tel,
        }
    }

    /// Enables or disables dense-reference verification.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Adopts a shared [`MeasurementGate`]. Compilation and
    /// verification still run freely; only the timing section waits
    /// for the gate, so concurrent workers never time two kernels at
    /// once.
    pub fn with_gate(mut self, gate: MeasurementGate) -> Self {
        self.gate = gate;
        self
    }
}

impl Evaluator for MeasuredEvaluator {
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError> {
        let key = tree.describe();
        if let Some(&c) = self.cache.get(&key) {
            self.tel.add("search.eval_cache_hits", 1);
            return Ok(c);
        }
        let vm = compile_tree(tree, self.unroll_threshold)?;
        if self.verify && tree.size() <= VERIFY_MAX_SIZE {
            let x = verification_input(tree.size());
            let flat = spl_vm::convert::interleave(&x);
            let mut y = vec![0.0; vm.n_out];
            let mut st = VmState::new(&vm);
            vm.run(&flat, &mut y, &mut st);
            verify_against_dense(tree, &spl_vm::convert::deinterleave(&y))?;
            self.tel.add("search.verifications", 1);
        }
        let m = {
            let _token = self.gate.acquire();
            measure(&vm, self.min_time)
        };
        m.record(&mut self.tel, "timer");
        if let Some(rs) = vm.resolve_stats() {
            rs.record(&mut self.tel);
        } else {
            self.tel.add("vm.resolve_fallbacks", 1);
        }
        self.cache.insert(key, m.secs_per_call);
        Ok(m.secs_per_call)
    }

    fn drain_telemetry(&mut self) -> Telemetry {
        let tel = std::mem::take(&mut self.tel);
        describe_policy(&mut self.tel, self.min_time);
        tel
    }
}

/// Compiles each candidate's generated C with the host compiler and
/// times the native code — the paper's actual methodology (`spl-native`).
///
/// Hardened for unattended searches: `cc` runs under a timeout, each
/// kernel executes and is timed in a forked sandbox (a crash or hang is
/// a classified error, not a dead search), and every kernel's output is
/// verified against the dense reference before its timing counts.
#[derive(Debug)]
pub struct NativeEvaluator {
    /// Unroll threshold used when compiling candidates.
    pub unroll_threshold: usize,
    /// Minimum total measurement time per candidate.
    pub min_time: Duration,
    verify: bool,
    eval_timeout: Duration,
    build: BuildOptions,
    gate: MeasurementGate,
    kernel_cache: Option<Arc<KernelCache>>,
    cache: HashMap<String, f64>,
    tel: Telemetry,
}

impl NativeEvaluator {
    /// A native evaluator with the given measurement budget,
    /// verification on, and a 30-second sandbox timeout per kernel.
    pub fn new(unroll_threshold: usize, min_time: Duration) -> Self {
        let mut tel = Telemetry::new();
        describe_policy(&mut tel, min_time);
        NativeEvaluator {
            unroll_threshold,
            min_time,
            verify: true,
            eval_timeout: Duration::from_secs(30),
            build: BuildOptions::default(),
            gate: MeasurementGate::new(),
            kernel_cache: None,
            cache: HashMap::new(),
            tel,
        }
    }

    /// Sets the per-kernel sandbox execution timeout.
    pub fn with_timeout(mut self, eval_timeout: Duration) -> Self {
        self.eval_timeout = eval_timeout;
        self
    }

    /// Sets the `cc` invocation policy (timeout, retry).
    pub fn with_build(mut self, build: BuildOptions) -> Self {
        self.build = build;
        self
    }

    /// Enables or disables dense-reference verification.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Adopts a shared [`MeasurementGate`] (see
    /// [`MeasuredEvaluator::with_gate`]): `cc`, loading, and
    /// verification run freely; only `measure_sandboxed` waits.
    pub fn with_gate(mut self, gate: MeasurementGate) -> Self {
        self.gate = gate;
        self
    }

    /// Routes kernel builds through a content-addressed
    /// [`KernelCache`]: identical generated C under identical build
    /// options reuses the previously built shared object instead of
    /// invoking `cc` again. Share one cache (via `Arc`) across pool
    /// workers so concurrent evaluators deduplicate builds too.
    pub fn with_kernel_cache(mut self, cache: Arc<KernelCache>) -> Self {
        self.kernel_cache = Some(cache);
        self
    }

    /// Builds the candidate's kernel, through the kernel cache when one
    /// is attached; also returns the cache key in that case so a later
    /// verification failure can quarantine the entry.
    fn build_kernel(
        &mut self,
        tree: &FftTree,
    ) -> Result<(spl_native::NativeKernel, Option<String>), SearchError> {
        let Some(cache) = &self.kernel_cache else {
            return compile_tree_native_with(tree, self.unroll_threshold, &self.build)
                .map(|k| (k, None));
        };
        let unit = compile_unit_for_tree(tree, self.unroll_threshold)?;
        let key = spl_native::NativeKernel::cache_key(&unit, &self.build).map_err(native_err)?;
        let (kernel, outcome) = spl_native::NativeKernel::compile_cached(&unit, &self.build, cache)
            .map_err(native_err)?;
        if outcome != CacheOutcome::Miss {
            self.tel.add("search.kernel_cache_hits", 1);
        }
        Ok((kernel, Some(key)))
    }
}

impl Evaluator for NativeEvaluator {
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError> {
        let key = tree.describe();
        if let Some(&c) = self.cache.get(&key) {
            self.tel.add("search.eval_cache_hits", 1);
            return Ok(c);
        }
        let (kernel, cache_key) = self.build_kernel(tree)?;
        if self.verify && tree.size() <= VERIFY_MAX_SIZE {
            let x = verification_input(tree.size());
            let flat = spl_vm::convert::interleave(&x);
            let mut y = vec![0.0; kernel.n_out];
            kernel
                .run_sandboxed(&flat, &mut y, self.eval_timeout)
                .map_err(native_err)?;
            if let Err(e) = verify_against_dense(tree, &spl_vm::convert::deinterleave(&y)) {
                // The cache key only covers what went *into* cc, so a
                // kernel whose output is wrong must be expelled or every
                // retry would be served the same bad object.
                if let (Some(cache), Some(k)) = (&self.kernel_cache, &cache_key) {
                    cache.evict(k);
                    self.tel.add("search.kernels_quarantined", 1);
                }
                return Err(e);
            }
            self.tel.add("search.verifications", 1);
        }
        let t = {
            let _token = self.gate.acquire();
            kernel
                .measure_sandboxed(self.min_time, self.eval_timeout)
                .map_err(native_err)?
        };
        self.tel.add("search.native_measurements", 1);
        self.cache.insert(key, t);
        Ok(t)
    }

    fn drain_telemetry(&mut self) -> Telemetry {
        let mut tel = std::mem::take(&mut self.tel);
        if let Some(cache) = &self.kernel_cache {
            // The cache may be shared; take-semantics means each
            // counter increment is reported by exactly one drainer.
            tel.merge(&cache.drain_telemetry());
        }
        describe_policy(&mut self.tel, self.min_time);
        tel
    }
}

/// Compiles a factorization tree to a natively executable kernel
/// (paper-style: generated C through the host compiler) with the default
/// build policy.
///
/// # Errors
///
/// Propagates compiler, `cc`, and loading failures.
pub fn compile_tree_native(
    tree: &FftTree,
    unroll_threshold: usize,
) -> Result<spl_native::NativeKernel, SearchError> {
    compile_tree_native_with(tree, unroll_threshold, &BuildOptions::default())
}

/// [`compile_tree_native`] with an explicit `cc` timeout/retry policy.
///
/// # Errors
///
/// Propagates compiler, `cc`, and loading failures.
pub fn compile_tree_native_with(
    tree: &FftTree,
    unroll_threshold: usize,
    build: &BuildOptions,
) -> Result<spl_native::NativeKernel, SearchError> {
    let unit = compile_unit_for_tree(tree, unroll_threshold)?;
    spl_native::NativeKernel::compile_with(&unit, build).map_err(native_err)
}

/// The SPL-compiler half of a native build (everything before `cc`),
/// shared by the direct and cache-mediated paths. Public so tooling and
/// tests can compute a candidate's [`KernelCache`] key
/// (via [`spl_native::NativeKernel::cache_key`]) without building it.
///
/// # Errors
///
/// Returns [`SearchError::CompileFailed`] when the tree's formula does
/// not compile.
pub fn compile_unit_for_tree(
    tree: &FftTree,
    unroll_threshold: usize,
) -> Result<spl_compiler::CompiledUnit, SearchError> {
    compile_sexp_for_search(
        &tree.to_sexp(),
        unroll_threshold,
        spl_frontend::ast::DataType::Complex,
    )
    .map_err(|e| SearchError::CompileFailed(format!("compiling {}: {e}", tree.describe())))
}

/// Deterministic model: compiles the candidate and counts the dynamic
/// floating-point operations plus a small per-loop overhead charge. Used
/// by tests and as the "estimate" mode analogue.
#[derive(Debug, Default)]
pub struct OpCountEvaluator {
    cache: HashMap<String, f64>,
}

impl Evaluator for OpCountEvaluator {
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError> {
        let key = tree.describe();
        if let Some(&c) = self.cache.get(&key) {
            return Ok(c);
        }
        let unit =
            compile_sexp_for_search(&tree.to_sexp(), 64, spl_frontend::ast::DataType::Complex)?;
        let cost = unit.program.dynamic_op_count() as f64;
        self.cache.insert(key, cost);
        Ok(cost)
    }
}

/// The winner for one transform size.
#[derive(Debug, Clone)]
pub struct SizeResult {
    /// The winning factorization.
    pub tree: FftTree,
    /// Its cost under the evaluator.
    pub cost: f64,
}

/// Dynamic programming over all Equation-10 factorizations for sizes
/// `2^1 … 2^max_k` (the paper's small-size search). Returns one winner
/// per size, smallest first.
///
/// # Errors
///
/// Propagates evaluator failures.
pub fn small_search(
    max_k: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_traced(max_k, config, eval, &mut Telemetry::new())
}

/// [`small_search`] with telemetry: records a `search.small` span, a
/// `search.plans_evaluated` counter, and the best-cost trajectory as one
/// `search.best_cost.<n>` metric per size.
///
/// Candidates whose evaluation fails are skipped (counted under
/// `search.skipped.<kind>`); the search only errors when no candidate
/// for a size survives.
///
/// # Errors
///
/// [`SearchError::NoCandidates`] when every candidate of a size failed.
pub fn small_search_traced(
    max_k: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
    tel: &mut Telemetry,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_src(max_k, config, &mut SerialSource(eval), tel)
}

/// [`small_search_traced`] over an [`EvaluatorPool`]: each size's
/// candidates are evaluated concurrently by the pool's workers and
/// merged back in candidate order, so with a deterministic evaluator
/// the winners are bit-identical to the serial search at any job count.
///
/// # Errors
///
/// As [`small_search_traced`].
pub fn small_search_parallel(
    max_k: u32,
    config: &SearchConfig,
    pool: &mut EvaluatorPool,
    tel: &mut Telemetry,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_src(max_k, config, pool, tel)
}

/// The small-size DP over any [`CostSource`] (serial or pooled).
pub(crate) fn small_search_src(
    max_k: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
) -> Result<Vec<SizeResult>, SearchError> {
    tel.begin_span("search.small");
    let mut best: Vec<SizeResult> = Vec::new();
    for k in 1..=max_k {
        tel.begin_span(&format!("small 2^{k}"));
        let winner = small_step(k, config, src, tel, &best);
        tel.end_span();
        best.push(winner?);
    }
    tel.end_span();
    tel.merge(&src.drain());
    Ok(best)
}

/// The candidates of one small-size DP step: the naive leaf plus every
/// Equation-10 split of previous winners, in the canonical order the
/// winner selection depends on.
fn small_candidates(k: u32, config: &SearchConfig, best: &[SizeResult]) -> Vec<FftTree> {
    let mut candidates = vec![FftTree::leaf(1usize << k)];
    for i in 1..k {
        let left = best[i as usize - 1].tree.clone();
        let right = best[(k - i) as usize - 1].tree.clone();
        candidates.push(FftTree::node(config.rule, left, right));
    }
    candidates
}

/// One size of the small-size DP: evaluates the leaf and every split of
/// previous winners, returning the cheapest survivor. Costs may be
/// computed concurrently, but the winner is chosen by walking the
/// results in candidate order (strict `<`, earliest wins ties) —
/// exactly the serial semantics.
///
/// # Errors
///
/// [`SearchError::NoCandidates`] when every candidate failed.
fn small_step(
    k: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    best: &[SizeResult],
) -> Result<SizeResult, SearchError> {
    let candidates = small_candidates(k, config, best);
    let costs = src.batch_costs(&candidates);
    let mut winner: Option<SizeResult> = None;
    for (tree, cost) in candidates.into_iter().zip(costs) {
        let cost = match cost {
            Ok(c) => c,
            Err(e) => {
                tel.add(&format!("search.skipped.{}", e.kind()), 1);
                continue;
            }
        };
        tel.add("search.plans_evaluated", 1);
        if winner.as_ref().is_none_or(|w| cost < w.cost) {
            winner = Some(SizeResult { tree, cost });
        }
    }
    let winner = winner.ok_or(SearchError::NoCandidates { n: 1usize << k })?;
    tel.set_metric(&format!("search.best_cost.{}", 1usize << k), winner.cost);
    Ok(winner)
}

/// One retained plan in the large-size k-best DP.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The factorization tree.
    pub tree: FftTree,
    /// Measured (or modeled) cost.
    pub cost: f64,
}

/// The k-best dynamic program for large sizes `2^(small_max_k+1) …
/// 2^max_log` (the paper's Section 4.2). `small` must hold the small-size
/// winners from [`small_search`]; splits are binary, right-most, with the
/// left factor a small-size winner (≤ `config.leaf_max`).
///
/// Returns, for each size `2^k` with `k` in
/// `small_max_k+1 ..= max_log`, the retained plans sorted best-first.
///
/// # Errors
///
/// Propagates evaluator failures.
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_traced(small, max_log, config, eval, &mut Telemetry::new())
}

/// [`large_search`] with telemetry: records a `search.large` span, a
/// `search.plans_evaluated` counter, the number of retained plans, and
/// one `search.best_cost.<n>` metric per size.
///
/// Candidates whose evaluation fails are skipped (counted under
/// `search.skipped.<kind>`); the search only errors when no candidate
/// for a size survives.
///
/// # Errors
///
/// [`SearchError::NoCandidates`] when every candidate of a size failed.
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search_traced(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
    tel: &mut Telemetry,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_src(small, max_log, config, &mut SerialSource(eval), tel)
}

/// [`large_search_traced`] over an [`EvaluatorPool`] (see
/// [`small_search_parallel`] for the determinism contract).
///
/// # Errors
///
/// As [`large_search_traced`].
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search_parallel(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    pool: &mut EvaluatorPool,
    tel: &mut Telemetry,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_src(small, max_log, config, pool, tel)
}

/// The large-size k-best DP over any [`CostSource`].
pub(crate) fn large_search_src(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    tel.begin_span("search.large");
    let small_max_k = small.len() as u32;
    let mut kbest = seed_kbest(small, config);
    let mut out = Vec::new();
    for k in (small_max_k + 1)..=max_log {
        tel.begin_span(&format!("large 2^{k}"));
        let plans = large_step(k, config, src, tel, &kbest);
        tel.end_span();
        let plans = plans?;
        kbest.insert(k, plans.clone());
        out.push(plans);
    }
    tel.end_span();
    tel.merge(&src.drain());
    Ok(out)
}

/// Builds the k-best table seeded from the small-size winners
/// (`kbest[k]` holds plans for size `2^k`).
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
fn seed_kbest(small: &[SizeResult], config: &SearchConfig) -> HashMap<u32, Vec<Plan>> {
    assert!(
        (1usize << small.len() as u32) >= config.leaf_max,
        "small results must cover the leaf sizes"
    );
    let mut kbest: HashMap<u32, Vec<Plan>> = HashMap::new();
    for (i, r) in small.iter().enumerate() {
        kbest.insert(
            i as u32 + 1,
            vec![Plan {
                tree: r.tree.clone(),
                cost: r.cost,
            }],
        );
    }
    kbest
}

/// One size of the large-size k-best DP: evaluates every rightmost
/// binary split over the retained sub-plans and keeps the `config.keep`
/// cheapest survivors, sorted best-first.
///
/// # Errors
///
/// [`SearchError::NoCandidates`] when every candidate failed.
/// The candidates of one large-size k-best DP step: every rightmost
/// binary split over the retained sub-plans, in the canonical order the
/// retained set depends on.
fn large_candidates(
    k: u32,
    config: &SearchConfig,
    kbest: &HashMap<u32, Vec<Plan>>,
) -> Vec<FftTree> {
    let n = 1usize << k;
    let mut candidates: Vec<FftTree> = Vec::new();
    for (r, s) in rightmost_splits(n, config.leaf_max) {
        if !r.is_power_of_two() {
            continue;
        }
        let rk = r.trailing_zeros();
        let sk = s.trailing_zeros();
        let Some(left_plans) = kbest.get(&rk) else {
            continue;
        };
        let Some(right_plans) = kbest.get(&sk) else {
            continue;
        };
        let left = left_plans[0].tree.clone();
        for right in right_plans {
            candidates.push(FftTree::node(config.rule, left.clone(), right.tree.clone()));
        }
    }
    candidates
}

fn large_step(
    k: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    kbest: &HashMap<u32, Vec<Plan>>,
) -> Result<Vec<Plan>, SearchError> {
    let n = 1usize << k;
    let candidates = large_candidates(k, config, kbest);
    let costs = src.batch_costs(&candidates);
    let mut plans: Vec<Plan> = Vec::new();
    for (tree, cost) in candidates.into_iter().zip(costs) {
        let cost = match cost {
            Ok(c) => c,
            Err(e) => {
                tel.add(&format!("search.skipped.{}", e.kind()), 1);
                continue;
            }
        };
        tel.add("search.plans_evaluated", 1);
        plans.push(Plan { tree, cost });
    }
    // Stable sort over a stable candidate order: equal costs keep their
    // serial relative order, so the truncation below is deterministic.
    plans.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    plans.truncate(config.keep);
    if plans.is_empty() {
        return Err(SearchError::NoCandidates { n });
    }
    tel.add("search.plans_kept", plans.len() as u64);
    tel.set_metric(&format!("search.best_cost.{n}"), plans[0].cost);
    Ok(plans)
}

// ---------------------------------------------------------------------
// WHT search (generality beyond the FFT)
// ---------------------------------------------------------------------

/// A WHT cost oracle (mirrors [`Evaluator`] for Walsh–Hadamard trees).
///
/// The related-work section of the paper points at the WHT package of
/// Johnson and Püschel, which searches a space of WHT formulas the same
/// way; this function reproduces that search with the SPL toolchain:
/// dynamic programming over binary splits of `WHT_{2^k}` with direct
/// (tensor-power) leaves admitted up to `max_leaf_exp`.
///
/// Returns the winner per exponent `1..=max_k`.
///
/// # Errors
///
/// Propagates compilation failures from the evaluator.
pub fn wht_search(
    max_k: u32,
    max_leaf_exp: u32,
    unroll_threshold: usize,
    min_time: Duration,
) -> Result<Vec<(spl_generator::wht::WhtTree, f64)>, SearchError> {
    use spl_generator::wht::WhtTree;
    let mut cache: HashMap<String, f64> = HashMap::new();
    let mut cost = |tree: &WhtTree| -> Result<f64, SearchError> {
        let key = format!("{tree:?}");
        if let Some(&c) = cache.get(&key) {
            return Ok(c);
        }
        let unit = compile_sexp_for_search(
            &tree.to_sexp(),
            unroll_threshold,
            spl_frontend::ast::DataType::Real,
        )?;
        let vm = lower(&unit.program).map_err(|e| SearchError::CompileFailed(e.to_string()))?;
        let t = measure(&vm, min_time).secs_per_call;
        cache.insert(key, t);
        Ok(t)
    };
    let mut best: Vec<(WhtTree, f64)> = Vec::new();
    for k in 1..=max_k {
        let mut candidates = Vec::new();
        if k <= max_leaf_exp {
            candidates.push(WhtTree::leaf(k));
        }
        for i in 1..k {
            candidates.push(WhtTree::split(vec![
                best[i as usize - 1].0.clone(),
                best[(k - i) as usize - 1].0.clone(),
            ]));
        }
        let mut winner: Option<(WhtTree, f64)> = None;
        for tree in candidates {
            let c = cost(&tree)?;
            if winner.as_ref().is_none_or(|(_, w)| c < *w) {
                winner = Some((tree, c));
            }
        }
        best.push(winner.expect("at least one candidate"));
    }
    Ok(best)
}

// Wisdom (flat plan persistence, the keyed database, and the pruned DP
// drivers) lives in the `wisdom` module; the flat-format helpers
// `wisdom_to_string` / `wisdom_from_string` are re-exported above.

#[cfg(test)]
mod tests {
    use super::*;
    use spl_numeric::{reference, Complex};
    use spl_vm::VmState;

    fn check_tree_is_fft(tree: &FftTree) {
        let n = tree.size();
        let vm = compile_tree(tree, 64).unwrap();
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let flat = spl_vm::convert::interleave(&x);
        let mut y = vec![0.0; vm.n_out];
        let mut st = VmState::new(&vm);
        vm.run(&flat, &mut y, &mut st);
        let got = spl_vm::convert::deinterleave(&y);
        let want = reference::dft(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(a.approx_eq(*b, 1e-9 * n as f64), "size {n}");
        }
    }

    #[test]
    fn batched_compile_matches_independent_applications() {
        let tree = spl_generator::fft::ct_sequence(&[4, 2], Rule::CooleyTukey);
        let n = tree.size();
        let m = 3;
        let single = compile_tree(&tree, 64).unwrap();
        let batched = compile_tree_batched(&tree, m, 64).unwrap();
        assert_eq!(batched.n_in, m * single.n_in);
        assert_eq!(batched.n_out, m * single.n_out);

        // m segments with distinct contents, back to back.
        let xs: Vec<f64> = (0..m * single.n_in)
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        let mut got = vec![0.0; batched.n_out];
        let mut st = VmState::new(&batched);
        batched.run(&xs, &mut got, &mut st);

        let mut st1 = VmState::new(&single);
        for seg in 0..m {
            let mut want = vec![0.0; single.n_out];
            single.run(
                &xs[seg * single.n_in..(seg + 1) * single.n_in],
                &mut want,
                &mut st1,
            );
            // The identity tensor factor compiles to an outer loop over
            // the same inner code, so each segment is bit-identical to
            // an unbatched run.
            assert_eq!(
                &got[seg * single.n_out..(seg + 1) * single.n_out],
                want.as_slice(),
                "segment {seg} of batched size-{n} FFT diverged"
            );
        }
    }

    #[test]
    fn batched_compile_rejects_zero_batch() {
        let tree = FftTree::Leaf(4);
        assert!(compile_tree_batched(&tree, 0, 64).is_err());
    }

    #[test]
    fn small_search_returns_correct_ffts() {
        let mut eval = OpCountEvaluator::default();
        let best = small_search(5, &SearchConfig::default(), &mut eval).unwrap();
        assert_eq!(best.len(), 5);
        for (k, r) in best.iter().enumerate() {
            assert_eq!(r.tree.size(), 1 << (k + 1));
            check_tree_is_fft(&r.tree);
        }
    }

    #[test]
    fn small_search_prefers_fast_algorithms() {
        // For size 32 the naive leaf costs O(n^2); any split wins.
        let mut eval = OpCountEvaluator::default();
        let best = small_search(5, &SearchConfig::default(), &mut eval).unwrap();
        assert!(matches!(best[4].tree, FftTree::Node { .. }));
        // O(n log n)-ish op count.
        assert!(best[4].cost < 3_000.0, "cost {}", best[4].cost);
    }

    #[test]
    fn large_search_builds_correct_plans() {
        let config = SearchConfig {
            leaf_max: 8,
            ..Default::default()
        };
        let mut eval = OpCountEvaluator::default();
        let small = small_search(3, &config, &mut eval).unwrap();
        let large = large_search(&small, 6, &config, &mut eval).unwrap();
        assert_eq!(large.len(), 3); // sizes 16, 32, 64
        for (i, plans) in large.iter().enumerate() {
            assert!(!plans.is_empty() && plans.len() <= config.keep);
            for p in plans {
                assert_eq!(p.tree.size(), 1 << (i + 4));
            }
            // Plans are sorted best-first.
            for w in plans.windows(2) {
                assert!(w[0].cost <= w[1].cost);
            }
            check_tree_is_fft(&plans[0].tree);
        }
    }

    #[test]
    fn large_search_is_rightmost() {
        // The left child of every large plan is a small-size winner
        // (cannot itself be a fresh split of a large size).
        let config = SearchConfig {
            leaf_max: 8,
            ..Default::default()
        };
        let mut eval = OpCountEvaluator::default();
        let small = small_search(3, &config, &mut eval).unwrap();
        let large = large_search(&small, 7, &config, &mut eval).unwrap();
        for plans in &large {
            for p in plans {
                if let FftTree::Node { left, .. } = &p.tree {
                    assert!(left.size() <= config.leaf_max);
                }
            }
        }
    }

    #[test]
    fn measured_evaluator_runs() {
        let mut eval = MeasuredEvaluator::new(64, Duration::from_millis(2));
        let t = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
        let c1 = eval.cost(&t).unwrap();
        assert!(c1 > 0.0);
        // Cache hit returns the identical value.
        let c2 = eval.cost(&t).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn shared_kernel_cache_deduplicates_cc_invocations() {
        // Two evaluators (as two pool workers would be) sharing one
        // content-addressed cache: the second build of the same tree is
        // a memory hit, not a second `cc` run.
        let cache = Arc::new(KernelCache::in_memory());
        let t = FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2));
        let mut a = NativeEvaluator::new(64, Duration::from_millis(2))
            .with_kernel_cache(Arc::clone(&cache));
        let mut b = NativeEvaluator::new(64, Duration::from_millis(2))
            .with_kernel_cache(Arc::clone(&cache));
        let ca = a.cost(&t).unwrap();
        let cb = b.cost(&t).unwrap();
        assert!(ca > 0.0 && cb > 0.0);
        let mut tel = a.drain_telemetry();
        tel.merge(&b.drain_telemetry());
        assert_eq!(tel.counter("native.cc_invocations"), Some(1));
        assert_eq!(tel.counter("native.cache.memory_hits"), Some(1));
        assert_eq!(tel.counter("search.kernel_cache_hits"), Some(1));
    }

    #[test]
    fn native_evaluator_agrees_with_vm_on_ordering() {
        // Both evaluators must agree that a split beats the naive leaf
        // at size 32.
        let leaf = FftTree::leaf(32);
        let split = FftTree::node(
            Rule::CooleyTukey,
            FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2)),
            FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(4)),
        );
        let mut native = NativeEvaluator::new(64, Duration::from_millis(3));
        assert!(native.cost(&split).unwrap() < native.cost(&leaf).unwrap());
    }

    #[test]
    fn wisdom_round_trips() {
        let mut eval = OpCountEvaluator::default();
        let best = small_search(5, &SearchConfig::default(), &mut eval).unwrap();
        let text = wisdom_to_string(&best);
        let back = wisdom_from_string(&text).unwrap();
        assert_eq!(back.len(), best.len());
        for (a, b) in back.iter().zip(&best) {
            assert_eq!(a.tree, b.tree);
        }
        // Comments and blanks are tolerated.
        let with_comments = format!(
            "# saved plans

{text}"
        );
        assert_eq!(
            wisdom_from_string(&with_comments).unwrap().len(),
            best.len()
        );
    }

    #[test]
    fn wisdom_rejects_inconsistent_lines() {
        let e = wisdom_from_string("16: (ct 2 2)").unwrap_err();
        assert_eq!(
            e.kind,
            WisdomErrorKind::SizeMismatch {
                computed: 4,
                labelled: 16
            }
        );
        let e = wisdom_from_string("nonsense").unwrap_err();
        assert_eq!(e.kind, WisdomErrorKind::MissingColon);
        let e = wisdom_from_string("8: (zz 2 4)").unwrap_err();
        assert!(matches!(e.kind, WisdomErrorKind::BadSpec(_)), "{e}");
    }

    #[test]
    fn wisdom_empty_set_round_trips() {
        let text = wisdom_to_string(&[]);
        assert!(text.is_empty());
        assert!(wisdom_from_string(&text).unwrap().is_empty());
        // Comment- and whitespace-only wisdom is the empty set too.
        assert!(wisdom_from_string("\n# only a comment\n\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wisdom_rejects_malformed_inputs() {
        // Every malformed shape maps to a typed kind; the error also
        // carries the 1-based line and renders the historical message.
        type KindCheck = fn(&WisdomErrorKind) -> bool;
        let cases: [(&str, KindCheck); 6] = [
            ("4 (ct 2 2)", |k| *k == WisdomErrorKind::MissingColon),
            (":", |k| *k == WisdomErrorKind::BadSize),
            ("x: (ct 2 2)", |k| *k == WisdomErrorKind::BadSize),
            ("4:", |k| matches!(k, WisdomErrorKind::BadSpec(_))),
            ("-4: (ct 2 2)", |k| *k == WisdomErrorKind::BadSize),
            ("8: (ct 2", |k| matches!(k, WisdomErrorKind::BadSpec(_))),
        ];
        for (bad, want) in cases {
            let e = wisdom_from_string(bad).unwrap_err();
            assert!(want(&e.kind), "{bad:?} -> {e}");
            assert_eq!(e.line, 1, "{bad:?}");
        }
        // Line numbers skip blanks and comments but count real lines.
        let e = wisdom_from_string("# ok\n4: (ct 2 2)\nbroken").unwrap_err();
        assert_eq!(e.line, 3);
        assert_eq!(e.to_string(), "wisdom line 3: missing ':'");
        // The typed error lifts into the search taxonomy.
        let lifted: SearchError = e.into();
        assert_eq!(lifted.kind(), "wisdom");
        assert!(lifted.to_string().starts_with("search: wisdom line 3"));
    }

    #[test]
    fn search_records_telemetry() {
        let mut eval = MeasuredEvaluator::new(64, Duration::from_millis(1));
        let mut tel = Telemetry::new();
        let best = small_search_traced(3, &SearchConfig::default(), &mut eval, &mut tel).unwrap();
        assert_eq!(best.len(), 3);
        // Candidates per size: 1 (F2) + 2 (F4) + 3 (F8).
        assert_eq!(tel.counter("search.plans_evaluated"), Some(6));
        assert!(tel.span_ns("search.small").is_some());
        for n in [2usize, 4, 8] {
            assert!(tel.metric(&format!("search.best_cost.{n}")).unwrap() > 0.0);
        }
        // Evaluator telemetry is merged in: timed reps, warm-ups, and
        // the measurement policy.
        assert!(tel.counter("timer.reps").unwrap() >= 6);
        assert!(tel.counter("timer.warmup_reps").unwrap() >= 1);
        assert!(tel.metric("timer.min_time_secs").is_some());
        // Draining left the evaluator with a fresh policy-only set.
        assert!(eval.drain_telemetry().counter("timer.reps").is_none());
    }

    #[test]
    fn wht_search_returns_correct_transforms() {
        let best = wht_search(4, 3, 64, Duration::from_millis(2)).unwrap();
        assert_eq!(best.len(), 4);
        for (k, (tree, _)) in best.iter().enumerate() {
            assert_eq!(tree.exponent(), k as u32 + 1);
            // Verify against the reference WHT through the dense oracle.
            let n = tree.size();
            let xr: Vec<f64> = (0..n).map(|i| (i as f64) - 2.0).collect();
            let x: Vec<spl_numeric::Complex> =
                xr.iter().map(|&v| spl_numeric::Complex::real(v)).collect();
            let y = spl_formula::dense::apply(&tree.to_formula(), &x).unwrap();
            let want = reference::wht(&xr);
            for (a, b) in y.iter().zip(&want) {
                assert!((a.re - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn kbest_keeps_at_most_k() {
        let config = SearchConfig {
            leaf_max: 16,
            keep: 2,
            ..Default::default()
        };
        let mut eval = OpCountEvaluator::default();
        let small = small_search(4, &config, &mut eval).unwrap();
        let large = large_search(&small, 8, &config, &mut eval).unwrap();
        for plans in &large {
            assert!(plans.len() <= 2);
        }
    }
}
