//! The crash-safe wisdom journal.
//!
//! [`small_search_journaled`] and [`large_search_journaled`] persist
//! every completed size to an append-only, CRC-framed journal
//! (`spl-resilience`) *as the search runs*, so a killed process resumes
//! from the last completed size instead of restarting from scratch —
//! FFTW's save-a-plan workflow, made incremental and torn-write-proof.
//!
//! On-disk schema (one payload per journal record):
//!
//! ```text
//! meta v1 mode=small rule=CooleyTukey leaf_max=64 keep=3 unroll=64
//! small 2 3f...bits...00 2
//! small 4 3f...bits...00 (ct 2 2)
//! large 128 | <bits> <spec> | <bits> <spec> | <bits> <spec>
//! ```
//!
//! The first record is always the configuration fingerprint
//! ([`config_fingerprint`]); resuming under a different configuration is
//! refused ([`SearchError::JournalCorrupt`]) rather than silently mixing
//! plans from incompatible searches. Costs are stored as exact `f64`
//! bit patterns so a resumed run reproduces the original DP decisions
//! bit-for-bit.

use std::collections::HashMap;
use std::path::Path;

use spl_generator::fft::FftTree;
use spl_resilience::{Journal, JournalError};
use spl_telemetry::Telemetry;

use crate::{
    large_step, seed_kbest, small_step, CostSource, Evaluator, EvaluatorPool, Plan, SearchConfig,
    SearchError, SerialSource, SizeResult,
};

fn jerr(e: JournalError) -> SearchError {
    match e {
        JournalError::Corrupt { line, reason } => {
            SearchError::JournalCorrupt(format!("line {line}: {reason}"))
        }
        other => SearchError::Other(other.to_string()),
    }
}

/// The configuration fingerprint stored as a journal's first record.
/// Two runs may share a journal only when their fingerprints match.
pub fn config_fingerprint(config: &SearchConfig, mode: &str) -> String {
    format!(
        "meta v1 mode={mode} rule={:?} leaf_max={} keep={} unroll={}",
        config.rule, config.leaf_max, config.keep, config.unroll_threshold
    )
}

/// Opens the journal, checks (or writes) the fingerprint, and returns
/// the records after it.
fn open_checked(
    path: &Path,
    fingerprint: &str,
    tel: &mut Telemetry,
) -> Result<(Journal, Vec<String>), SearchError> {
    let (mut journal, loaded) = Journal::open(path).map_err(jerr)?;
    if loaded.dropped > 0 {
        tel.add("search.journal_dropped_records", loaded.dropped as u64);
    }
    if loaded.records.is_empty() {
        journal.append(fingerprint).map_err(jerr)?;
        return Ok((journal, Vec::new()));
    }
    if loaded.records[0] != fingerprint {
        return Err(SearchError::JournalCorrupt(format!(
            "{} was written by a different search configuration (found {:?}, expected {:?})",
            path.display(),
            loaded.records[0],
            fingerprint
        )));
    }
    Ok((journal, loaded.records[1..].to_vec()))
}

fn parse_cost(bits: &str) -> Result<f64, SearchError> {
    u64::from_str_radix(bits, 16)
        .map(f64::from_bits)
        .map_err(|_| SearchError::JournalCorrupt(format!("bad cost bits {bits:?}")))
}

fn parse_tree(spec: &str, n: usize) -> Result<FftTree, SearchError> {
    let tree = FftTree::from_spec(spec)
        .map_err(|e| SearchError::JournalCorrupt(format!("bad spec {spec:?}: {e}")))?;
    if tree.size() != n {
        return Err(SearchError::JournalCorrupt(format!(
            "spec {spec:?} computes {} points, journal says {n}",
            tree.size()
        )));
    }
    Ok(tree)
}

/// Parses `small <n> <cost_bits> <spec>`, checking `n` is as expected.
fn parse_small_record(payload: &str, want_n: usize) -> Result<SizeResult, SearchError> {
    let bad = || SearchError::JournalCorrupt(format!("malformed small record {payload:?}"));
    let mut parts = payload.splitn(4, ' ');
    if parts.next() != Some("small") {
        return Err(bad());
    }
    let n: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let cost = parse_cost(parts.next().ok_or_else(bad)?)?;
    let tree = parse_tree(parts.next().ok_or_else(bad)?, n)?;
    if n != want_n {
        return Err(SearchError::JournalCorrupt(format!(
            "expected size {want_n} next, journal has {n}"
        )));
    }
    Ok(SizeResult { tree, cost })
}

fn format_small_record(r: &SizeResult) -> String {
    format!(
        "small {} {:016x} {}",
        r.tree.size(),
        r.cost.to_bits(),
        r.tree.to_spec()
    )
}

/// Parses `large <n> | <cost_bits> <spec> | ...`, checking `n`.
fn parse_large_record(payload: &str, want_n: usize) -> Result<Vec<Plan>, SearchError> {
    let bad = || SearchError::JournalCorrupt(format!("malformed large record {payload:?}"));
    let rest = payload.strip_prefix("large ").ok_or_else(bad)?;
    let mut chunks = rest.split(" | ");
    let n: usize = chunks
        .next()
        .ok_or_else(bad)?
        .trim()
        .parse()
        .map_err(|_| bad())?;
    if n != want_n {
        return Err(SearchError::JournalCorrupt(format!(
            "expected size {want_n} next, journal has {n}"
        )));
    }
    let mut plans = Vec::new();
    for chunk in chunks {
        let (bits, spec) = chunk.split_once(' ').ok_or_else(bad)?;
        plans.push(Plan {
            cost: parse_cost(bits)?,
            tree: parse_tree(spec, n)?,
        });
    }
    if plans.is_empty() {
        return Err(bad());
    }
    Ok(plans)
}

fn format_large_record(n: usize, plans: &[Plan]) -> String {
    use std::fmt::Write as _;
    let mut out = format!("large {n}");
    for p in plans {
        let _ = write!(out, " | {:016x} {}", p.cost.to_bits(), p.tree.to_spec());
    }
    out
}

/// [`crate::small_search_traced`] with incremental persistence: each
/// completed size is appended (CRC-framed, synced) to the journal at
/// `path`, and sizes already present are reused instead of re-searched.
/// A journal torn by a kill is healed on open; at most the size being
/// written when the process died is lost.
///
/// # Errors
///
/// [`SearchError::JournalCorrupt`] when the journal belongs to a
/// different configuration or carries unparseable records;
/// [`SearchError::NoCandidates`] when every candidate of a size failed;
/// I/O failures as [`SearchError::Other`].
pub fn small_search_journaled(
    max_k: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
    tel: &mut Telemetry,
    path: &Path,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_journaled_src(max_k, config, &mut SerialSource(eval), tel, path)
}

/// [`small_search_journaled`] over an [`EvaluatorPool`] (see
/// [`crate::small_search_parallel`] for the determinism contract):
/// candidates evaluate concurrently, completed sizes persist to the
/// journal exactly as in the serial variant.
///
/// # Errors
///
/// As [`small_search_journaled`].
pub fn small_search_journaled_parallel(
    max_k: u32,
    config: &SearchConfig,
    pool: &mut EvaluatorPool,
    tel: &mut Telemetry,
    path: &Path,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_journaled_src(max_k, config, pool, tel, path)
}

fn small_search_journaled_src(
    max_k: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    path: &Path,
) -> Result<Vec<SizeResult>, SearchError> {
    tel.begin_span("search.small");
    let fingerprint = config_fingerprint(config, "small");
    let (mut journal, records) = open_checked(path, &fingerprint, tel)?;
    let mut best: Vec<SizeResult> = Vec::new();
    for rec in &records {
        if best.len() as u32 == max_k {
            break; // journal covers more sizes than this run needs
        }
        best.push(parse_small_record(rec, 1usize << (best.len() + 1))?);
    }
    if !best.is_empty() {
        tel.add("search.journal_resumed_sizes", best.len() as u64);
    }
    for k in (best.len() as u32 + 1)..=max_k {
        tel.begin_span(&format!("small 2^{k}"));
        let winner = small_step(k, config, src, tel, &best);
        tel.end_span();
        let winner = winner?;
        journal
            .append(&format_small_record(&winner))
            .map_err(jerr)?;
        best.push(winner);
    }
    tel.end_span();
    tel.merge(&src.drain());
    Ok(best)
}

/// [`crate::large_search_traced`] with incremental persistence (see
/// [`small_search_journaled`]): one journal record per completed size,
/// holding all retained k-best plans for that size.
///
/// # Errors
///
/// As [`small_search_journaled`].
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search_journaled(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
    tel: &mut Telemetry,
    path: &Path,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_journaled_src(small, max_log, config, &mut SerialSource(eval), tel, path)
}

/// [`large_search_journaled`] over an [`EvaluatorPool`] (see
/// [`small_search_journaled_parallel`]).
///
/// # Errors
///
/// As [`small_search_journaled`].
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search_journaled_parallel(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    pool: &mut EvaluatorPool,
    tel: &mut Telemetry,
    path: &Path,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_journaled_src(small, max_log, config, pool, tel, path)
}

fn large_search_journaled_src(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    path: &Path,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    tel.begin_span("search.large");
    let fingerprint = config_fingerprint(config, "large");
    let (mut journal, records) = open_checked(path, &fingerprint, tel)?;
    let small_max_k = small.len() as u32;
    let mut kbest: HashMap<u32, Vec<Plan>> = seed_kbest(small, config);
    let mut out: Vec<Vec<Plan>> = Vec::new();
    for rec in &records {
        let k = small_max_k + 1 + out.len() as u32;
        if k > max_log {
            break;
        }
        let plans = parse_large_record(rec, 1usize << k)?;
        kbest.insert(k, plans.clone());
        out.push(plans);
    }
    if !out.is_empty() {
        tel.add("search.journal_resumed_sizes", out.len() as u64);
    }
    for k in (small_max_k + 1 + out.len() as u32)..=max_log {
        tel.begin_span(&format!("large 2^{k}"));
        let plans = large_step(k, config, src, tel, &kbest);
        tel.end_span();
        let plans = plans?;
        journal
            .append(&format_large_record(1usize << k, &plans))
            .map_err(jerr)?;
        kbest.insert(k, plans.clone());
        out.push(plans);
    }
    tel.end_span();
    tel.merge(&src.drain());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpCountEvaluator;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "spl_search_journal_{}_{name}.journal",
            std::process::id()
        ))
    }

    #[test]
    fn journaled_small_search_matches_plain_and_resumes_for_free() {
        let p = tmp("small");
        let _ = std::fs::remove_file(&p);
        let config = SearchConfig::default();
        let mut eval = OpCountEvaluator::default();
        let plain = crate::small_search(5, &config, &mut eval).unwrap();

        let mut tel = Telemetry::new();
        let first =
            small_search_journaled(5, &config, &mut OpCountEvaluator::default(), &mut tel, &p)
                .unwrap();
        assert_eq!(first.len(), plain.len());
        for (a, b) in first.iter().zip(&plain) {
            assert_eq!(a.tree, b.tree);
        }

        // Second run resumes entirely from the journal: zero evaluations.
        let mut tel2 = Telemetry::new();
        let second =
            small_search_journaled(5, &config, &mut OpCountEvaluator::default(), &mut tel2, &p)
                .unwrap();
        assert_eq!(tel2.counter("search.plans_evaluated"), None);
        assert_eq!(tel2.counter("search.journal_resumed_sizes"), Some(5));
        for (a, b) in second.iter().zip(&plain) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.cost, b.cost);
        }
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn config_change_is_refused() {
        let p = tmp("config");
        let _ = std::fs::remove_file(&p);
        let config = SearchConfig::default();
        let mut tel = Telemetry::new();
        small_search_journaled(3, &config, &mut OpCountEvaluator::default(), &mut tel, &p).unwrap();
        let other = SearchConfig {
            keep: 7,
            ..SearchConfig::default()
        };
        let err = small_search_journaled(3, &other, &mut OpCountEvaluator::default(), &mut tel, &p)
            .unwrap_err();
        assert!(matches!(err, SearchError::JournalCorrupt(_)), "{err}");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn large_record_round_trips() {
        let config = SearchConfig {
            leaf_max: 8,
            ..SearchConfig::default()
        };
        let mut eval = OpCountEvaluator::default();
        let small = crate::small_search(3, &config, &mut eval).unwrap();
        let large = crate::large_search(&small, 5, &config, &mut eval).unwrap();
        let rec = format_large_record(32, &large[1]);
        let back = parse_large_record(&rec, 32).unwrap();
        assert_eq!(back.len(), large[1].len());
        for (a, b) in back.iter().zip(&large[1]) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.cost, b.cost);
        }
        assert!(parse_large_record(&rec, 64).is_err());
    }
}
