//! The cross-run wisdom database and the model-pruned DP drivers.
//!
//! Flat wisdom text (`size: spec` lines) records *what* won but not
//! *where* or *under which compiler*, so it cannot be merged across
//! runs, jobs, or machines. [`WisdomDb`] replaces it with a keyed,
//! persistent, mergeable store: every entry is keyed by
//! `(transform, size, cc fingerprint, machine fingerprint)` and carries
//! the retained plans with their measured costs. The store is one
//! CRC-framed append-only journal (`spl-resilience`) guarded by an
//! `flock` lockfile, so concurrent `splsearch --jobs` runs and other
//! processes append winners safely; merge is best-cost-wins and
//! commutative, so every reader converges to the same entries no matter
//! the append order. Entries whose fingerprints do not match the
//! current toolchain/machine are kept but not trusted: they seed
//! regression checks instead of being served as winners.
//!
//! On-disk schema (one payload per journal record):
//!
//! ```text
//! entry <transform> <n> <cc_fp> <machine_fp> | <cost_bits> <spec> | ...
//! calib <machine_fp> <cc_fp> <rel_rms_bits> <c0_bits> ... <c5_bits>
//! ```
//!
//! Costs are exact `f64` bit patterns (as in the search journal); a
//! cost of `0.0` marks an entry imported from flat wisdom that has not
//! been re-measured yet. Unknown record types are skipped (forward
//! compatibility), torn tails are healed by the journal layer.
//!
//! The second half of this module is the **pruned search**:
//! [`small_search_wisdom`] / [`large_search_wisdom`] run the same DP as
//! the plain drivers but (1) reuse trusted measured DB entries without
//! evaluating anything, (2) rank the candidate set with a
//! [`CalibratedModel`] fitted once per machine from a handful of probe
//! measurements (stored in the DB), measuring only the top-K plus
//! anything within a slack factor of the modeled best, and (3) fall
//! back to the full measurement when the model is unconfident or the
//! pruned winner regresses against a DB-recorded prior winner.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use spl_generator::fft::FftTree;
use spl_minifft::estimate::{CalibratedModel, PlanFeatures, NUM_FEATURES};
use spl_resilience::{FileLock, Journal, JournalError};
use spl_telemetry::Telemetry;

use crate::{
    compile_sexp_for_search, large_candidates, seed_kbest, small_candidates, CostSource, Evaluator,
    EvaluatorPool, Plan, SearchConfig, SearchError, SerialSource, SizeResult,
};

// ---------------------------------------------------------------------
// Typed wisdom errors + the flat-format parser (the import path)
// ---------------------------------------------------------------------

/// What went wrong on a wisdom line.
#[derive(Debug, Clone, PartialEq)]
pub enum WisdomErrorKind {
    /// The line has no `size: spec` separator.
    MissingColon,
    /// The size label is not a number.
    BadSize,
    /// The spec does not parse as a factorization tree.
    BadSpec(String),
    /// The spec parses but computes a different size than its label.
    SizeMismatch {
        /// Points the spec actually computes.
        computed: usize,
        /// Points the label claims.
        labelled: usize,
    },
}

/// A structured wisdom parse failure: which line, and what kind of
/// damage. Replaces the old stringly `SearchError::Other("wisdom line
/// ...")` errors; the rendered message is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct WisdomError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The failure class.
    pub kind: WisdomErrorKind,
}

impl fmt::Display for WisdomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wisdom line {}: ", self.line)?;
        match &self.kind {
            WisdomErrorKind::MissingColon => write!(f, "missing ':'"),
            WisdomErrorKind::BadSize => write!(f, "bad size"),
            WisdomErrorKind::BadSpec(m) => write!(f, "{m}"),
            WisdomErrorKind::SizeMismatch { computed, labelled } => {
                write!(f, "spec computes {computed} points, labelled {labelled}")
            }
        }
    }
}

impl Error for WisdomError {}

impl From<WisdomError> for SearchError {
    fn from(e: WisdomError) -> Self {
        SearchError::Wisdom(e)
    }
}

/// Serializes search winners to "wisdom" text — one `size: spec` line per
/// entry — so a later session can reuse plans without re-searching
/// (FFTW's save-a-plan workflow, paper Section 4.2).
pub fn wisdom_to_string(results: &[SizeResult]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in results {
        let _ = writeln!(out, "{}: {}", r.tree.size(), r.tree.to_spec());
    }
    out
}

/// Parses wisdom text back into trees (costs are not stored; entries come
/// back with cost 0 and can be re-measured if needed). This flat format
/// is also [`WisdomDb`]'s import path.
///
/// # Errors
///
/// Fails on malformed lines, bad specs, or a spec whose size disagrees
/// with its label.
pub fn wisdom_from_string(text: &str) -> Result<Vec<SizeResult>, WisdomError> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let err = |kind| WisdomError {
            line: lineno + 1,
            kind,
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (size, spec) = line
            .split_once(':')
            .ok_or_else(|| err(WisdomErrorKind::MissingColon))?;
        let size: usize = size
            .trim()
            .parse()
            .map_err(|_| err(WisdomErrorKind::BadSize))?;
        let tree = FftTree::from_spec(spec.trim())
            .map_err(|e| err(WisdomErrorKind::BadSpec(e.to_string())))?;
        if tree.size() != size {
            return Err(err(WisdomErrorKind::SizeMismatch {
                computed: tree.size(),
                labelled: size,
            }));
        }
        out.push(SizeResult { tree, cost: 0.0 });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the host C compiler (hash of `cc --version`'s first
/// line). DB entries recorded under a different compiler are kept but
/// not trusted.
pub fn cc_fingerprint() -> &'static str {
    static FP: OnceLock<String> = OnceLock::new();
    FP.get_or_init(|| format!("{:016x}", fnv64(spl_native::cache::cc_version())))
}

/// Fingerprint of the machine (arch, OS, CPU model, core count) —
/// measured costs only transfer between identical fingerprints.
pub fn machine_fingerprint() -> &'static str {
    static FP: OnceLock<String> = OnceLock::new();
    FP.get_or_init(|| {
        let mut desc = format!("{} {}", std::env::consts::ARCH, std::env::consts::OS);
        if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
            if let Some(line) = info.lines().find(|l| l.starts_with("model name")) {
                desc.push(' ');
                desc.push_str(line.trim());
            }
        }
        let par = std::thread::available_parallelism().map_or(1, |p| p.get());
        desc.push_str(&format!(" x{par}"));
        format!("{:016x}", fnv64(&desc))
    })
}

/// The transform component of a DB key: the transform family plus the
/// search configuration that produced the plans, so winners from
/// incompatible searches never shadow each other. Contains no spaces
/// (it is one token of a journal record).
pub fn transform_key(config: &SearchConfig) -> String {
    format!(
        "fft/{:?}-l{}-k{}-u{}",
        config.rule, config.leaf_max, config.keep, config.unroll_threshold
    )
}

// ---------------------------------------------------------------------
// The database
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EntryKey {
    transform: String,
    n: usize,
    cc_fp: String,
    machine_fp: String,
}

/// One wisdom-DB entry: the retained plans (best first) for a size
/// under one transform/configuration on one toolchain+machine.
#[derive(Debug, Clone)]
pub struct WisdomEntry {
    /// The transform/configuration key component.
    pub transform: String,
    /// The transform size.
    pub n: usize,
    /// Compiler fingerprint the costs were measured under.
    pub cc_fp: String,
    /// Machine fingerprint the costs were measured on.
    pub machine_fp: String,
    /// Retained plans, best first. Cost `0.0` marks an entry imported
    /// from flat wisdom that has not been re-measured.
    pub plans: Vec<Plan>,
}

impl WisdomEntry {
    /// Whether this entry carries real measurements (flat imports don't).
    pub fn measured(&self) -> bool {
        self.plans.first().is_some_and(|p| p.cost > 0.0)
    }

    /// The best retained plan.
    pub fn best(&self) -> &Plan {
        &self.plans[0]
    }

    fn key(&self) -> EntryKey {
        EntryKey {
            transform: self.transform.clone(),
            n: self.n,
            cc_fp: self.cc_fp.clone(),
            machine_fp: self.machine_fp.clone(),
        }
    }
}

/// The commutative merge order: measured beats unmeasured, then lower
/// best cost, then (for determinism across processes) the smaller best
/// spec string. Returns whether `a` strictly beats `b`.
fn entry_beats(a: &WisdomEntry, b: &WisdomEntry) -> bool {
    if a.measured() != b.measured() {
        return a.measured();
    }
    if a.plans.is_empty() || b.plans.is_empty() {
        return !a.plans.is_empty();
    }
    let (ca, cb) = (a.best().cost, b.best().cost);
    match ca.total_cmp(&cb) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.best().tree.to_spec() < b.best().tree.to_spec(),
    }
}

fn jerr(e: JournalError) -> SearchError {
    match e {
        JournalError::Corrupt { line, reason } => {
            SearchError::JournalCorrupt(format!("wisdom db line {line}: {reason}"))
        }
        other => SearchError::Other(other.to_string()),
    }
}

fn parse_cost_bits(bits: &str) -> Result<f64, SearchError> {
    u64::from_str_radix(bits, 16)
        .map(f64::from_bits)
        .map_err(|_| SearchError::JournalCorrupt(format!("wisdom db: bad cost bits {bits:?}")))
}

/// Parses `entry <transform> <n> <cc_fp> <machine_fp> | <bits> <spec> | ...`.
fn parse_entry(payload: &str) -> Result<WisdomEntry, SearchError> {
    let bad = || SearchError::JournalCorrupt(format!("wisdom db: malformed entry {payload:?}"));
    let rest = payload.strip_prefix("entry ").ok_or_else(bad)?;
    let mut chunks = rest.split(" | ");
    let head = chunks.next().ok_or_else(bad)?;
    let fields: Vec<&str> = head.split_whitespace().collect();
    let [transform, n, cc_fp, machine_fp] = fields.as_slice() else {
        return Err(bad());
    };
    let n: usize = n.parse().map_err(|_| bad())?;
    let mut plans = Vec::new();
    for chunk in chunks {
        let (bits, spec) = chunk.split_once(' ').ok_or_else(bad)?;
        let tree = FftTree::from_spec(spec).map_err(|e| {
            SearchError::JournalCorrupt(format!("wisdom db: bad spec {spec:?}: {e}"))
        })?;
        if tree.size() != n {
            return Err(SearchError::JournalCorrupt(format!(
                "wisdom db: spec {spec:?} computes {} points, entry says {n}",
                tree.size()
            )));
        }
        plans.push(Plan {
            cost: parse_cost_bits(bits)?,
            tree,
        });
    }
    if plans.is_empty() {
        return Err(bad());
    }
    Ok(WisdomEntry {
        transform: transform.to_string(),
        n,
        cc_fp: cc_fp.to_string(),
        machine_fp: machine_fp.to_string(),
        plans,
    })
}

fn format_entry(e: &WisdomEntry) -> String {
    use std::fmt::Write as _;
    let mut out = format!("entry {} {} {} {}", e.transform, e.n, e.cc_fp, e.machine_fp);
    for p in &e.plans {
        let _ = write!(out, " | {:016x} {}", p.cost.to_bits(), p.tree.to_spec());
    }
    out
}

/// Parses `calib <machine_fp> <cc_fp> <rel_rms_bits> <c0_bits> ...`.
fn parse_calib(payload: &str) -> Result<(String, String, CalibratedModel), SearchError> {
    let bad = || SearchError::JournalCorrupt(format!("wisdom db: malformed calib {payload:?}"));
    let fields: Vec<&str> = payload.split_whitespace().collect();
    if fields.len() != 3 + 1 + NUM_FEATURES || fields[0] != "calib" {
        return Err(bad());
    }
    let machine_fp = fields[1].to_string();
    let cc_fp = fields[2].to_string();
    let rel_rms = parse_cost_bits(fields[3])?;
    let mut coeffs = [0.0f64; NUM_FEATURES];
    for (i, c) in coeffs.iter_mut().enumerate() {
        *c = parse_cost_bits(fields[4 + i])?;
    }
    Ok((
        machine_fp,
        cc_fp,
        CalibratedModel::from_parts(coeffs, rel_rms),
    ))
}

fn format_calib(machine_fp: &str, cc_fp: &str, model: &CalibratedModel) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "calib {machine_fp} {cc_fp} {:016x}",
        model.rel_rms().to_bits()
    );
    for c in model.coeffs() {
        let _ = write!(out, " {:016x}", c.to_bits());
    }
    out
}

/// The keyed, persistent, mergeable wisdom store. See the module docs
/// for the on-disk schema and merge semantics.
#[derive(Debug)]
pub struct WisdomDb {
    dir: PathBuf,
    entries: HashMap<EntryKey, WisdomEntry>,
    calibrations: HashMap<(String, String), CalibratedModel>,
    tel: Telemetry,
}

impl WisdomDb {
    /// Opens (creating if needed) the database directory and loads all
    /// merged entries.
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt (non-torn) records.
    pub fn open(dir: &Path) -> Result<WisdomDb, SearchError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| SearchError::Other(format!("creating {}: {e}", dir.display())))?;
        let mut db = WisdomDb {
            dir: dir.to_path_buf(),
            entries: HashMap::new(),
            calibrations: HashMap::new(),
            tel: Telemetry::new(),
        };
        db.reload()?;
        Ok(db)
    }

    /// The database directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn journal_path(&self) -> PathBuf {
        self.dir.join("db.journal")
    }

    fn lock_path(&self) -> PathBuf {
        self.dir.join("db.lock")
    }

    /// Re-reads the journal from disk, replacing the in-memory view
    /// with the merged result (picks up other processes' appends).
    ///
    /// # Errors
    ///
    /// As [`WisdomDb::open`].
    pub fn reload(&mut self) -> Result<(), SearchError> {
        // The lock serializes against writers: `Journal::open` heals a
        // torn tail by rewriting the file, which must never race an
        // append in another process.
        let _lock = FileLock::acquire_or_noop(&self.lock_path());
        let (_, loaded) = Journal::open(&self.journal_path()).map_err(jerr)?;
        if loaded.dropped > 0 {
            self.tel
                .add("wisdom.db.dropped_records", loaded.dropped as u64);
        }
        self.entries.clear();
        self.calibrations.clear();
        for rec in &loaded.records {
            self.absorb(rec)?;
        }
        self.tel.add("wisdom.db.loads", 1);
        Ok(())
    }

    fn absorb(&mut self, payload: &str) -> Result<(), SearchError> {
        if payload.starts_with("entry ") {
            let e = parse_entry(payload)?;
            self.merge_in_memory(e);
        } else if payload.starts_with("calib ") {
            let (machine_fp, cc_fp, model) = parse_calib(payload)?;
            self.calibrations.insert((machine_fp, cc_fp), model);
        } else {
            // Unknown record type: a newer writer's schema. Skip it.
            self.tel.add("wisdom.db.unknown_records", 1);
        }
        Ok(())
    }

    fn merge_in_memory(&mut self, e: WisdomEntry) {
        let key = e.key();
        match self.entries.get(&key) {
            Some(incumbent) if !entry_beats(&e, incumbent) => {
                self.tel.add("wisdom.db.merge_losses", 1);
            }
            _ => {
                self.entries.insert(key, e);
            }
        }
    }

    fn append(&mut self, payload: &str) -> Result<(), SearchError> {
        let _lock = FileLock::acquire_or_noop(&self.lock_path());
        let (mut journal, _) = Journal::open(&self.journal_path()).map_err(jerr)?;
        journal.append(payload).map_err(jerr)
    }

    /// The trusted entry (current fingerprints) for a size, if any.
    pub fn lookup(&mut self, transform: &str, n: usize) -> Option<WisdomEntry> {
        let key = EntryKey {
            transform: transform.to_string(),
            n,
            cc_fp: cc_fingerprint().to_string(),
            machine_fp: machine_fingerprint().to_string(),
        };
        match self.entries.get(&key) {
            Some(e) => {
                self.tel.add("wisdom.db.hits", 1);
                Some(e.clone())
            }
            None => {
                self.tel.add("wisdom.db.misses", 1);
                None
            }
        }
    }

    /// The best stale entry (matching transform and size, *different*
    /// fingerprints) for a size. Stale plans are kept but not trusted:
    /// callers may re-measure them as regression checks, never serve
    /// their recorded costs.
    pub fn lookup_stale(&mut self, transform: &str, n: usize) -> Option<WisdomEntry> {
        let best = self
            .entries
            .values()
            .filter(|e| {
                e.transform == transform
                    && e.n == n
                    && (e.cc_fp != cc_fingerprint() || e.machine_fp != machine_fingerprint())
            })
            .fold(None::<&WisdomEntry>, |acc, e| match acc {
                Some(cur) if !entry_beats(e, cur) => Some(cur),
                _ => Some(e),
            })
            .cloned();
        if best.is_some() {
            self.tel.add("wisdom.db.stale_hits", 1);
        }
        best
    }

    /// Records plans (best first) for a size under the current
    /// fingerprints. The append is skipped when the store already holds
    /// a better entry for the key (best-cost-wins).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn record(&mut self, transform: &str, n: usize, plans: &[Plan]) -> Result<(), SearchError> {
        self.record_with(transform, n, plans, cc_fingerprint(), machine_fingerprint())
    }

    /// [`WisdomDb::record`] under explicit fingerprints (imports,
    /// tests, tooling).
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn record_with(
        &mut self,
        transform: &str,
        n: usize,
        plans: &[Plan],
        cc_fp: &str,
        machine_fp: &str,
    ) -> Result<(), SearchError> {
        if plans.is_empty() {
            return Ok(());
        }
        let e = WisdomEntry {
            transform: transform.to_string(),
            n,
            cc_fp: cc_fp.to_string(),
            machine_fp: machine_fp.to_string(),
            plans: plans.to_vec(),
        };
        if let Some(incumbent) = self.entries.get(&e.key()) {
            if !entry_beats(&e, incumbent) {
                self.tel.add("wisdom.db.merge_losses", 1);
                return Ok(());
            }
        }
        self.append(&format_entry(&e))?;
        self.tel.add("wisdom.db.records_written", 1);
        self.entries.insert(e.key(), e);
        Ok(())
    }

    /// Imports flat wisdom text as unmeasured entries (cost 0) under
    /// the given transform key and the current fingerprints. Returns
    /// the number of entries imported.
    ///
    /// # Errors
    ///
    /// [`SearchError::Wisdom`] on malformed text; I/O failures.
    pub fn import_flat(&mut self, text: &str, transform: &str) -> Result<usize, SearchError> {
        let results = wisdom_from_string(text)?;
        let count = results.len();
        for r in &results {
            self.record(
                transform,
                r.tree.size(),
                &[Plan {
                    tree: r.tree.clone(),
                    cost: r.cost,
                }],
            )?;
        }
        self.tel.add("wisdom.db.imported_entries", count as u64);
        Ok(count)
    }

    /// Exports the best plan per size across *all* entries as flat
    /// wisdom text (trusted entries preferred over stale, then the
    /// merge order). This is `spld`'s preload path and the lossless
    /// round-trip counterpart of [`WisdomDb::import_flat`].
    pub fn export_flat(&self) -> String {
        let trusted =
            |e: &WisdomEntry| e.cc_fp == cc_fingerprint() && e.machine_fp == machine_fingerprint();
        let mut per_size: HashMap<usize, &WisdomEntry> = HashMap::new();
        for e in self.entries.values() {
            match per_size.get(&e.n) {
                Some(cur) => {
                    let better = match (trusted(e), trusted(cur)) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => entry_beats(e, cur),
                    };
                    if better {
                        per_size.insert(e.n, e);
                    }
                }
                None => {
                    per_size.insert(e.n, e);
                }
            }
        }
        let mut sizes: Vec<usize> = per_size.keys().copied().collect();
        sizes.sort_unstable();
        let results: Vec<SizeResult> = sizes
            .into_iter()
            .map(|n| SizeResult {
                tree: per_size[&n].best().tree.clone(),
                cost: per_size[&n].best().cost,
            })
            .collect();
        wisdom_to_string(&results)
    }

    /// The calibrated cost model stored for the current fingerprints.
    pub fn calibration(&self) -> Option<&CalibratedModel> {
        self.calibrations.get(&(
            machine_fingerprint().to_string(),
            cc_fingerprint().to_string(),
        ))
    }

    /// Persists a calibrated model for the current fingerprints.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn store_calibration(&mut self, model: &CalibratedModel) -> Result<(), SearchError> {
        self.append(&format_calib(
            machine_fingerprint(),
            cc_fingerprint(),
            model,
        ))?;
        self.tel.add("wisdom.db.calibrations_stored", 1);
        self.calibrations.insert(
            (
                machine_fingerprint().to_string(),
                cc_fingerprint().to_string(),
            ),
            model.clone(),
        );
        Ok(())
    }

    /// All merged entries, in unspecified order.
    pub fn entries(&self) -> impl Iterator<Item = &WisdomEntry> {
        self.entries.values()
    }

    /// Number of merged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes the accumulated `wisdom.db.*` telemetry.
    pub fn drain_telemetry(&mut self) -> Telemetry {
        std::mem::take(&mut self.tel)
    }
}

// ---------------------------------------------------------------------
// Model-pruned DP drivers
// ---------------------------------------------------------------------

/// How aggressively the calibrated model prunes each size's candidate
/// set before anything is compiled or measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneConfig {
    /// Always measure the `top_k` model-ranked candidates.
    pub top_k: usize,
    /// Also measure anything modeled within this factor of the best.
    pub slack: f64,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            top_k: 3,
            slack: 1.15,
        }
    }
}

/// A pruned winner more than this factor slower than a re-measured
/// DB prior triggers the full-measurement fallback.
const REGRESSION_SLACK: f64 = 1.05;

/// A wisdom-DB-backed search session: owns the database plus the
/// fitted cost model and per-tree feature cache shared by the small and
/// large DP drivers.
#[derive(Debug)]
pub struct WisdomSession {
    db: WisdomDb,
    prune: Option<PruneConfig>,
    model: Option<CalibratedModel>,
    features: HashMap<String, Option<PlanFeatures>>,
}

impl WisdomSession {
    /// A session over an open database. `prune` enables model-based
    /// candidate pruning (calibrating on first use if the DB has no
    /// stored model for this machine).
    pub fn new(db: WisdomDb, prune: Option<PruneConfig>) -> Self {
        let model = db.calibration().cloned();
        WisdomSession {
            db,
            prune,
            model,
            features: HashMap::new(),
        }
    }

    /// The underlying database.
    pub fn db(&self) -> &WisdomDb {
        &self.db
    }

    /// The underlying database, mutably.
    pub fn db_mut(&mut self) -> &mut WisdomDb {
        &mut self.db
    }

    /// Consumes the session, returning the database.
    pub fn into_db(self) -> WisdomDb {
        self.db
    }

    /// The fitted model, if calibration has run (or was loaded).
    pub fn model(&self) -> Option<&CalibratedModel> {
        self.model.as_ref()
    }

    /// Takes accumulated session + database telemetry.
    pub fn drain_telemetry(&mut self) -> Telemetry {
        self.db.drain_telemetry()
    }

    /// Features of a candidate from the compiled (not measured!)
    /// program: dynamic op count plus the resolved engine's
    /// `vm.fuse.*` / `vm.lsr.*` / `vm.vec.*` counters. Pure Rust
    /// compilation — no `cc`, no timing. `None` when the candidate
    /// does not compile (it will then never be pruned away).
    fn features(&mut self, tree: &FftTree, unroll: usize) -> Option<PlanFeatures> {
        let key = tree.describe();
        if let Some(f) = self.features.get(&key) {
            return *f;
        }
        let f = compute_features(tree, unroll);
        self.features.insert(key, f);
        f
    }

    /// Fits (or loads) the calibrated model if pruning is requested and
    /// no model is available yet. Probe measurements go through the
    /// same cost source as the search and are counted under
    /// `search.calibration.*`.
    fn ensure_model(
        &mut self,
        config: &SearchConfig,
        src: &mut dyn CostSource,
        tel: &mut Telemetry,
    ) -> Result<(), SearchError> {
        if self.prune.is_none() || self.model.is_some() {
            return Ok(());
        }
        if let Some(m) = self.db.calibration() {
            self.model = Some(m.clone());
            return Ok(());
        }
        tel.begin_span("search.calibration");
        let probes = probe_trees(config);
        let costs = src.batch_costs(&probes);
        let mut samples = Vec::new();
        for (tree, cost) in probes.iter().zip(costs) {
            let c = match cost {
                Ok(c) => c,
                Err(_) => {
                    tel.add("search.calibration.probe_failures", 1);
                    continue;
                }
            };
            if let Some(f) = self.features(tree, config.unroll_threshold) {
                samples.push((f, c));
            }
        }
        tel.add("search.calibration.probes", samples.len() as u64);
        match CalibratedModel::fit(&samples) {
            Some(m) => {
                tel.set_metric("search.calibration.rel_rms", m.rel_rms());
                self.db.store_calibration(&m)?;
                self.model = Some(m);
            }
            None => tel.add("search.calibration.unfit", 1),
        }
        tel.end_span();
        Ok(())
    }

    /// Ranks candidates with the model and picks the indices to
    /// measure: the top-K plus anything within the slack factor of the
    /// modeled best. `None` means "measure everything" (pruning off,
    /// model unconfident, or nothing to prune).
    fn prune_selection(
        &mut self,
        candidates: &[FftTree],
        unroll: usize,
        tel: &mut Telemetry,
    ) -> Option<Vec<usize>> {
        let pc = self.prune?;
        if candidates.len() <= pc.top_k {
            return None;
        }
        let confident = self.model.as_ref().is_some_and(|m| m.confident());
        if !confident {
            if self.model.is_some() {
                tel.add("search.prune.unconfident", 1);
            }
            return None;
        }
        let preds: Vec<Option<f64>> = candidates
            .iter()
            .map(|t| {
                let f = self.features(t, unroll)?;
                let model = self.model.as_ref()?;
                Some(model.predict(&f))
            })
            .collect();
        let mut ranked: Vec<(usize, f64)> = preds
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = ranked.first().map_or(f64::INFINITY, |r| r.1);
        let mut keep: Vec<usize> = ranked
            .iter()
            .enumerate()
            .filter(|(rank, (_, p))| *rank < pc.top_k || *p <= best * pc.slack)
            .map(|(_, (i, _))| *i)
            .collect();
        // A candidate the model cannot score is never pruned away.
        keep.extend(
            preds
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_none())
                .map(|(i, _)| i),
        );
        keep.sort_unstable();
        if keep.len() >= candidates.len() {
            return None;
        }
        tel.add("search.prune.kept", keep.len() as u64);
        tel.add(
            "search.prune.skipped",
            (candidates.len() - keep.len()) as u64,
        );
        Some(keep)
    }
}

/// [`PlanFeatures`] of a candidate tree from pure-Rust compilation (no
/// `cc`, no timing): dynamic op count plus the resolved engine's
/// `vm.fuse.*` / `vm.lsr.*` / `vm.vec.*` counters. `None` when the
/// candidate does not compile. Public for tooling (the `wisdomexp`
/// estimate-vs-measured report); the search caches these per session.
pub fn plan_features(tree: &FftTree, unroll: usize) -> Option<PlanFeatures> {
    compute_features(tree, unroll)
}

fn compute_features(tree: &FftTree, unroll: usize) -> Option<PlanFeatures> {
    let unit = compile_sexp_for_search(
        &tree.to_sexp(),
        unroll,
        spl_frontend::ast::DataType::Complex,
    )
    .ok()?;
    let dynamic_ops = unit.program.dynamic_op_count() as f64;
    let vm = spl_vm::lower(&unit.program).ok()?;
    let (fused_ops, loop_overhead, vec_ops) = match vm.resolve_stats() {
        Some(rs) => (
            (rs.fused_muladd + rs.fused_negfold + rs.fused_butterfly) as f64,
            (rs.cursors + rs.strength_reduced_steps + rs.hoisted_terms) as f64,
            rs.vec_ops as f64,
        ),
        None => (0.0, 0.0, 0.0),
    };
    Some(PlanFeatures {
        n: tree.size() as f64,
        dynamic_ops,
        fused_ops,
        loop_overhead,
        vec_ops,
    })
}

/// The calibration probe set: leaves across the codelet range plus
/// radix-2 and radix-4 right-expanded chains up to 2^10, spanning both
/// unrolled straight-line code and looped splits.
fn probe_trees(config: &SearchConfig) -> Vec<FftTree> {
    let mut probes = Vec::new();
    let leaf_exp = config.leaf_max.trailing_zeros().max(1);
    for k in 1..=leaf_exp {
        if (1usize << k) <= config.leaf_max {
            probes.push(FftTree::leaf(1usize << k));
        }
    }
    for k in (leaf_exp + 1)..=(leaf_exp + 3) {
        probes.push(radix_chain(k, 1, leaf_exp, config));
        if k >= leaf_exp + 2 {
            probes.push(radix_chain(k, 2, leaf_exp, config));
        }
    }
    probes
}

fn radix_chain(k: u32, step: u32, leaf_exp: u32, config: &SearchConfig) -> FftTree {
    if k <= leaf_exp {
        return FftTree::leaf(1usize << k);
    }
    let step = step.min(k - 1);
    FftTree::node(
        config.rule,
        FftTree::leaf(1usize << step),
        radix_chain(k - step, step, leaf_exp, config),
    )
}

/// Measures the selected candidate indices (all of them when `pick` is
/// `None`), returning surviving plans in candidate order. Failures are
/// skipped and counted, successes counted under `search.plans_evaluated`.
fn measure_selected(
    candidates: &[FftTree],
    pick: Option<&[usize]>,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
) -> Vec<Plan> {
    let subset: Vec<FftTree> = match pick {
        Some(idx) => idx.iter().map(|&i| candidates[i].clone()).collect(),
        None => candidates.to_vec(),
    };
    let costs = src.batch_costs(&subset);
    let mut plans = Vec::new();
    for (tree, cost) in subset.into_iter().zip(costs) {
        match cost {
            Ok(c) => {
                tel.add("search.plans_evaluated", 1);
                plans.push(Plan { tree, cost: c });
            }
            Err(e) => tel.add(&format!("search.skipped.{}", e.kind()), 1),
        }
    }
    plans
}

/// One DP step against the DB: reuse a trusted measured entry, measure
/// an unmeasured import, or run the (possibly pruned) candidate
/// evaluation with the prior-winner regression fallback. Returns the
/// surviving plans sorted best-first (stable over candidate order) and
/// records them to the DB.
#[allow(clippy::too_many_arguments)]
fn step_wisdom(
    n: usize,
    candidates: &[FftTree],
    keep: usize,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
    transform: &str,
) -> Result<Vec<Plan>, SearchError> {
    if let Some(e) = session.db.lookup(transform, n) {
        if e.measured() {
            tel.add("wisdom.db.reused_sizes", 1);
            tel.set_metric(&format!("search.best_cost.{n}"), e.best().cost);
            return Ok(e.plans);
        }
        // An unmeasured flat import: trust the plan, measure only it.
        let mut plans = measure_selected(&e.plans_trees(), None, src, tel);
        if !plans.is_empty() {
            plans.sort_by(|a, b| a.cost.total_cmp(&b.cost));
            plans.truncate(keep);
            tel.add("wisdom.db.imports_measured", 1);
            tel.set_metric(&format!("search.best_cost.{n}"), plans[0].cost);
            session.db.record(transform, n, &plans)?;
            return Ok(plans);
        }
        // Every imported plan failed here: fall through to the search.
    }
    let pick = session.prune_selection(candidates, config.unroll_threshold, tel);
    let mut plans = measure_selected(candidates, pick.as_deref(), src, tel);
    if pick.is_some() {
        // Regression check against a DB-recorded prior winner (stale
        // fingerprints — its plan is credible, its cost is not): if the
        // re-measured prior beats the pruned winner by more than the
        // slack, the model misjudged this size; fall back to the full
        // candidate set (already-measured candidates replay from the
        // evaluator's memo cache).
        let prior = session
            .db
            .lookup_stale(transform, n)
            .map(|e| e.best().tree.clone())
            .filter(|t| !plans.iter().any(|p| &p.tree == t));
        if let Some(ptree) = prior {
            let pruned_best = plans.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
            let extra = measure_selected(std::slice::from_ref(&ptree), None, src, tel);
            if let Some(p) = extra.into_iter().next() {
                if p.cost * REGRESSION_SLACK < pruned_best {
                    tel.add("search.prune.fallbacks", 1);
                    plans = measure_selected(candidates, None, src, tel);
                } else {
                    plans.push(p);
                }
            }
        }
    }
    plans.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    plans.truncate(keep);
    if plans.is_empty() {
        return Err(SearchError::NoCandidates { n });
    }
    tel.set_metric(&format!("search.best_cost.{n}"), plans[0].cost);
    session.db.record(transform, n, &plans)?;
    Ok(plans)
}

impl WisdomEntry {
    fn plans_trees(&self) -> Vec<FftTree> {
        self.plans.iter().map(|p| p.tree.clone()).collect()
    }
}

/// [`crate::small_search_traced`] against a [`WisdomSession`]: trusted
/// DB entries are reused without measuring, unmeasured imports are
/// measured directly, and (with pruning enabled) the calibrated model
/// cuts the candidate set before any kernel is compiled. Every
/// completed size is recorded back to the DB.
///
/// # Errors
///
/// As [`crate::small_search_traced`], plus DB I/O failures.
pub fn small_search_wisdom(
    max_k: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_wisdom_src(max_k, config, &mut SerialSource(eval), tel, session)
}

/// [`small_search_wisdom`] over an [`EvaluatorPool`] (see
/// [`crate::small_search_parallel`] for the determinism contract).
///
/// # Errors
///
/// As [`small_search_wisdom`].
pub fn small_search_wisdom_parallel(
    max_k: u32,
    config: &SearchConfig,
    pool: &mut EvaluatorPool,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
) -> Result<Vec<SizeResult>, SearchError> {
    small_search_wisdom_src(max_k, config, pool, tel, session)
}

fn small_search_wisdom_src(
    max_k: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
) -> Result<Vec<SizeResult>, SearchError> {
    tel.begin_span("search.small");
    session.ensure_model(config, src, tel)?;
    let transform = transform_key(config);
    let mut best: Vec<SizeResult> = Vec::new();
    for k in 1..=max_k {
        tel.begin_span(&format!("small 2^{k}"));
        let candidates = small_candidates(k, config, &best);
        let plans = step_wisdom(
            1usize << k,
            &candidates,
            1,
            config,
            src,
            tel,
            session,
            &transform,
        );
        tel.end_span();
        let plans = plans?;
        best.push(SizeResult {
            tree: plans[0].tree.clone(),
            cost: plans[0].cost,
        });
    }
    tel.end_span();
    tel.merge(&src.drain());
    tel.merge(&session.drain_telemetry());
    Ok(best)
}

/// [`crate::large_search_traced`] against a [`WisdomSession`] (see
/// [`small_search_wisdom`]). Each size's full k-best plan list is
/// reused from / recorded to the DB.
///
/// # Errors
///
/// As [`crate::large_search_traced`], plus DB I/O failures.
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search_wisdom(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    eval: &mut dyn Evaluator,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_wisdom_src(
        small,
        max_log,
        config,
        &mut SerialSource(eval),
        tel,
        session,
    )
}

/// [`large_search_wisdom`] over an [`EvaluatorPool`].
///
/// # Errors
///
/// As [`large_search_wisdom`].
///
/// # Panics
///
/// Panics if `small` does not cover sizes up to `config.leaf_max`.
pub fn large_search_wisdom_parallel(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    pool: &mut EvaluatorPool,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    large_search_wisdom_src(small, max_log, config, pool, tel, session)
}

fn large_search_wisdom_src(
    small: &[SizeResult],
    max_log: u32,
    config: &SearchConfig,
    src: &mut dyn CostSource,
    tel: &mut Telemetry,
    session: &mut WisdomSession,
) -> Result<Vec<Vec<Plan>>, SearchError> {
    tel.begin_span("search.large");
    session.ensure_model(config, src, tel)?;
    let transform = transform_key(config);
    let small_max_k = small.len() as u32;
    let mut kbest = seed_kbest(small, config);
    let mut out = Vec::new();
    for k in (small_max_k + 1)..=max_log {
        tel.begin_span(&format!("large 2^{k}"));
        let candidates = large_candidates(k, config, &kbest);
        let plans = step_wisdom(
            1usize << k,
            &candidates,
            config.keep,
            config,
            src,
            tel,
            session,
            &transform,
        );
        tel.end_span();
        let plans = plans?;
        tel.add("search.plans_kept", plans.len() as u64);
        kbest.insert(k, plans.clone());
        out.push(plans);
    }
    tel.end_span();
    tel.merge(&src.drain());
    tel.merge(&session.drain_telemetry());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{large_search, small_search, OpCountEvaluator};
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spl_wisdom_db_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn plan(spec: &str, cost: f64) -> Plan {
        Plan {
            tree: FftTree::from_spec(spec).unwrap(),
            cost,
        }
    }

    #[test]
    fn db_round_trips_entries_across_open() {
        let dir = tmp_dir("roundtrip");
        let mut db = WisdomDb::open(&dir).unwrap();
        db.record("fft/t", 8, &[plan("(ct 2 4)", 3.5), plan("(ct 4 2)", 4.0)])
            .unwrap();
        db.record("fft/t", 4, &[plan("(ct 2 2)", 1.25)]).unwrap();
        drop(db);
        let mut db = WisdomDb::open(&dir).unwrap();
        assert_eq!(db.len(), 2);
        let e = db.lookup("fft/t", 8).expect("trusted hit");
        assert_eq!(e.plans.len(), 2);
        assert_eq!(e.best().cost, 3.5);
        assert_eq!(e.best().tree.to_spec(), "(ct 2 4)");
        assert!(e.measured());
        assert!(db.lookup("fft/t", 16).is_none());
        let tel = db.drain_telemetry();
        assert_eq!(tel.counter("wisdom.db.hits"), Some(1));
        assert_eq!(tel.counter("wisdom.db.misses"), Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn db_merge_is_best_cost_wins_and_commutative() {
        let dir = tmp_dir("merge");
        let mut db = WisdomDb::open(&dir).unwrap();
        db.record("fft/t", 8, &[plan("(ct 2 4)", 5.0)]).unwrap();
        // A better cost replaces; a worse one is a merge loss and is
        // not served.
        db.record("fft/t", 8, &[plan("(ct 4 2)", 4.0)]).unwrap();
        db.record("fft/t", 8, &[plan("(ct 2 4)", 9.0)]).unwrap();
        assert_eq!(db.lookup("fft/t", 8).unwrap().best().cost, 4.0);
        let tel = db.drain_telemetry();
        assert_eq!(tel.counter("wisdom.db.merge_losses"), Some(1));
        // Reload sees both appended records and converges to the same
        // winner regardless of order.
        db.reload().unwrap();
        assert_eq!(db.lookup("fft/t", 8).unwrap().best().cost, 4.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn db_measured_beats_unmeasured_import() {
        let dir = tmp_dir("measured");
        let mut db = WisdomDb::open(&dir).unwrap();
        db.record("fft/t", 4, &[plan("(ct 2 2)", 0.0)]).unwrap();
        assert!(!db.lookup("fft/t", 4).unwrap().measured());
        db.record("fft/t", 4, &[plan("4", 7.0)]).unwrap();
        let e = db.lookup("fft/t", 4).unwrap();
        assert!(e.measured());
        assert_eq!(e.best().tree.to_spec(), "4");
        // An unmeasured import never displaces a measurement.
        db.record("fft/t", 4, &[plan("(ct 2 2)", 0.0)]).unwrap();
        assert!(db.lookup("fft/t", 4).unwrap().measured());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn db_stale_fingerprints_kept_but_not_trusted() {
        let dir = tmp_dir("stale");
        let mut db = WisdomDb::open(&dir).unwrap();
        db.record_with("fft/t", 8, &[plan("(ct 2 4)", 1.0)], "deadbeef", "cafebabe")
            .unwrap();
        assert!(db.lookup("fft/t", 8).is_none(), "stale must not be trusted");
        let stale = db.lookup_stale("fft/t", 8).expect("stale visible");
        assert_eq!(stale.cc_fp, "deadbeef");
        // A trusted entry for the same size coexists under its own key.
        db.record("fft/t", 8, &[plan("(ct 4 2)", 2.0)]).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.lookup("fft/t", 8).unwrap().best().tree.to_spec(),
            "(ct 4 2)"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flat_wisdom_imports_losslessly() {
        let dir = tmp_dir("import");
        let mut db = WisdomDb::open(&dir).unwrap();
        let flat = "2: 2\n4: (ct 2 2)\n8: (ct 2 (ct 2 2))\n";
        assert_eq!(db.import_flat(flat, "fft/t").unwrap(), 3);
        assert_eq!(db.export_flat(), flat);
        // Round-trips across a reopen too.
        drop(db);
        let db = WisdomDb::open(&dir).unwrap();
        assert_eq!(db.export_flat(), flat);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_flat_reports_typed_errors() {
        let dir = tmp_dir("import_err");
        let mut db = WisdomDb::open(&dir).unwrap();
        let err = db.import_flat("16: (ct 2 2)", "fft/t").unwrap_err();
        match err {
            SearchError::Wisdom(e) => assert_eq!(
                e.kind,
                WisdomErrorKind::SizeMismatch {
                    computed: 4,
                    labelled: 16
                }
            ),
            other => panic!("expected wisdom error, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn calibration_round_trips() {
        let dir = tmp_dir("calib");
        let mut db = WisdomDb::open(&dir).unwrap();
        assert!(db.calibration().is_none());
        let model = CalibratedModel::from_parts([0.5, 1.5, -2.0, 3.0, 0.0, 1.0], 0.125);
        db.store_calibration(&model).unwrap();
        assert_eq!(db.calibration(), Some(&model));
        drop(db);
        let db = WisdomDb::open(&dir).unwrap();
        assert_eq!(db.calibration(), Some(&model));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wisdom_search_matches_plain_and_reuses_on_rerun() {
        let dir = tmp_dir("search");
        let config = SearchConfig {
            leaf_max: 8,
            ..SearchConfig::default()
        };
        let mut eval = OpCountEvaluator::default();
        let plain_small = small_search(3, &config, &mut eval).unwrap();
        let plain_large = large_search(&plain_small, 6, &config, &mut eval).unwrap();

        let db = WisdomDb::open(&dir).unwrap();
        let mut session = WisdomSession::new(db, None);
        let mut tel = Telemetry::new();
        let small = small_search_wisdom(
            3,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel,
            &mut session,
        )
        .unwrap();
        let large = large_search_wisdom(
            &small,
            6,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel,
            &mut session,
        )
        .unwrap();
        for (a, b) in small.iter().zip(&plain_small) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.cost, b.cost);
        }
        for (a, b) in large.iter().zip(&plain_large) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.tree, y.tree);
                assert_eq!(x.cost, y.cost);
            }
        }

        // A second session over the same DB reuses every size: zero
        // evaluations.
        let mut session = WisdomSession::new(WisdomDb::open(&dir).unwrap(), None);
        let mut tel2 = Telemetry::new();
        let small2 = small_search_wisdom(
            3,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel2,
            &mut session,
        )
        .unwrap();
        let large2 = large_search_wisdom(
            &small2,
            6,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel2,
            &mut session,
        )
        .unwrap();
        assert_eq!(tel2.counter("search.plans_evaluated"), None);
        assert_eq!(tel2.counter("wisdom.db.reused_sizes"), Some(6));
        for (a, b) in small2.iter().zip(&plain_small) {
            assert_eq!(a.tree, b.tree);
        }
        for (a, b) in large2.iter().zip(&plain_large) {
            assert_eq!(a[0].tree, b[0].tree);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pruned_wisdom_search_calibrates_and_matches_opcount_winners() {
        let dir = tmp_dir("pruned");
        // Small leaves keep every compiled probe/candidate tiny so the
        // test stays fast in debug builds.
        let config = SearchConfig {
            leaf_max: 16,
            ..SearchConfig::default()
        };
        let mut plain_tel = Telemetry::new();
        let mut eval = OpCountEvaluator::default();
        let plain_small =
            crate::small_search_traced(4, &config, &mut eval, &mut plain_tel).unwrap();
        let plain_large =
            crate::large_search_traced(&plain_small, 7, &config, &mut eval, &mut plain_tel)
                .unwrap();

        let db = WisdomDb::open(&dir).unwrap();
        let mut session = WisdomSession::new(db, Some(PruneConfig::default()));
        let mut tel = Telemetry::new();
        let small = small_search_wisdom(
            4,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel,
            &mut session,
        )
        .unwrap();
        let large = large_search_wisdom(
            &small,
            7,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel,
            &mut session,
        )
        .unwrap();
        // Dynamic-op costs are exactly linear in the dynamic-op feature,
        // so calibration fits tightly and pruning keeps the true winners.
        let model = session.model().expect("calibrated");
        assert!(model.confident(), "rel_rms={}", model.rel_rms());
        assert!(tel.counter("search.calibration.probes").unwrap() >= 8);
        assert!(tel.counter("search.prune.skipped").unwrap_or(0) > 0);
        for (a, b) in small.iter().zip(&plain_small) {
            assert_eq!(a.tree, b.tree, "small winners must survive pruning");
        }
        for (a, b) in large.iter().zip(&plain_large) {
            assert_eq!(a[0].tree, b[0].tree, "large winners must survive pruning");
        }
        // Fewer evaluations than the exhaustive search at these sizes
        // (probe measurements are counted separately).
        let exhaustive = plain_tel.counter("search.plans_evaluated").unwrap();
        let pruned = tel.counter("search.plans_evaluated").unwrap();
        assert!(pruned < exhaustive, "pruned {pruned} vs {exhaustive}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unmeasured_import_is_measured_not_searched() {
        let dir = tmp_dir("import_measure");
        let config = SearchConfig {
            leaf_max: 8,
            ..SearchConfig::default()
        };
        let transform = transform_key(&config);
        let mut db = WisdomDb::open(&dir).unwrap();
        // Deliberately import a non-winning plan for size 8.
        db.import_flat("2: 2\n4: (ct 2 2)\n8: (ct 4 2)\n", &transform)
            .unwrap();
        let mut session = WisdomSession::new(db, None);
        let mut tel = Telemetry::new();
        let small = small_search_wisdom(
            3,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel,
            &mut session,
        )
        .unwrap();
        // The imported plan was trusted: measured as-is, not re-searched.
        assert_eq!(small[2].tree.to_spec(), "(ct 4 2)");
        assert!(small[2].cost > 0.0, "import must be re-measured");
        assert_eq!(tel.counter("wisdom.db.imports_measured"), Some(3));
        assert_eq!(tel.counter("search.plans_evaluated"), Some(3));
        // The measurement was recorded: a fresh session reuses it.
        let mut session = WisdomSession::new(WisdomDb::open(&dir).unwrap(), None);
        let mut tel2 = Telemetry::new();
        small_search_wisdom(
            3,
            &config,
            &mut OpCountEvaluator::default(),
            &mut tel2,
            &mut session,
        )
        .unwrap();
        assert_eq!(tel2.counter("search.plans_evaluated"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_are_stable_hex() {
        assert_eq!(cc_fingerprint().len(), 16);
        assert_eq!(machine_fingerprint().len(), 16);
        assert_eq!(cc_fingerprint(), cc_fingerprint());
        assert!(cc_fingerprint().chars().all(|c| c.is_ascii_hexdigit()));
        assert!(machine_fingerprint().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn unknown_record_types_are_skipped() {
        let dir = tmp_dir("unknown");
        {
            let db = WisdomDb::open(&dir).unwrap();
            let (mut journal, _) = Journal::open(&db.journal_path()).unwrap();
            journal.append("future v2 something").unwrap();
        }
        let mut db = WisdomDb::open(&dir).unwrap();
        assert!(db.is_empty());
        assert_eq!(
            db.drain_telemetry().counter("wisdom.db.unknown_records"),
            Some(1)
        );
        db.record("fft/t", 4, &[plan("(ct 2 2)", 1.0)]).unwrap();
        db.reload().unwrap();
        assert_eq!(db.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
