//! The per-candidate degradation chain.
//!
//! A long search should not abort because one candidate's native build
//! hung or its kernel segfaulted: [`ResilientEvaluator`] tries a chain
//! of tiers — by convention most-accurate first (native), cheapest last
//! (op-count model) — and falls through to the next tier on any failure.
//! Every degradation, quarantine, and failure class is counted in
//! telemetry so the run report shows exactly how trustworthy each
//! number is.

use spl_generator::fft::FftTree;
use spl_telemetry::Telemetry;

use crate::{Evaluator, NativeEvaluator, OpCountEvaluator, SearchError};

/// A candidate whose output failed dense-reference verification,
/// recorded for the run report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The candidate's factorization (its `describe()` string).
    pub plan: String,
    /// The tier that rejected it.
    pub tier: String,
    /// The full verification error.
    pub detail: String,
}

/// An [`Evaluator`] that degrades per candidate through a chain of
/// tiers instead of failing.
///
/// On a tier failure the next tier is consulted (counted as
/// `search.degradations`); verification failures are additionally
/// quarantined (`search.quarantined`, [`ResilientEvaluator::quarantined`]).
/// Only when *every* tier fails does [`Evaluator::cost`] return
/// [`SearchError::Exhausted`].
///
/// Telemetry written per call: `search.eval_tier.<name>` (which tier
/// produced the accepted cost) and `search.failures.<kind>` for each
/// tier failure along the way.
#[derive(Default)]
pub struct ResilientEvaluator {
    tiers: Vec<(String, Box<dyn Evaluator>)>,
    quarantined: Vec<QuarantineEntry>,
    tel: Telemetry,
}

impl std::fmt::Debug for ResilientEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientEvaluator")
            .field(
                "tiers",
                &self.tiers.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("quarantined", &self.quarantined.len())
            .finish()
    }
}

impl ResilientEvaluator {
    /// An empty chain; add tiers with [`ResilientEvaluator::tier`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a named tier (earlier tiers are tried first).
    pub fn tier(mut self, name: &str, eval: Box<dyn Evaluator>) -> Self {
        self.tiers.push((name.to_string(), eval));
        self
    }

    /// The paper-faithful chain: native timing, degrading to VM timing,
    /// degrading to the deterministic op-count model.
    pub fn standard(unroll_threshold: usize, min_time: std::time::Duration) -> Self {
        Self::new()
            .tier(
                "native",
                Box::new(NativeEvaluator::new(unroll_threshold, min_time)),
            )
            .tier(
                "vm",
                Box::new(crate::MeasuredEvaluator::new(unroll_threshold, min_time)),
            )
            .tier("opcount", Box::new(OpCountEvaluator::default()))
    }

    /// Candidates quarantined so far (verification failures).
    pub fn quarantined(&self) -> &[QuarantineEntry] {
        &self.quarantined
    }
}

impl Evaluator for ResilientEvaluator {
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError> {
        let n_tiers = self.tiers.len();
        let mut last: Option<SearchError> = None;
        for (i, (name, eval)) in self.tiers.iter_mut().enumerate() {
            match eval.cost(tree) {
                Ok(c) => {
                    self.tel.add(&format!("search.eval_tier.{name}"), 1);
                    return Ok(c);
                }
                Err(e) => {
                    self.tel.add(&format!("search.failures.{}", e.kind()), 1);
                    if matches!(e, SearchError::VerificationFailed(_)) {
                        self.tel.add("search.quarantined", 1);
                        self.quarantined.push(QuarantineEntry {
                            plan: tree.describe(),
                            tier: name.clone(),
                            detail: e.to_string(),
                        });
                    }
                    if i + 1 < n_tiers {
                        self.tel.add("search.degradations", 1);
                    }
                    last = Some(e);
                }
            }
        }
        Err(SearchError::Exhausted(match last {
            Some(e) => format!(
                "all {n_tiers} tiers failed for {}; last: {e}",
                tree.describe()
            ),
            None => "no evaluation tiers configured".to_string(),
        }))
    }

    fn drain_telemetry(&mut self) -> Telemetry {
        let mut tel = std::mem::take(&mut self.tel);
        for (_, eval) in &mut self.tiers {
            tel.merge(&eval.drain_telemetry());
        }
        tel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{small_search, SearchConfig};
    use spl_generator::fft::Rule;

    /// A tier that always fails with a fixed error.
    struct Failing(SearchError);

    impl Evaluator for Failing {
        fn cost(&mut self, _tree: &FftTree) -> Result<f64, SearchError> {
            Err(self.0.clone())
        }
    }

    fn t4() -> FftTree {
        FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2))
    }

    #[test]
    fn falls_through_to_working_tier() {
        let mut eval = ResilientEvaluator::new()
            .tier(
                "broken",
                Box::new(Failing(SearchError::Timeout("injected".into()))),
            )
            .tier("opcount", Box::new(OpCountEvaluator::default()));
        let c = eval.cost(&t4()).unwrap();
        assert!(c > 0.0);
        let tel = eval.drain_telemetry();
        assert_eq!(tel.counter("search.degradations"), Some(1));
        assert_eq!(tel.counter("search.failures.timeout"), Some(1));
        assert_eq!(tel.counter("search.eval_tier.opcount"), Some(1));
    }

    #[test]
    fn verification_failures_are_quarantined() {
        let mut eval = ResilientEvaluator::new()
            .tier(
                "miscompiling",
                Box::new(Failing(SearchError::VerificationFailed("bad bits".into()))),
            )
            .tier("opcount", Box::new(OpCountEvaluator::default()));
        eval.cost(&t4()).unwrap();
        assert_eq!(eval.quarantined().len(), 1);
        assert_eq!(eval.quarantined()[0].tier, "miscompiling");
        let tel = eval.drain_telemetry();
        assert_eq!(tel.counter("search.quarantined"), Some(1));
    }

    #[test]
    fn exhausted_when_all_tiers_fail() {
        let mut eval = ResilientEvaluator::new()
            .tier(
                "a",
                Box::new(Failing(SearchError::KernelCrashed("sig 11".into()))),
            )
            .tier(
                "b",
                Box::new(Failing(SearchError::Timeout("budget".into()))),
            );
        let err = eval.cost(&t4()).unwrap_err();
        assert!(matches!(err, SearchError::Exhausted(_)), "{err}");
        let tel = eval.drain_telemetry();
        // Failing at the last tier is exhaustion, not a degradation.
        assert_eq!(tel.counter("search.degradations"), Some(1));
    }

    #[test]
    fn empty_chain_is_exhausted() {
        let mut eval = ResilientEvaluator::new();
        assert!(matches!(eval.cost(&t4()), Err(SearchError::Exhausted(_))));
    }

    #[test]
    fn search_completes_through_degraded_chain() {
        let mut eval = ResilientEvaluator::new()
            .tier(
                "flaky",
                Box::new(Failing(SearchError::CompileFailed("cc died".into()))),
            )
            .tier("opcount", Box::new(OpCountEvaluator::default()));
        let best = small_search(4, &SearchConfig::default(), &mut eval).unwrap();
        assert_eq!(best.len(), 4);
    }
}
