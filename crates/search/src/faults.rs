//! Deterministic fault injection for exercising the resilience path.
//!
//! [`FaultyEvaluator`] wraps any [`Evaluator`] and, with configurable
//! probabilities drawn from a seeded SplitMix64 stream, replaces an
//! evaluation with an injected timeout, crash, or corrupt-result
//! (verification) failure. Equal seeds give byte-identical fault
//! sequences, so CI can assert that a search under ≥10 % faults still
//! completes, quarantines what it must, and records its degradations.

use spl_generator::fft::FftTree;
use spl_numeric::rng::Rng;
use spl_telemetry::Telemetry;

use crate::{Evaluator, SearchError};

/// Where a fault roll comes from.
///
/// *Sequential* draws one value per `cost` call from a single stream —
/// byte-identical across runs, but dependent on evaluation *order*.
/// *Keyed* derives each roll from the seed and the candidate's
/// description, so the same candidates fault no matter the order (or
/// the number of pool workers) evaluating them.
#[derive(Debug)]
enum DrawMode {
    Sequential(Rng),
    Keyed(u64),
}

/// 64-bit FNV-1a, used to fold a candidate description into a seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An [`Evaluator`] wrapper that injects deterministic faults.
#[derive(Debug)]
pub struct FaultyEvaluator<E> {
    inner: E,
    draw: DrawMode,
    /// Probability an evaluation becomes [`SearchError::Timeout`].
    pub p_timeout: f64,
    /// Probability an evaluation becomes [`SearchError::KernelCrashed`].
    pub p_crash: f64,
    /// Probability an evaluation becomes
    /// [`SearchError::VerificationFailed`] (a corrupt result caught by
    /// the dense check).
    pub p_corrupt: f64,
    tel: Telemetry,
}

impl<E: Evaluator> FaultyEvaluator<E> {
    /// Wraps `inner`, splitting `fault_rate` evenly across the three
    /// fault classes. `fault_rate` is the total probability that any
    /// one evaluation fails.
    pub fn new(inner: E, seed: u64, fault_rate: f64) -> Self {
        let p = (fault_rate / 3.0).clamp(0.0, 1.0 / 3.0);
        Self::with_rates(inner, seed, p, p, p)
    }

    /// Like [`FaultyEvaluator::new`], but each candidate's fault roll
    /// is derived from `(seed, candidate description)` instead of a
    /// sequential stream: evaluation order — and therefore worker count
    /// in a parallel search — cannot change which candidates fault.
    pub fn keyed(inner: E, seed: u64, fault_rate: f64) -> Self {
        let p = (fault_rate / 3.0).clamp(0.0, 1.0 / 3.0);
        FaultyEvaluator {
            draw: DrawMode::Keyed(seed),
            ..Self::with_rates(inner, seed, p, p, p)
        }
    }

    /// Wraps `inner` with explicit per-class fault probabilities.
    pub fn with_rates(inner: E, seed: u64, p_timeout: f64, p_crash: f64, p_corrupt: f64) -> Self {
        FaultyEvaluator {
            inner,
            draw: DrawMode::Sequential(Rng::new(seed)),
            p_timeout,
            p_crash,
            p_corrupt,
            tel: Telemetry::new(),
        }
    }

    /// Unwraps the inner evaluator.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: Evaluator> Evaluator for FaultyEvaluator<E> {
    fn cost(&mut self, tree: &FftTree) -> Result<f64, SearchError> {
        // One draw per evaluation, windowed over the three classes, so
        // the total fault rate is exactly the sum of the probabilities.
        let roll = match &mut self.draw {
            DrawMode::Sequential(rng) => rng.next_f64(),
            DrawMode::Keyed(seed) => Rng::new(*seed ^ fnv1a(tree.describe().as_bytes())).next_f64(),
        };
        if roll < self.p_timeout {
            self.tel.add("search.faults_injected.timeout", 1);
            return Err(SearchError::Timeout(format!(
                "injected timeout for {}",
                tree.describe()
            )));
        }
        if roll < self.p_timeout + self.p_crash {
            self.tel.add("search.faults_injected.crash", 1);
            return Err(SearchError::KernelCrashed(format!(
                "injected crash for {}",
                tree.describe()
            )));
        }
        if roll < self.p_timeout + self.p_crash + self.p_corrupt {
            self.tel.add("search.faults_injected.corrupt", 1);
            return Err(SearchError::VerificationFailed(format!(
                "injected corrupt result for {}",
                tree.describe()
            )));
        }
        self.inner.cost(tree)
    }

    fn drain_telemetry(&mut self) -> Telemetry {
        let mut tel = std::mem::take(&mut self.tel);
        tel.merge(&self.inner.drain_telemetry());
        tel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpCountEvaluator;
    use spl_generator::fft::Rule;

    fn t4() -> FftTree {
        FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2))
    }

    #[test]
    fn zero_rate_is_transparent() {
        let mut plain = OpCountEvaluator::default();
        let want = plain.cost(&t4()).unwrap();
        let mut faulty = FaultyEvaluator::new(OpCountEvaluator::default(), 1, 0.0);
        for _ in 0..50 {
            assert_eq!(faulty.cost(&t4()).unwrap(), want);
        }
    }

    #[test]
    fn full_rate_always_fails() {
        let mut faulty = FaultyEvaluator::with_rates(OpCountEvaluator::default(), 2, 1.0, 0.0, 0.0);
        for _ in 0..20 {
            assert!(matches!(faulty.cost(&t4()), Err(SearchError::Timeout(_))));
        }
    }

    #[test]
    fn equal_seeds_give_identical_fault_sequences() {
        let mut a = FaultyEvaluator::new(OpCountEvaluator::default(), 99, 0.5);
        let mut b = FaultyEvaluator::new(OpCountEvaluator::default(), 99, 0.5);
        for _ in 0..100 {
            let ra = a.cost(&t4()).map_err(|e| e.kind());
            let rb = b.cost(&t4()).map_err(|e| e.kind());
            assert_eq!(ra.is_ok(), rb.is_ok());
            assert_eq!(ra.err(), rb.err());
        }
    }

    #[test]
    fn keyed_mode_is_order_independent() {
        let trees: Vec<FftTree> = vec![
            FftTree::leaf(2),
            FftTree::leaf(4),
            t4(),
            FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(4)),
            FftTree::leaf(16),
        ];
        let mut forward = FaultyEvaluator::keyed(OpCountEvaluator::default(), 42, 0.6);
        let mut backward = FaultyEvaluator::keyed(OpCountEvaluator::default(), 42, 0.6);
        let fwd: Vec<_> = trees
            .iter()
            .map(|t| forward.cost(t).map_err(|e| e.kind()))
            .collect();
        let mut bwd: Vec<_> = trees
            .iter()
            .rev()
            .map(|t| backward.cost(t).map_err(|e| e.kind()))
            .collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
        // A sequential evaluator at the same settings would disagree
        // with itself under reordering for at least one of these seeds;
        // keyed mode must also actually inject something at 60 %.
        assert!(fwd.iter().any(|r| r.is_err()), "{fwd:?}");
    }

    #[test]
    fn keyed_mode_depends_on_seed() {
        let trees: Vec<FftTree> = (1..=6).map(|k| FftTree::leaf(1 << k)).collect();
        let outcomes = |seed: u64| -> Vec<bool> {
            let mut e = FaultyEvaluator::keyed(OpCountEvaluator::default(), seed, 0.5);
            trees.iter().map(|t| e.cost(t).is_ok()).collect()
        };
        // Equal seeds agree; some pair of distinct seeds must differ.
        assert_eq!(outcomes(7), outcomes(7));
        assert!(
            (0..20)
                .map(outcomes)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1
        );
    }

    #[test]
    fn all_three_classes_occur_and_are_counted() {
        let mut faulty = FaultyEvaluator::new(OpCountEvaluator::default(), 7, 0.9);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..300 {
            if let Err(e) = faulty.cost(&t4()) {
                kinds.insert(e.kind());
            }
        }
        assert!(kinds.contains("timeout"), "{kinds:?}");
        assert!(kinds.contains("kernel_crashed"), "{kinds:?}");
        assert!(kinds.contains("verification_failed"), "{kinds:?}");
        let tel = faulty.drain_telemetry();
        let total = tel.counter("search.faults_injected.timeout").unwrap_or(0)
            + tel.counter("search.faults_injected.crash").unwrap_or(0)
            + tel.counter("search.faults_injected.corrupt").unwrap_or(0);
        assert!(total > 200, "expected ~270 injected faults, saw {total}");
    }
}
