//! Parallel candidate evaluation.
//!
//! The expensive stages of plan search — formula expansion, SPL
//! compilation, the `cc` invocation, dense-reference verification — are
//! timing-*insensitive*: running them concurrently cannot change their
//! result. Only the wall-clock measurement of a kernel is
//! timing-*sensitive*. [`EvaluatorPool`] exploits that split: a fixed
//! set of worker evaluators pulls candidates from a shared queue, while
//! a single [`MeasurementGate`] serializes the measurement sections so
//! at most one kernel is ever being timed (the other workers keep
//! compiling and verifying in the meantime).
//!
//! Results are merged back **in candidate-index order**, so the winner
//! selection downstream sees exactly the sequence a serial run would
//! produce. With a deterministic evaluator (op-count model, keyed fault
//! injection) a pool of any size is therefore bit-identical to
//! `--jobs 1`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use spl_generator::fft::FftTree;
use spl_telemetry::Telemetry;

use crate::{Evaluator, SearchError};

/// The shared measurement token: whoever holds it may run wall-clock
/// timing. Cloning yields a handle to the *same* gate.
///
/// Evaluators acquire the gate only around their timing sections
/// (`measure`, `measure_sandboxed`), never around compilation or
/// verification, so parallel workers contend only for the timer.
#[derive(Clone, Debug, Default)]
pub struct MeasurementGate(Arc<Mutex<()>>);

impl MeasurementGate {
    /// A fresh gate, unrelated to any other.
    pub fn new() -> Self {
        MeasurementGate::default()
    }

    /// Blocks until this handle holds the measurement token; the token
    /// is released when the returned guard drops.
    pub fn acquire(&self) -> MeasurementToken<'_> {
        // A worker panicking while timing poisons nothing we rely on:
        // the gate guards no data, only exclusivity.
        MeasurementToken(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Proof of exclusive measurement rights (see [`MeasurementGate`]).
#[must_use = "timing is only serialized while the token is held"]
pub struct MeasurementToken<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

/// What a worker-evaluator factory gets to know about its worker.
#[derive(Clone, Debug)]
pub struct WorkerContext {
    /// This worker's index in `0..jobs`.
    pub worker: usize,
    /// The pool-wide measurement gate; measured evaluators must be
    /// built with it (`with_gate`) so their timing is serialized.
    pub gate: MeasurementGate,
}

/// Where the DP loops get candidate costs from: either a plain serial
/// evaluator or an [`EvaluatorPool`]. Batch-shaped so the pool can
/// schedule a whole size's candidates at once.
pub(crate) trait CostSource {
    /// Costs for `trees`, index-aligned with the input.
    fn batch_costs(&mut self, trees: &[FftTree]) -> Vec<Result<f64, SearchError>>;

    /// Takes accumulated telemetry (see [`Evaluator::drain_telemetry`]).
    fn drain(&mut self) -> Telemetry;
}

/// Adapts a `&mut dyn Evaluator` to the batch interface: candidates are
/// evaluated one after the other, in order — the historical behavior.
pub(crate) struct SerialSource<'a>(pub &'a mut dyn Evaluator);

impl CostSource for SerialSource<'_> {
    fn batch_costs(&mut self, trees: &[FftTree]) -> Vec<Result<f64, SearchError>> {
        trees.iter().map(|t| self.0.cost(t)).collect()
    }

    fn drain(&mut self) -> Telemetry {
        self.0.drain_telemetry()
    }
}

/// A worker's share of a batch: `(candidate index, result)` pairs.
type WorkerResults = Vec<(usize, Result<f64, SearchError>)>;

/// A fixed crew of worker evaluators sharing one candidate queue and
/// one [`MeasurementGate`].
///
/// Each worker owns an independent [`Evaluator`] built by the factory
/// handed to [`EvaluatorPool::new`], so per-evaluator state (memo
/// caches, telemetry) is never contended. Batches are distributed by
/// work-stealing (an atomic next-candidate index) and the results are
/// merged in candidate order. A pool of one worker degenerates to the
/// serial search, with no threads spawned.
pub struct EvaluatorPool {
    workers: Vec<Box<dyn Evaluator>>,
    tel: Telemetry,
}

impl EvaluatorPool {
    /// Builds `jobs.max(1)` workers. The factory receives each worker's
    /// [`WorkerContext`]; measured evaluators must adopt `ctx.gate` so
    /// the pool's timing stays serialized.
    pub fn new(
        jobs: usize,
        mut factory: impl FnMut(&WorkerContext) -> Box<dyn Evaluator>,
    ) -> EvaluatorPool {
        let gate = MeasurementGate::new();
        let workers = (0..jobs.max(1))
            .map(|worker| {
                factory(&WorkerContext {
                    worker,
                    gate: gate.clone(),
                })
            })
            .collect();
        EvaluatorPool {
            workers,
            tel: Telemetry::new(),
        }
    }

    /// Number of workers.
    pub fn jobs(&self) -> usize {
        self.workers.len()
    }

    /// Evaluates every tree, returning costs index-aligned with the
    /// input. Work is stolen candidate-by-candidate; results land in
    /// their candidate's slot regardless of which worker produced them
    /// or in what order they finished.
    pub fn costs(&mut self, trees: &[FftTree]) -> Vec<Result<f64, SearchError>> {
        if self.workers.len() == 1 || trees.len() <= 1 {
            self.tel
                .add("search.worker.0.candidates", trees.len() as u64);
            let w = &mut self.workers[0];
            return trees.iter().map(|t| w.cost(t)).collect();
        }
        let next = AtomicUsize::new(0);
        let shares: Vec<(usize, WorkerResults)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter_mut()
                .enumerate()
                .map(|(wi, w)| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut mine: WorkerResults = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(tree) = trees.get(i) else { break };
                            mine.push((i, w.cost(tree)));
                        }
                        (wi, mine)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("search worker panicked"))
                .collect()
        });
        let mut slots: Vec<Option<Result<f64, SearchError>>> = Vec::new();
        slots.resize_with(trees.len(), || None);
        for (wi, mine) in shares {
            self.tel
                .add(&format!("search.worker.{wi}.candidates"), mine.len() as u64);
            for (i, r) in mine {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every candidate has exactly one result"))
            .collect()
    }

    /// Takes the pool's telemetry: per-worker candidate counters plus
    /// every worker evaluator's own drained telemetry, merged.
    pub fn drain_telemetry(&mut self) -> Telemetry {
        let mut tel = std::mem::take(&mut self.tel);
        for w in &mut self.workers {
            tel.merge(&w.drain_telemetry());
        }
        tel
    }
}

impl CostSource for EvaluatorPool {
    fn batch_costs(&mut self, trees: &[FftTree]) -> Vec<Result<f64, SearchError>> {
        self.costs(trees)
    }

    fn drain(&mut self) -> Telemetry {
        self.drain_telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        small_search_parallel, small_search_traced, FaultyEvaluator, OpCountEvaluator,
        SearchConfig, SizeResult,
    };
    use spl_generator::fft::Rule;

    fn opcount_pool(jobs: usize) -> EvaluatorPool {
        EvaluatorPool::new(jobs, |_| Box::new(OpCountEvaluator::default()))
    }

    fn assert_same_winners(a: &[SizeResult], b: &[SizeResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.tree, y.tree);
            assert_eq!(x.cost.to_bits(), y.cost.to_bits());
        }
    }

    #[test]
    fn pool_costs_are_index_aligned() {
        let trees: Vec<FftTree> = vec![
            FftTree::leaf(2),
            FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(2)),
            FftTree::leaf(4),
            FftTree::node(Rule::CooleyTukey, FftTree::leaf(2), FftTree::leaf(4)),
        ];
        let mut serial = OpCountEvaluator::default();
        let want: Vec<f64> = trees.iter().map(|t| serial.cost(t).unwrap()).collect();
        let mut pool = opcount_pool(4);
        let got = pool.costs(&trees);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(*g.as_ref().unwrap(), *w);
        }
    }

    #[test]
    fn parallel_small_search_is_bit_identical_to_serial() {
        let config = SearchConfig::default();
        let mut eval = OpCountEvaluator::default();
        let serial = small_search_traced(6, &config, &mut eval, &mut Telemetry::new()).unwrap();
        for jobs in [1, 2, 4] {
            let mut pool = opcount_pool(jobs);
            let parallel =
                small_search_parallel(6, &config, &mut pool, &mut Telemetry::new()).unwrap();
            assert_same_winners(&serial, &parallel);
        }
    }

    #[test]
    fn parallel_search_under_keyed_faults_matches_serial_at_many_seeds() {
        // Keyed fault injection draws per candidate, not per call order,
        // so the same candidates fault no matter how many workers raced.
        let config = SearchConfig::default();
        for seed in [3u64, 17, 99, 2026] {
            let mk = || -> Box<dyn Evaluator> {
                Box::new(FaultyEvaluator::keyed(
                    OpCountEvaluator::default(),
                    seed,
                    0.3,
                ))
            };
            let mut serial_pool = EvaluatorPool::new(1, |_| mk());
            let serial =
                small_search_parallel(6, &config, &mut serial_pool, &mut Telemetry::new()).unwrap();
            let mut pool = EvaluatorPool::new(4, |_| mk());
            let parallel =
                small_search_parallel(6, &config, &mut pool, &mut Telemetry::new()).unwrap();
            assert_same_winners(&serial, &parallel);
        }
    }

    #[test]
    fn worker_candidate_counters_sum_to_batch_sizes() {
        let mut pool = opcount_pool(3);
        let trees: Vec<FftTree> = (1..=4).map(|k| FftTree::leaf(1 << k)).collect();
        pool.costs(&trees);
        pool.costs(&trees[..2]);
        let tel = pool.drain_telemetry();
        let total: u64 = (0..3)
            .filter_map(|i| tel.counter(&format!("search.worker.{i}.candidates")))
            .sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn measurement_gate_is_exclusive() {
        let gate = MeasurementGate::new();
        let counter = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let gate = gate.clone();
                let counter = Arc::clone(&counter);
                let max_seen = Arc::clone(&max_seen);
                s.spawn(move || {
                    for _ in 0..50 {
                        let _token = gate.acquire();
                        let inside = counter.fetch_add(1, Ordering::SeqCst) + 1;
                        max_seen.fetch_max(inside, Ordering::SeqCst);
                        counter.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(max_seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_jobs_clamps_to_one_worker() {
        let mut pool = opcount_pool(0);
        assert_eq!(pool.jobs(), 1);
        assert!(pool.costs(&[FftTree::leaf(2)])[0].is_ok());
    }
}
