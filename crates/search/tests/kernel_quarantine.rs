//! Quarantine acceptance: a kernel whose output fails dense-reference
//! verification must never be served from (or stay in) the shared
//! [`KernelCache`], and the retry must recompile from scratch.
//!
//! Two bug-injection routes:
//!
//! * a genuinely wrong object planted in the cache under the right key
//!   (a model of a miscompile or disk corruption the CRC cannot see) —
//!   exercises the real eviction path in `NativeEvaluator::cost`;
//! * a [`FaultyEvaluator`]-injected verification failure — exercises
//!   the wrapper-level guarantee that an injected miscompile never
//!   touches the cache at all.

use std::sync::Arc;
use std::time::Duration;

use spl_generator::fft::{FftTree, Rule};
use spl_native::{BuildOptions, KernelCache, NativeKernel};
use spl_search::{compile_unit_for_tree, Evaluator, FaultyEvaluator, NativeEvaluator, SearchError};

/// The size-8 plan under test.
fn f8() -> FftTree {
    FftTree::node(Rule::CooleyTukey, FftTree::leaf(4), FftTree::leaf(2))
}

#[test]
fn poisoned_cache_entry_is_quarantined_and_recompiled() {
    let build = BuildOptions::default();
    let cache = Arc::new(KernelCache::in_memory());
    let target_unit = compile_unit_for_tree(&f8(), 64).expect("compile target unit");
    let target_key = NativeKernel::cache_key(&target_unit, &build).expect("target key");

    // Build a *different* kernel (the size-4 DFT, half the I/O width)
    // and plant its object under the size-8 plan's key. The cache key
    // only covers what goes into cc, so this models a miscompiled
    // entry: structurally a valid shared object, wrong answers.
    let wrong_unit = compile_unit_for_tree(&FftTree::leaf(4), 64).expect("compile wrong unit");
    let wrong_key = NativeKernel::cache_key(&wrong_unit, &build).expect("wrong key");
    let scratch = KernelCache::in_memory();
    NativeKernel::compile_cached(&wrong_unit, &build, &scratch).expect("build wrong kernel");
    let (bytes, _) = scratch.lookup(&wrong_key).expect("wrong kernel cached");
    cache.insert(&target_key, bytes.to_vec());

    let mut eval =
        NativeEvaluator::new(64, Duration::from_millis(1)).with_kernel_cache(Arc::clone(&cache));
    let err = eval
        .cost(&f8())
        .expect_err("poisoned kernel must not verify");
    assert!(matches!(err, SearchError::VerificationFailed(_)), "{err}");
    assert!(
        cache.lookup(&target_key).is_none(),
        "quarantined kernel still served from the cache"
    );

    // The retry is a cache miss: the real kernel is compiled, verifies,
    // and is re-admitted.
    let cost = eval.cost(&f8()).expect("retry recompiles cleanly");
    assert!(cost > 0.0);
    assert!(cache.lookup(&target_key).is_some(), "retry not re-cached");
    let tel = eval.drain_telemetry();
    assert_eq!(tel.counter("search.kernels_quarantined"), Some(1));
    assert_eq!(tel.counter("native.cache.quarantined"), Some(1));
    assert_eq!(
        tel.counter("native.cc_invocations"),
        Some(1),
        "only the retry invokes cc; the poisoned entry was a hit"
    );
}

#[test]
fn injected_miscompile_never_reaches_the_cache() {
    let build = BuildOptions::default();
    let cache = Arc::new(KernelCache::in_memory());
    let target_unit = compile_unit_for_tree(&f8(), 64).expect("compile target unit");
    let target_key = NativeKernel::cache_key(&target_unit, &build).expect("target key");

    let inner =
        NativeEvaluator::new(64, Duration::from_millis(1)).with_kernel_cache(Arc::clone(&cache));
    // p_corrupt = 1: every evaluation is reported as a verification
    // failure before any kernel is built.
    let mut faulty = FaultyEvaluator::with_rates(inner, 5, 0.0, 0.0, 1.0);
    let err = faulty.cost(&f8()).expect_err("corrupt fault must inject");
    assert!(matches!(err, SearchError::VerificationFailed(_)), "{err}");
    assert!(
        cache.lookup(&target_key).is_none(),
        "injected miscompile reached the kernel cache"
    );

    // The retry (injection off) is a cache miss and recompiles.
    let mut eval = faulty.into_inner();
    eval.cost(&f8()).expect("clean retry");
    let tel = eval.drain_telemetry();
    assert_eq!(
        tel.counter("native.cc_invocations"),
        Some(1),
        "retry must be a cache miss + recompile"
    );
    assert!(cache.lookup(&target_key).is_some());
}
