//! Multi-process `WisdomDb` regression: two real processes search
//! overlapping size sets into the same database directory concurrently,
//! and the merged journal must converge to one identical best-cost
//! entry per (transform, size, fingerprints) key — no lost appends, no
//! corrupt records, no order dependence.
//!
//! Mirrors `spl-native`'s `cache_multiprocess` pattern: the test
//! re-invokes its own binary (`current_exe`) in a worker mode selected
//! by environment variables, so no helper binary is needed.

use std::path::Path;
use std::process::Command;

use spl_search::{
    small_search, transform_key, OpCountEvaluator, SearchConfig, WisdomDb, WisdomSession,
};
use spl_telemetry::Telemetry;

const WORKER_ENV: &str = "SPL_WISDOM_MP_MAX_K";
const DIR_ENV: &str = "SPL_WISDOM_MP_DIR";

/// Small trees only: debug-mode compiles of big candidates are slow,
/// and the merge semantics under test do not depend on size.
fn config() -> SearchConfig {
    SearchConfig {
        leaf_max: 8,
        ..SearchConfig::default()
    }
}

/// Worker mode: run a wisdom-backed small search into the shared DB.
/// Runs only when spawned by the parent test below.
#[test]
fn wisdom_worker_searches_shared_db() {
    let (Ok(max_k), Ok(dir)) = (std::env::var(WORKER_ENV), std::env::var(DIR_ENV)) else {
        return; // not in worker mode: nothing to do
    };
    let max_k: u32 = max_k.parse().unwrap();
    let db = WisdomDb::open(Path::new(&dir)).unwrap();
    let mut session = WisdomSession::new(db, None);
    let mut eval = OpCountEvaluator::default();
    let mut tel = Telemetry::new();
    spl_search::small_search_wisdom(max_k, &config(), &mut eval, &mut tel, &mut session).unwrap();
}

#[test]
fn two_processes_converge_to_identical_best_entries() {
    if std::env::var(WORKER_ENV).is_ok() {
        return; // worker invocation: only the worker test runs work
    }
    let dir = std::env::temp_dir().join(format!("spl_wisdom_mp_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Overlapping size sets: both workers search 2^1..=2^5; one goes a
    // step further. The shared prefix is where merges genuinely race.
    let exe = std::env::current_exe().unwrap();
    let spawn = |max_k: u32| {
        Command::new(&exe)
            .args(["wisdom_worker_searches_shared_db", "--exact"])
            .env(WORKER_ENV, max_k.to_string())
            .env(DIR_ENV, &dir)
            .spawn()
            .unwrap()
    };
    let mut children = [spawn(5), spawn(6)];
    for child in &mut children {
        let status = child.wait().unwrap();
        assert!(status.success(), "wisdom worker failed: {status}");
    }

    // A fresh DB instance (cold memory, journal replayed from disk)
    // must hold exactly the deterministic winners a local search finds.
    let mut db = WisdomDb::open(&dir).unwrap();
    let key = transform_key(&config());
    let mut eval = OpCountEvaluator::default();
    let reference = small_search(6, &config(), &mut eval).unwrap();
    assert_eq!(reference.len(), 6);
    for want in &reference {
        let n = want.tree.size();
        let entry = db
            .lookup(&key, n)
            .unwrap_or_else(|| panic!("no trusted entry for size {n}"));
        assert!(entry.measured(), "size {n} entry must carry real costs");
        let best = entry.best();
        assert_eq!(
            best.tree.to_spec(),
            want.tree.to_spec(),
            "size {n} best plan diverged from the deterministic winner"
        );
        assert_eq!(
            best.cost.to_bits(),
            want.cost.to_bits(),
            "size {n} best cost diverged"
        );
    }
    // One merged entry per key — concurrent appends for the same key
    // collapsed under best-cost-wins rather than accumulating.
    let sizes: Vec<usize> = db.entries().map(|e| e.n).collect();
    let mut dedup = sizes.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(
        sizes.len(),
        dedup.len(),
        "merged view must hold one entry per key: {sizes:?}"
    );
    // No journal records were lost or healed away by the race.
    let tel = db.drain_telemetry();
    assert_eq!(
        tel.counter("wisdom.db.dropped_records"),
        None,
        "concurrent appends must not tear the journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
