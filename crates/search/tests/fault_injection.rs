//! Acceptance tests for the fault-tolerance layer: a search over sizes
//! 2…2¹⁰ with ≥10 % injected faults must complete without panicking,
//! quarantine corrupt candidates, record its degradations — and, because
//! the fallback tier is the same deterministic model as the faulty
//! primary, still find exactly the plans a fault-free search finds.

use spl_search::{
    large_search, large_search_traced, small_search, small_search_traced, FaultyEvaluator,
    OpCountEvaluator, ResilientEvaluator, SearchConfig,
};
use spl_telemetry::Telemetry;

/// A degradation chain whose primary tier injects faults at `rate` and
/// whose fallback is the same deterministic cost model, so degraded
/// searches are comparable against clean ones plan-for-plan.
fn faulty_chain(seed: u64, rate: f64) -> ResilientEvaluator {
    ResilientEvaluator::new()
        .tier(
            "faulty",
            Box::new(FaultyEvaluator::new(
                OpCountEvaluator::default(),
                seed,
                rate,
            )),
        )
        .tier("opcount", Box::new(OpCountEvaluator::default()))
}

#[test]
fn search_to_1024_survives_injected_faults_at_several_seeds() {
    let config = SearchConfig::default();
    let mut clean = OpCountEvaluator::default();
    let clean_small = small_search(6, &config, &mut clean).unwrap();
    let clean_large = large_search(&clean_small, 10, &config, &mut clean).unwrap();

    let mut total_quarantined = 0;
    for seed in [1u64, 7, 42, 1234] {
        let mut eval = faulty_chain(seed, 0.25);
        let mut tel = Telemetry::new();
        let small = small_search_traced(6, &config, &mut eval, &mut tel).unwrap();
        let large = large_search_traced(&small, 10, &config, &mut eval, &mut tel).unwrap();

        assert_eq!(small.len(), 6); // sizes 2..64
        assert_eq!(large.len(), 4); // sizes 128..1024

        // The chain degraded (at 25% fault rate this is overwhelmingly
        // certain over ~80 evaluations) and no candidate was lost: the
        // fallback produced the identical plans.
        assert!(
            tel.counter("search.degradations").unwrap_or(0) > 0,
            "seed {seed}: no degradations recorded"
        );
        total_quarantined += tel.counter("search.quarantined").unwrap_or(0);
        for (a, b) in small.iter().zip(&clean_small) {
            assert_eq!(a.tree, b.tree, "seed {seed}");
        }
        for (got, want) in large.iter().zip(&clean_large) {
            assert_eq!(got[0].tree, want[0].tree, "seed {seed}");
        }
    }
    assert!(
        total_quarantined > 0,
        "no corrupt candidate was ever quarantined across seeds"
    );
}

#[test]
fn injected_faults_are_classified_in_telemetry() {
    let config = SearchConfig::default();
    let mut eval = faulty_chain(99, 0.5);
    let mut tel = Telemetry::new();
    let small = small_search_traced(6, &config, &mut eval, &mut tel).unwrap();
    large_search_traced(&small, 9, &config, &mut eval, &mut tel).unwrap();
    let failures = tel.counter("search.failures.timeout").unwrap_or(0)
        + tel.counter("search.failures.kernel_crashed").unwrap_or(0)
        + tel
            .counter("search.failures.verification_failed")
            .unwrap_or(0);
    assert!(failures > 0, "no classified failures recorded");
    assert_eq!(
        failures,
        tel.counter("search.degradations").unwrap_or(0),
        "every failure at the primary tier should be one degradation"
    );
}

#[test]
fn search_survives_even_a_fully_faulty_primary_tier() {
    // The primary tier fails on every single call; the search must
    // complete purely on the fallback.
    let config = SearchConfig::default();
    let mut eval = ResilientEvaluator::new()
        .tier(
            "dead",
            Box::new(FaultyEvaluator::with_rates(
                OpCountEvaluator::default(),
                5,
                1.0,
                0.0,
                0.0,
            )),
        )
        .tier("opcount", Box::new(OpCountEvaluator::default()));
    let mut tel = Telemetry::new();
    let small = small_search_traced(5, &config, &mut eval, &mut tel).unwrap();
    assert_eq!(small.len(), 5);
    assert_eq!(
        tel.counter("search.degradations"),
        tel.counter("search.failures.timeout")
    );
    assert!(tel.counter("search.eval_tier.opcount").unwrap_or(0) > 0);
}

#[test]
fn exhausted_chain_skips_candidates_and_reports_no_candidates() {
    // Every tier always fails: each candidate is skipped, and the search
    // ends with a structured NoCandidates error — not a panic.
    let config = SearchConfig::default();
    let mut eval = ResilientEvaluator::new().tier(
        "dead",
        Box::new(FaultyEvaluator::with_rates(
            OpCountEvaluator::default(),
            6,
            1.0,
            0.0,
            0.0,
        )),
    );
    let mut tel = Telemetry::new();
    let err = small_search_traced(4, &config, &mut eval, &mut tel).unwrap_err();
    assert!(
        matches!(err, spl_search::SearchError::NoCandidates { n: 2 }),
        "{err}"
    );
    assert!(tel.counter("search.skipped.exhausted").unwrap_or(0) > 0);
}
