//! Crash-recovery tests for the wisdom journal: a search killed
//! mid-write (simulated by truncating or corrupting the journal file)
//! must resume from the last intact record and finish with exactly the
//! plans an uninterrupted run finds. The deterministic
//! [`OpCountEvaluator`] makes that comparison exact.

use std::fs;
use std::path::PathBuf;

use spl_search::{
    large_search, large_search_journaled, small_search, small_search_journaled, FaultyEvaluator,
    OpCountEvaluator, ResilientEvaluator, SearchConfig, SizeResult,
};
use spl_telemetry::Telemetry;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "spl_journal_recovery_{}_{name}.journal",
        std::process::id()
    ))
}

/// Simulates a kill during the final append: chops the last few bytes so
/// the tail record is torn (its CRC no longer matches).
fn tear_tail(path: &PathBuf) {
    let bytes = fs::read(path).unwrap();
    assert!(bytes.len() > 3);
    fs::write(path, &bytes[..bytes.len() - 3]).unwrap();
}

fn clean_small(max_k: u32, config: &SearchConfig) -> Vec<SizeResult> {
    small_search(max_k, config, &mut OpCountEvaluator::default()).unwrap()
}

#[test]
fn truncated_tail_resumes_to_same_plans() {
    let p = tmp("torn_small");
    let _ = fs::remove_file(&p);
    let config = SearchConfig::default();
    let want = clean_small(6, &config);

    let mut tel = Telemetry::new();
    small_search_journaled(6, &config, &mut OpCountEvaluator::default(), &mut tel, &p).unwrap();
    tear_tail(&p);

    // Resume with a fresh evaluator: only the torn size is recomputed.
    let mut tel2 = Telemetry::new();
    let resumed =
        small_search_journaled(6, &config, &mut OpCountEvaluator::default(), &mut tel2, &p)
            .unwrap();
    assert_eq!(tel2.counter("search.journal_resumed_sizes"), Some(5));
    assert!(tel2.counter("search.journal_dropped_records").unwrap_or(0) >= 1);
    assert_eq!(resumed.len(), want.len());
    for (a, b) in resumed.iter().zip(&want) {
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.cost, b.cost);
    }
    let _ = fs::remove_file(&p);
}

#[test]
fn corrupt_crc_drops_suffix_and_recomputes_to_same_plans() {
    let p = tmp("badcrc");
    let _ = fs::remove_file(&p);
    let config = SearchConfig::default();
    let want = clean_small(5, &config);

    let mut tel = Telemetry::new();
    small_search_journaled(5, &config, &mut OpCountEvaluator::default(), &mut tel, &p).unwrap();

    // Flip one byte inside the third line (the size-4 record). The
    // tolerant loader must keep the intact prefix — fingerprint plus the
    // size-2 record — and drop everything from the damage onward.
    let mut bytes = fs::read(&p).unwrap();
    let mut newlines = 0usize;
    let mut target = None;
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            newlines += 1;
        } else if newlines == 2 && target.is_none() && i + 1 < bytes.len() && bytes[i + 1] != b'\n'
        {
            target = Some(i);
        }
    }
    let target = target.expect("journal should have a third line");
    bytes[target] ^= 0x01;
    fs::write(&p, &bytes).unwrap();

    let mut tel2 = Telemetry::new();
    let resumed =
        small_search_journaled(5, &config, &mut OpCountEvaluator::default(), &mut tel2, &p)
            .unwrap();
    assert_eq!(tel2.counter("search.journal_resumed_sizes"), Some(1));
    assert!(tel2.counter("search.journal_dropped_records").unwrap_or(0) >= 1);
    for (a, b) in resumed.iter().zip(&want) {
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.cost, b.cost);
    }
    let _ = fs::remove_file(&p);
}

#[test]
fn large_search_killed_mid_size_resumes_to_same_plans() {
    let p = tmp("torn_large");
    let _ = fs::remove_file(&p);
    let config = SearchConfig::default();
    let small = clean_small(6, &config);
    let want = large_search(&small, 10, &config, &mut OpCountEvaluator::default()).unwrap();

    let mut tel = Telemetry::new();
    large_search_journaled(
        &small,
        10,
        &config,
        &mut OpCountEvaluator::default(),
        &mut tel,
        &p,
    )
    .unwrap();
    tear_tail(&p);

    let mut tel2 = Telemetry::new();
    let resumed = large_search_journaled(
        &small,
        10,
        &config,
        &mut OpCountEvaluator::default(),
        &mut tel2,
        &p,
    )
    .unwrap();
    assert_eq!(tel2.counter("search.journal_resumed_sizes"), Some(3));
    assert_eq!(resumed.len(), want.len());
    for (got, expect) in resumed.iter().zip(&want) {
        assert_eq!(got.len(), expect.len());
        for (a, b) in got.iter().zip(expect) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.cost, b.cost);
        }
    }
    let _ = fs::remove_file(&p);
}

#[test]
fn kill_and_resume_under_injected_faults_matches_uninterrupted_run() {
    // The full acceptance scenario: a journaled search to 2^10 under
    // ≥10 % injected faults is killed mid-write, then resumed under a
    // *different* fault sequence — and still lands on the same best
    // plans, because the degradation chain falls back to the same
    // deterministic model.
    let chain = |seed: u64| {
        ResilientEvaluator::new()
            .tier(
                "faulty",
                Box::new(FaultyEvaluator::new(
                    OpCountEvaluator::default(),
                    seed,
                    0.25,
                )),
            )
            .tier("opcount", Box::new(OpCountEvaluator::default()))
    };
    let ps = tmp("faulty_small");
    let pl = tmp("faulty_large");
    let _ = fs::remove_file(&ps);
    let _ = fs::remove_file(&pl);
    let config = SearchConfig::default();
    let want_small = clean_small(6, &config);
    let want_large =
        large_search(&want_small, 10, &config, &mut OpCountEvaluator::default()).unwrap();

    let mut tel = Telemetry::new();
    let mut eval = chain(11);
    small_search_journaled(6, &config, &mut eval, &mut tel, &ps).unwrap();
    large_search_journaled(&want_small, 10, &config, &mut eval, &mut tel, &pl).unwrap();
    tear_tail(&ps);
    tear_tail(&pl);

    let mut tel2 = Telemetry::new();
    let mut eval2 = chain(1234); // different fault sequence on resume
    let small = small_search_journaled(6, &config, &mut eval2, &mut tel2, &ps).unwrap();
    let large = large_search_journaled(&small, 10, &config, &mut eval2, &mut tel2, &pl).unwrap();

    assert!(tel2.counter("search.journal_resumed_sizes").unwrap_or(0) > 0);
    for (a, b) in small.iter().zip(&want_small) {
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.cost, b.cost);
    }
    for (got, expect) in large.iter().zip(&want_large) {
        for (a, b) in got.iter().zip(expect) {
            assert_eq!(a.tree, b.tree);
            assert_eq!(a.cost, b.cost);
        }
    }
    let _ = fs::remove_file(&ps);
    let _ = fs::remove_file(&pl);
}
