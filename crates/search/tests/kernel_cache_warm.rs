//! The warm-cache acceptance check: rerunning the small-search workload
//! to 2^10 over a persisted kernel cache must invoke `cc` at least 5×
//! less than the cold run.
//!
//! The candidate set is pinned with the deterministic op-count model
//! (the measured search legitimately re-picks near-tie winners from run
//! to run, which would vary the candidate *trees*; the cache itself is
//! content-addressed and exact). Kernel builds, the on-disk cache, and
//! the 4-worker pool are all the real thing.

use std::sync::Arc;
use std::time::Duration;

use spl_generator::fft::{FftTree, Rule};
use spl_native::KernelCache;
use spl_search::{
    small_search, Evaluator, EvaluatorPool, NativeEvaluator, OpCountEvaluator, SearchConfig,
};
use spl_telemetry::Telemetry;

/// Every candidate the small search to `2^max_k` evaluates, with
/// winners pinned by the op-count model so the set is reproducible.
fn pinned_candidates(max_k: u32) -> Vec<FftTree> {
    let config = SearchConfig {
        leaf_max: 1 << max_k,
        ..Default::default()
    };
    let mut eval = OpCountEvaluator::default();
    let best = small_search(max_k, &config, &mut eval).expect("op-count search");
    let mut out = Vec::new();
    for k in 1..=max_k {
        out.push(FftTree::leaf(1usize << k));
        for i in 1..k {
            out.push(FftTree::node(
                Rule::CooleyTukey,
                best[i as usize - 1].tree.clone(),
                best[(k - i) as usize - 1].tree.clone(),
            ));
        }
    }
    out
}

/// Evaluates every tree through a fresh 4-worker pool of native
/// evaluators sharing a fresh disk-cache instance over `dir`, and
/// returns the run's merged telemetry.
fn run_pass(dir: &std::path::Path, trees: &[FftTree]) -> Telemetry {
    let cache = Arc::new(KernelCache::with_dir(dir).expect("open cache dir"));
    let mut pool = EvaluatorPool::new(4, |ctx| {
        Box::new(
            NativeEvaluator::new(64, Duration::from_millis(1))
                .with_verify(false)
                .with_gate(ctx.gate.clone())
                .with_kernel_cache(Arc::clone(&cache)),
        ) as Box<dyn Evaluator>
    });
    for r in pool.costs(trees) {
        r.expect("candidate evaluates");
    }
    let mut tel = pool.drain_telemetry();
    tel.merge(&cache.drain_telemetry());
    tel
}

#[test]
fn warm_cache_rerun_does_5x_fewer_cc_invocations() {
    let dir = std::env::temp_dir().join(format!("spl_warm_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trees = pinned_candidates(10);
    assert_eq!(trees.len(), 55); // sum over k of (1 leaf + k-1 splits)

    let cold = run_pass(&dir, &trees);
    let cold_cc = cold.counter("native.cc_invocations").unwrap_or(0);
    assert_eq!(cold_cc, 55, "cold run compiles every candidate");

    // A fresh cache instance over the same directory models a rerun in
    // a new process: only the on-disk store carries over.
    let warm = run_pass(&dir, &trees);
    let warm_cc = warm.counter("native.cc_invocations").unwrap_or(0);
    let hits = warm.counter("native.cache.disk_hits").unwrap_or(0)
        + warm.counter("native.cache.memory_hits").unwrap_or(0);
    assert_eq!(hits, 55, "every warm build is a cache hit");
    assert!(
        cold_cc >= 5 * warm_cc.max(1),
        "warm rerun must recompile at least 5x less: cold {cold_cc}, warm {warm_cc}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
