#![warn(missing_docs)]

//! Numeric substrate for the SPL reproduction.
//!
//! This crate provides the arithmetic foundation every other crate builds
//! on: complex numbers, twiddle factors, the stride (`L`) and reversal (`J`)
//! permutations, compensated summation, slow-but-trusted reference
//! transforms (DFT, WHT, DCT-II, DCT-IV), error metrics, and the
//! pseudo-MFLOPS performance metric used throughout the paper's evaluation.
//!
//! Everything here is deliberately simple and obviously correct — these
//! routines are the *oracles* against which the compiler, the VM, and the
//! FFTW-like baseline are validated.
//!
//! # Examples
//!
//! ```
//! use spl_numeric::{Complex, reference};
//!
//! let x = vec![Complex::new(1.0, 0.0); 4];
//! let y = reference::dft(&x);
//! assert!((y[0].re - 4.0).abs() < 1e-12);
//! assert!(y[1].norm() < 1e-12);
//! ```

pub mod complex;
pub mod kahan;
pub mod metrics;
pub mod perm;
pub mod reference;
pub mod rng;
pub mod twiddle;

pub use complex::Complex;
pub use kahan::KahanSum;
pub use metrics::{pseudo_mflops, relative_rms_error, relative_rms_error_real};
pub use twiddle::omega;
