//! A minimal double-precision complex number.
//!
//! We implement this from scratch (rather than pulling in `num-complex`)
//! because the SPL compiler needs exact, predictable semantics for its
//! compile-time constant folding, and because the dependency policy of this
//! reproduction keeps third-party crates to a minimum.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use spl_numeric::Complex;
/// let i = Complex::i();
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex::new(1.0, 0.0);

    /// The imaginary unit, `0 + 1i`.
    pub const fn i() -> Self {
        Complex::new(0.0, 1.0)
    }

    /// Creates a purely real complex number.
    pub const fn real(re: f64) -> Self {
        Complex::new(re, 0.0)
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// ```
    /// use spl_numeric::Complex;
    /// let z = Complex::from_polar(2.0, std::f64::consts::PI);
    /// assert!((z.re + 2.0).abs() < 1e-15);
    /// ```
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// The complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The modulus (absolute value).
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared modulus, cheaper than [`Complex::norm`].
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Does not panic; dividing by zero yields non-finite components, as
    /// with `f64`.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if the imaginary part is exactly zero.
    pub fn is_real(self) -> bool {
        self.im == 0.0
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance on each component.
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Multiplication by the imaginary unit `i`: `(a+bi) * i = -b + ai`.
    ///
    /// The SPL compiler's type-transformation phase exploits this to turn
    /// complex multiplications by `±i` into a swap and a negation
    /// (Section 3.3.3 of the paper).
    pub fn mul_i(self) -> Self {
        Complex::new(-self.im, self.re)
    }

    /// Multiplication by `-i`.
    pub fn mul_neg_i(self) -> Self {
        Complex::new(self.im, -self.re)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division by multiplying with the reciprocal is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
    }

    #[test]
    fn mul_matches_definition() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        // (1+2i)(3-4i) = 3 - 4i + 6i + 8 = 11 + 2i
        assert_eq!(a * b, Complex::new(11.0, 2.0));
    }

    #[test]
    fn div_inverts_mul() {
        let a = Complex::new(1.5, -2.25);
        let b = Complex::new(0.5, 3.0);
        let q = (a * b) / b;
        assert!(q.approx_eq(a, 1e-12));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::i() * Complex::i(), Complex::real(-1.0));
    }

    #[test]
    fn mul_i_is_rotation() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.mul_i(), z * Complex::i());
        assert_eq!(z.mul_neg_i(), z * -Complex::i());
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.norm() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complex::real(2.0).to_string(), "2");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(1.0, 0.0);
        z -= Complex::new(0.0, 1.0);
        z *= Complex::new(2.0, 0.0);
        assert_eq!(z, Complex::new(4.0, 0.0));
    }

    #[test]
    fn recip_of_one_is_one() {
        assert!(Complex::ONE.recip().approx_eq(Complex::ONE, 0.0));
    }
}
