//! A small deterministic pseudo-random number generator.
//!
//! The workspace is built offline, so it cannot depend on the `rand`
//! crate; benchmarks and property-style tests instead draw reproducible
//! streams from this SplitMix64 generator (Steele, Lea & Flood's
//! finalizer, the same mixer `rand` uses to seed its own generators).
//! Determinism is a feature here: every figure run and every test sees
//! the same workload for a given seed.
//!
//! # Examples
//!
//! ```
//! use spl_numeric::rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.uniform(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&x));
//! ```

/// A SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator with the given seed; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A float uniform in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A float uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// An integer uniform in `[0, bound)`; `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction; the slight modulo bias is
    /// irrelevant at the bounds used here (all far below 2^32).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a non-zero bound");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// An integer uniform in `[lo, hi]` (inclusive); requires `lo <= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of `items`; `items` must be non-empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_covers_both_halves() {
        let mut r = Rng::new(3);
        let (mut neg, mut pos) = (0, 0);
        for _ in 0..1000 {
            if r.uniform(-1.0, 1.0) < 0.0 {
                neg += 1;
            } else {
                pos += 1;
            }
        }
        assert!(neg > 300 && pos > 300, "neg={neg} pos={pos}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = Rng::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v as usize] = true;
            let w = r.range(3, 6);
            assert!((3..=6).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn pick_selects_members() {
        let mut r = Rng::new(5);
        let items = ["a", "b", "c"];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
