//! Twiddle factors (roots of unity).
//!
//! The paper defines `W(n, k)` as the intrinsic returning `ω_n^k` with
//! `ω_n = e^{-2πi/n}` (the DFT convention with a negative exponent).
//! The SPL compiler evaluates every `W` invocation at compile time
//! (Section 3.3.2), so these routines are the reference the generated code
//! is constant-folded against.

use crate::Complex;

/// `ω_n^k = e^{-2πik/n}`, the twiddle intrinsic `W(n, k)` of the paper.
///
/// `k` may be any integer (including negative); the result is periodic in
/// `k` with period `n`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// use spl_numeric::{omega, Complex};
/// assert!(omega(4, 1).approx_eq(Complex::new(0.0, -1.0), 1e-15));
/// assert!(omega(4, 2).approx_eq(Complex::new(-1.0, 0.0), 1e-15));
/// ```
pub fn omega(n: usize, k: i64) -> Complex {
    assert!(n > 0, "omega: n must be positive");
    let k = k.rem_euclid(n as i64) as usize;
    // Exact values at the quadrant points keep the generated straight-line
    // code free of spurious ±1e-17 constants, which matters for the
    // compiler's special-casing of multiplications by 0, ±1, ±i.
    if (4 * k).is_multiple_of(n) {
        return match 4 * k / n {
            0 => Complex::ONE,
            1 => Complex::new(0.0, -1.0),
            2 => Complex::new(-1.0, 0.0),
            3 => Complex::new(0.0, 1.0),
            _ => unreachable!(),
        };
    }
    let theta = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
    Complex::from_polar(1.0, theta)
}

/// A precomputed table of `ω_n^0 .. ω_n^{n-1}`.
///
/// Used by the FFTW-like baseline and by tests; the SPL compiler builds its
/// own tables during intrinsic evaluation.
pub fn omega_table(n: usize) -> Vec<Complex> {
    (0..n as i64).map(|k| omega(n, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrants_are_exact() {
        assert_eq!(omega(4, 0), Complex::ONE);
        assert_eq!(omega(4, 1), Complex::new(0.0, -1.0));
        assert_eq!(omega(4, 2), Complex::new(-1.0, 0.0));
        assert_eq!(omega(4, 3), Complex::new(0.0, 1.0));
        assert_eq!(omega(8, 2), Complex::new(0.0, -1.0));
        assert_eq!(omega(2, 1), Complex::new(-1.0, 0.0));
        assert_eq!(omega(1, 0), Complex::ONE);
    }

    #[test]
    fn periodicity() {
        for k in -10..10 {
            assert!(omega(6, k).approx_eq(omega(6, k + 6), 1e-15));
        }
    }

    #[test]
    fn unit_modulus() {
        for k in 0..16 {
            assert!((omega(16, k).norm() - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn group_property() {
        // ω^a · ω^b = ω^{a+b}
        for a in 0..8 {
            for b in 0..8 {
                let lhs = omega(8, a) * omega(8, b);
                assert!(lhs.approx_eq(omega(8, a + b), 1e-14));
            }
        }
    }

    #[test]
    fn table_matches_pointwise() {
        let t = omega_table(12);
        assert_eq!(t.len(), 12);
        for (k, &w) in t.iter().enumerate() {
            assert!(w.approx_eq(omega(12, k as i64), 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_n_panics() {
        omega(0, 1);
    }
}
