//! Index permutations used by the SPL parameterized matrices.
//!
//! The central one is the *stride permutation* `L^{rs}_s` (paper
//! Section 2.1): reading the input at stride `s` gathers the `s`
//! interleaved subsequences one after another. `J_n` is the index reversal,
//! used by the DCT breakdown rules.

/// The stride permutation `L^{n}_{s}` as an index map.
///
/// `perm[k]` is the *source* index feeding output position `k`, i.e.
/// `y[k] = x[perm[k]]`. With `n = r·s`, output position `i·r + j`
/// (for `i ∈ [0,s)`, `j ∈ [0,r)`) reads `x[j·s + i]`.
///
/// # Panics
///
/// Panics if `s == 0` or `s` does not divide `n`.
///
/// # Examples
///
/// ```
/// use spl_numeric::perm::stride_perm;
/// // L^4_2 gathers the even elements first: (x0, x2, x1, x3).
/// assert_eq!(stride_perm(4, 2), vec![0, 2, 1, 3]);
/// ```
pub fn stride_perm(n: usize, s: usize) -> Vec<usize> {
    assert!(s > 0 && n.is_multiple_of(s), "stride_perm: s must divide n");
    let r = n / s;
    let mut p = vec![0usize; n];
    for i in 0..s {
        for j in 0..r {
            p[i * r + j] = j * s + i;
        }
    }
    p
}

/// Applies an index-map permutation to a slice: `y[k] = x[perm[k]]`.
///
/// # Panics
///
/// Panics if `perm.len() != x.len()` or any index is out of bounds.
pub fn apply_perm<T: Copy>(perm: &[usize], x: &[T]) -> Vec<T> {
    assert_eq!(perm.len(), x.len());
    perm.iter().map(|&k| x[k]).collect()
}

/// The reversal permutation `J_n`: `y[k] = x[n-1-k]`.
pub fn reversal_perm(n: usize) -> Vec<usize> {
    (0..n).map(|k| n - 1 - k).collect()
}

/// Returns `true` if `p` is a permutation of `0..p.len()`.
pub fn is_permutation(p: &[usize]) -> bool {
    let n = p.len();
    let mut seen = vec![false; n];
    for &k in p {
        if k >= n || seen[k] {
            return false;
        }
        seen[k] = true;
    }
    true
}

/// The inverse of an index-map permutation.
///
/// # Panics
///
/// Panics if `p` is not a permutation.
pub fn invert_perm(p: &[usize]) -> Vec<usize> {
    assert!(is_permutation(p), "invert_perm: not a permutation");
    let mut inv = vec![0usize; p.len()];
    for (i, &k) in p.iter().enumerate() {
        inv[k] = i;
    }
    inv
}

/// The bit-reversal permutation on `n = 2^k` points.
///
/// Not used by the compiler itself (SPL expresses data reordering through
/// `L` factors) but handy for cross-checking iterative FFT variants.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn bit_reversal_perm(n: usize) -> Vec<usize> {
    assert!(n.is_power_of_two(), "bit_reversal_perm: n must be 2^k");
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| (i as u32).reverse_bits() >> (32 - bits))
        .map(|i| i as usize)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l4_2_matches_paper() {
        // The paper's F4 factorization uses L^4_2 x = (x0, x2, x1, x3).
        assert_eq!(stride_perm(4, 2), vec![0, 2, 1, 3]);
    }

    #[test]
    fn l_n_1_and_l_n_n_are_identity() {
        assert_eq!(stride_perm(6, 1), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(stride_perm(6, 6), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn l_is_a_permutation() {
        for &(n, s) in &[(12, 3), (12, 4), (16, 2), (16, 8), (30, 5)] {
            assert!(is_permutation(&stride_perm(n, s)));
        }
    }

    #[test]
    fn l_inverse_identity() {
        // L^{rs}_s inverse is L^{rs}_r.
        let n = 24;
        for s in [2, 3, 4, 6, 8, 12] {
            let r = n / s;
            let p = stride_perm(n, s);
            let q = stride_perm(n, r);
            assert_eq!(invert_perm(&p), q, "s={s}");
        }
    }

    #[test]
    fn apply_perm_gathers() {
        let x = [10, 20, 30, 40];
        assert_eq!(apply_perm(&stride_perm(4, 2), &x), vec![10, 30, 20, 40]);
    }

    #[test]
    fn reversal_is_involution() {
        let p = reversal_perm(7);
        assert_eq!(invert_perm(&p), p);
    }

    #[test]
    fn bit_reversal_small() {
        assert_eq!(bit_reversal_perm(8), vec![0, 4, 2, 6, 1, 5, 3, 7]);
        assert!(is_permutation(&bit_reversal_perm(32)));
    }

    #[test]
    fn non_permutations_rejected() {
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[1, 2]));
        assert!(is_permutation(&[]));
    }

    #[test]
    #[should_panic(expected = "s must divide n")]
    fn bad_stride_panics() {
        stride_perm(10, 3);
    }
}
