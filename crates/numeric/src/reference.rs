//! Slow, trusted reference transforms.
//!
//! These O(n²) (or worse) implementations define the semantics every fast
//! algorithm in this repository is tested against: the DFT (`F_n`), the
//! Walsh–Hadamard transform, and the DCT types II and IV exactly as the
//! paper defines them in Section 2.1.

use crate::kahan::KahanComplexSum;
use crate::twiddle::omega;
use crate::Complex;

/// The n-point DFT by definition: `y_p = Σ_q ω_n^{pq} x_q`.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn dft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    assert!(n > 0, "dft: empty input");
    (0..n)
        .map(|p| {
            let mut acc = Complex::ZERO;
            for (q, &xq) in x.iter().enumerate() {
                acc += omega(n, (p * q) as i64) * xq;
            }
            acc
        })
        .collect()
}

/// The n-point DFT with Kahan-compensated accumulation.
///
/// Roughly one extra decimal digit of accuracy versus [`dft`]; used as the
/// ground truth in the Figure 6 accuracy experiment.
pub fn dft_compensated(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    assert!(n > 0, "dft_compensated: empty input");
    (0..n)
        .map(|p| {
            let mut acc = KahanComplexSum::new();
            for (q, &xq) in x.iter().enumerate() {
                acc.add(omega(n, (p * q) as i64) * xq);
            }
            acc.value()
        })
        .collect()
}

/// The inverse n-point DFT: `x_q = (1/n) Σ_p ω_n^{-pq} y_p`.
pub fn idft(y: &[Complex]) -> Vec<Complex> {
    let n = y.len();
    assert!(n > 0, "idft: empty input");
    let scale = 1.0 / n as f64;
    (0..n)
        .map(|q| {
            let mut acc = Complex::ZERO;
            for (p, &yp) in y.iter().enumerate() {
                acc += omega(n, -((p * q) as i64)) * yp;
            }
            acc * scale
        })
        .collect()
}

/// The Walsh–Hadamard transform of size `n = 2^k` (natural / Hadamard
/// ordering), defined recursively by `WHT_2 = F_2` and
/// `WHT_{2n} = F_2 ⊗ WHT_n`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn wht(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(n.is_power_of_two(), "wht: length must be 2^k");
    let mut y = x.to_vec();
    let mut h = 1;
    while h < n {
        for block in y.chunks_mut(2 * h) {
            for i in 0..h {
                let a = block[i];
                let b = block[i + h];
                block[i] = a + b;
                block[i + h] = a - b;
            }
        }
        h *= 2;
    }
    y
}

/// The unnormalized DCT-II: `y_k = Σ_j cos(π k (2j+1) / (2n)) x_j`,
/// with row 0 left unscaled (matrix of plain cosines).
///
/// This matches the paper's `DCTII_2 = diag(1, 1/√2) · F_2` base case up to
/// the diag factor — see [`dct2_matrix_entry`] for the exact entry formula
/// used here and in the formula-level oracle.
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(n > 0, "dct2: empty input");
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| dct2_matrix_entry(n, k, j) * x[j])
                .sum::<f64>()
        })
        .collect()
}

/// Entry `(k, j)` of the unnormalized DCT-II matrix:
/// `cos(π k (2j+1) / (2n))`.
pub fn dct2_matrix_entry(n: usize, k: usize, j: usize) -> f64 {
    (std::f64::consts::PI * k as f64 * (2 * j + 1) as f64 / (2 * n) as f64).cos()
}

/// The unnormalized DCT-IV: `y_k = Σ_j cos(π (2k+1)(2j+1) / (4n)) x_j`.
pub fn dct4(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    assert!(n > 0, "dct4: empty input");
    (0..n)
        .map(|k| {
            (0..n)
                .map(|j| dct4_matrix_entry(n, k, j) * x[j])
                .sum::<f64>()
        })
        .collect()
}

/// Entry `(k, j)` of the unnormalized DCT-IV matrix:
/// `cos(π (2k+1)(2j+1) / (4n))`.
pub fn dct4_matrix_entry(n: usize, k: usize, j: usize) -> f64 {
    (std::f64::consts::PI * (2 * k + 1) as f64 * (2 * j + 1) as f64 / (4 * n) as f64).cos()
}

/// Circular convolution by definition:
/// `y_k = Σ_j h_j · x_{(k-j) mod n}`.
///
/// # Panics
///
/// Panics if the lengths differ or are zero.
pub fn circular_convolution(h: &[Complex], x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    assert!(
        n > 0 && h.len() == n,
        "circular_convolution: length mismatch"
    );
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &hj) in h.iter().enumerate() {
                acc += hj * x[(k + n - j) % n];
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(x.approx_eq(*y, tol), "{x} vs {y}");
        }
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let y = dft(&x);
        for v in y {
            assert!(v.approx_eq(Complex::ONE, 1e-14));
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Complex::ONE; 8];
        let y = dft(&x);
        assert!(y[0].approx_eq(Complex::real(8.0), 1e-13));
        for v in &y[1..] {
            assert!(v.approx_eq(Complex::ZERO, 1e-13));
        }
    }

    #[test]
    fn dft4_matches_paper_matrix() {
        // F4 rows: [1 1 1 1; 1 -i -1 i; 1 -1 1 -1; 1 i -1 -i]
        let x = [
            Complex::real(1.0),
            Complex::real(2.0),
            Complex::real(3.0),
            Complex::real(4.0),
        ];
        let y = dft(&x);
        assert!(y[0].approx_eq(Complex::new(10.0, 0.0), 1e-13));
        assert!(y[1].approx_eq(Complex::new(-2.0, 2.0), 1e-13));
        assert!(y[2].approx_eq(Complex::new(-2.0, 0.0), 1e-13));
        assert!(y[3].approx_eq(Complex::new(-2.0, -2.0), 1e-13));
    }

    #[test]
    fn idft_round_trip() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        assert_close(&idft(&dft(&x)), &x, 1e-12);
    }

    #[test]
    fn compensated_agrees_with_plain() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new(1.0 / (i + 1) as f64, (i as f64).sqrt()))
            .collect();
        assert_close(&dft(&x), &dft_compensated(&x), 1e-10);
    }

    #[test]
    fn wht2_is_f2() {
        assert_eq!(wht(&[3.0, 5.0]), vec![8.0, -2.0]);
    }

    #[test]
    fn wht_is_involution_up_to_n() {
        let x: Vec<f64> = (0..16).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let twice = wht(&wht(&x));
        for (a, b) in twice.iter().zip(&x) {
            assert!((a - b * 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_with_delta_is_identity() {
        let mut h = vec![Complex::ZERO; 6];
        h[0] = Complex::ONE;
        let x: Vec<Complex> = (0..6).map(|i| Complex::real(i as f64)).collect();
        let y = circular_convolution(&h, &x);
        assert_eq!(y, x);
    }

    #[test]
    fn convolution_theorem_holds() {
        // DFT(h ⊛ x) = DFT(h) · DFT(x) pointwise.
        let h: Vec<Complex> = (0..8)
            .map(|i| Complex::new((i as f64).sin(), 0.1))
            .collect();
        let x: Vec<Complex> = (0..8)
            .map(|i| Complex::new(0.3, (i as f64).cos()))
            .collect();
        let lhs = dft(&circular_convolution(&h, &x));
        let hf = dft(&h);
        let xf = dft(&x);
        for (l, (a, b)) in lhs.iter().zip(hf.iter().zip(&xf)) {
            assert!(l.approx_eq(*a * *b, 1e-11));
        }
    }

    #[test]
    fn dct2_of_constant() {
        // Row k>0 of the DCT-II matrix sums to zero; row 0 sums to n.
        let y = dct2(&[1.0; 8]);
        assert!((y[0] - 8.0).abs() < 1e-13);
        for v in &y[1..] {
            assert!(v.abs() < 1e-13);
        }
    }

    #[test]
    fn dct2_base_case_is_scaled_f2() {
        // DCTII_2 = diag(1, 1/sqrt 2) F_2 (paper Section 2.1).
        let x = [2.0, 5.0];
        let y = dct2(&x);
        assert!((y[0] - 7.0).abs() < 1e-14);
        assert!((y[1] - (2.0 - 5.0) / 2.0_f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn dct4_rows_orthogonal() {
        let n = 8;
        for k1 in 0..n {
            for k2 in 0..n {
                let dot: f64 = (0..n)
                    .map(|j| dct4_matrix_entry(n, k1, j) * dct4_matrix_entry(n, k2, j))
                    .sum();
                let expect = if k1 == k2 { n as f64 / 2.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-12, "rows {k1},{k2}");
            }
        }
    }
}
