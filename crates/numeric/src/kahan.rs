//! Kahan (compensated) summation.
//!
//! Used by the accuracy experiment (paper Figure 6): the reference DFT is
//! accumulated with compensation so that its error is far below the error of
//! the FFT under test, making it usable as a ground truth without
//! arbitrary-precision arithmetic (see DESIGN.md, substitution 3).

use crate::Complex;

/// Running compensated sum of `f64` values.
///
/// # Examples
///
/// ```
/// use spl_numeric::KahanSum;
/// let mut s = KahanSum::new();
/// for _ in 0..10 { s.add(0.1); }
/// assert!((s.value() - 1.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term to the sum, carrying the compensation.
    pub fn add(&mut self, x: f64) {
        let y = x - self.comp;
        let t = self.sum + y;
        self.comp = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum
    }
}

/// Running compensated sum of [`Complex`] values (independent compensation
/// per component).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanComplexSum {
    re: KahanSum,
    im: KahanSum,
}

impl KahanComplexSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a complex term.
    pub fn add(&mut self, z: Complex) {
        self.re.add(z.re);
        self.im.add(z.im);
    }

    /// The compensated total.
    pub fn value(&self) -> Complex {
        Complex::new(self.re.value(), self.im.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(KahanSum::new().value(), 0.0);
        assert_eq!(KahanComplexSum::new().value(), Complex::ZERO);
    }

    #[test]
    fn compensation_beats_naive() {
        // Summing 1.0 followed by many tiny values: the naive sum loses all
        // of the tiny contributions, Kahan keeps them.
        let tiny = 1e-16;
        let n = 10_000;
        let mut naive = 1.0_f64;
        let mut kahan = KahanSum::new();
        kahan.add(1.0);
        for _ in 0..n {
            naive += tiny;
            kahan.add(tiny);
        }
        let exact = 1.0 + tiny * n as f64;
        assert!((kahan.value() - exact).abs() < (naive - exact).abs());
        assert!((kahan.value() - exact).abs() < 1e-18);
    }

    #[test]
    fn complex_sum_matches_componentwise() {
        let mut s = KahanComplexSum::new();
        s.add(Complex::new(1.0, 2.0));
        s.add(Complex::new(-0.5, 0.25));
        assert_eq!(s.value(), Complex::new(0.5, 2.25));
    }
}
