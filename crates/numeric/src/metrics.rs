//! Performance and accuracy metrics used by the evaluation harness.

use crate::Complex;

/// The paper's "pseudo MFlops" metric: `5 N log₂N / t` with `t` in
/// microseconds (Section 4.1).
///
/// # Panics
///
/// Panics if `n < 2` or `t_micros <= 0`.
pub fn pseudo_mflops(n: usize, t_micros: f64) -> f64 {
    assert!(n >= 2, "pseudo_mflops: n must be at least 2");
    assert!(t_micros > 0.0, "pseudo_mflops: time must be positive");
    5.0 * n as f64 * (n as f64).log2() / t_micros
}

/// Relative RMS error between a computed vector and a reference:
/// `‖a − b‖₂ / ‖b‖₂` (the benchfft metric used in Figure 6).
///
/// Returns 0 for two zero vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn relative_rms_error(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len(), "relative_rms_error: length mismatch");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm_sqr())
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y.norm_sqr()).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Relative RMS error for real vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn relative_rms_error_real(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "relative_rms_error_real: length mismatch");
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Adaptive timing: calls `f` once to calibrate, then repeats it enough
/// times to fill at least `min_time`, returning seconds per call.
///
/// The shared engine behind the VM-, native-, and baseline-timing paths
/// (the paper's measured evaluations all use this calibrate-then-repeat
/// scheme). Repetitions are capped at one billion; callers timing
/// potentially pathological workloads should use
/// [`time_adaptive_capped`] with a tighter budget.
pub fn time_adaptive(min_time: std::time::Duration, f: impl FnMut()) -> f64 {
    time_adaptive_capped(min_time, 1_000_000_000, f)
}

/// [`time_adaptive`] with an explicit iteration cap: the measurement
/// loop never exceeds `max_reps` repetitions even when the calibration
/// call suggests more would fit in `min_time`. This bounds the wall
/// time spent on a pathological (near-zero-cost or mis-timed) candidate
/// instead of letting the repetition count balloon.
pub fn time_adaptive_capped(min_time: std::time::Duration, max_reps: u64, f: impl FnMut()) -> f64 {
    time_adaptive_counted(min_time, max_reps, f).secs_per_call
}

/// The outcome of one calibrate-then-repeat timing run, separating the
/// timed repetitions from the calls that only primed the measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRun {
    /// Seconds per call over the timed loop.
    pub secs_per_call: f64,
    /// Repetitions of the timed loop — exactly the count
    /// `secs_per_call` was averaged over.
    pub reps: u64,
    /// Calls executed outside the timed loop (the calibration call).
    pub untimed_calls: u64,
}

/// [`time_adaptive_capped`], additionally reporting how many timed and
/// untimed calls were made. Callers that surface a repetition count to
/// users must take it from here: the calibration call runs the same
/// closure but is *not* part of the average, so counting closure
/// invocations overstates `reps` by one.
pub fn time_adaptive_counted(
    min_time: std::time::Duration,
    max_reps: u64,
    mut f: impl FnMut(),
) -> TimedRun {
    use std::time::Instant;
    let start = Instant::now();
    f();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((min_time.as_secs_f64() / once) as u64).clamp(1, max_reps.max(1));
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    TimedRun {
        secs_per_call: start.elapsed().as_secs_f64() / reps as f64,
        reps,
        untimed_calls: 1,
    }
}

/// Maximum absolute componentwise difference.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_abs_error(a: &[Complex], b: &[Complex]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_error: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_mflops_formula() {
        // N = 1024, t = 51.2 us -> 5*1024*10/51.2 = 1000
        assert!((pseudo_mflops(1024, 51.2) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_error_for_identical() {
        let v = vec![Complex::new(1.0, 2.0); 5];
        assert_eq!(relative_rms_error(&v, &v), 0.0);
        assert_eq!(max_abs_error(&v, &v), 0.0);
    }

    #[test]
    fn known_relative_error() {
        let a = [Complex::real(1.1)];
        let b = [Complex::real(1.0)];
        assert!((relative_rms_error(&a, &b) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn real_variant_matches_complex() {
        let ar = [1.0, 2.0, 3.0];
        let br = [1.5, 2.0, 2.5];
        let ac: Vec<Complex> = ar.iter().map(|&x| Complex::real(x)).collect();
        let bc: Vec<Complex> = br.iter().map(|&x| Complex::real(x)).collect();
        assert!((relative_rms_error_real(&ar, &br) - relative_rms_error(&ac, &bc)).abs() < 1e-15);
    }

    #[test]
    fn zero_reference_returns_numerator() {
        let a = [Complex::real(3.0), Complex::real(4.0)];
        let b = [Complex::ZERO, Complex::ZERO];
        assert!((relative_rms_error(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn time_adaptive_returns_positive_seconds() {
        let mut n = 0u64;
        let t = time_adaptive(std::time::Duration::from_millis(2), || {
            n = n.wrapping_add(1);
        });
        assert!(t > 0.0);
        assert!(n >= 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        relative_rms_error(&[Complex::ZERO], &[]);
    }

    #[test]
    fn capped_timer_bounds_repetitions() {
        // A huge time floor with a tiny cap must return promptly: one
        // calibration call plus at most `max_reps` timed calls.
        let mut n = 0u64;
        let start = std::time::Instant::now();
        let t = time_adaptive_capped(std::time::Duration::from_secs(3600), 50, || {
            n += 1;
        });
        assert!(t >= 0.0);
        assert!(n <= 51, "ran {n} times despite cap");
        assert!(start.elapsed() < std::time::Duration::from_secs(10));
    }

    #[test]
    fn counted_reps_exclude_the_calibration_call() {
        // The closure runs reps + 1 times (one calibration call), but
        // the reported reps must match the timed loop exactly — that is
        // the count secs_per_call was divided by.
        let mut calls = 0u64;
        let run = time_adaptive_counted(std::time::Duration::from_secs(3600), 32, || {
            calls += 1;
        });
        assert_eq!(run.untimed_calls, 1);
        assert_eq!(calls, run.reps + run.untimed_calls);
        assert_eq!(run.reps, 32, "huge floor with a tiny cap pins the cap");
    }

    #[test]
    fn zero_cap_still_runs_once() {
        let mut n = 0u64;
        time_adaptive_capped(std::time::Duration::from_millis(1), 0, || {
            n += 1;
        });
        assert!((2..=2).contains(&n), "calibration + one timed rep, got {n}");
    }
}
