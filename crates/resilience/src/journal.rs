//! An append-only, CRC-checked record log with crash-tolerant recovery.
//!
//! Each record is one line: `splj1 <crc32:08x> <payload>`. Appends go
//! straight to the file and are flushed and synced, so a killed process
//! loses at most the record being written. Loading is *tolerant*: the
//! first malformed or CRC-mismatching line ends the trusted prefix, and
//! everything from there on is dropped (a torn final write must not
//! poison the whole log). [`Journal::open`] then rewrites the cleaned
//! prefix atomically (tmp + rename) so later appends land on a
//! consistent file.
//!
//! Record payloads are opaque single-line strings; the search layer
//! defines their schema (see `spl-search`'s wisdom journal).

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::crc32::crc32;

/// The framing magic for version-1 records.
const MAGIC: &str = "splj1";

/// A journal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O failure reading or writing the journal.
    Io(String),
    /// A payload that cannot be framed (embedded newline).
    InvalidPayload(String),
    /// Strict loading found a malformed or CRC-mismatching record.
    Corrupt {
        /// 1-based line number of the first bad record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal i/o: {e}"),
            JournalError::InvalidPayload(p) => {
                write!(f, "journal payload may not contain newlines: {p:?}")
            }
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// The result of tolerantly loading a journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadedJournal {
    /// Payloads of the trusted prefix, in append order.
    pub records: Vec<String>,
    /// Non-empty lines dropped after the first corruption (0 when the
    /// whole file was clean).
    pub dropped: usize,
}

/// An append-only CRC-framed record log.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Option<File>,
}

/// Parses one framed line, returning its payload.
fn parse_line(line: &str) -> Result<String, String> {
    let rest = line
        .strip_prefix(MAGIC)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| format!("bad magic in {line:?}"))?;
    let (crc_hex, payload) = rest
        .split_once(' ')
        .ok_or_else(|| "missing payload".to_string())?;
    let want = u32::from_str_radix(crc_hex, 16).map_err(|_| format!("bad crc {crc_hex:?}"))?;
    let got = crc32(payload.as_bytes());
    if want != got {
        return Err(format!(
            "crc mismatch: stored {want:08x}, computed {got:08x}"
        ));
    }
    Ok(payload.to_string())
}

fn frame(payload: &str) -> String {
    format!("{MAGIC} {:08x} {payload}\n", crc32(payload.as_bytes()))
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, tolerantly
    /// loading its contents. If a torn or corrupt tail was found, the
    /// file is rewritten atomically with only the trusted prefix so
    /// subsequent appends extend a clean log.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors; corruption is recovered from, not
    /// reported as an error (inspect [`LoadedJournal::dropped`]).
    pub fn open(path: &Path) -> Result<(Journal, LoadedJournal), JournalError> {
        let loaded = Self::load(path)?;
        if loaded.dropped > 0 {
            Self::rewrite(path, &loaded.records)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| JournalError::Io(format!("opening {}: {e}", path.display())))?;
        Ok((
            Journal {
                path: path.to_path_buf(),
                file: Some(file),
            },
            loaded,
        ))
    }

    /// Tolerantly loads the journal at `path` without opening it for
    /// appends. A missing file is an empty journal.
    ///
    /// # Errors
    ///
    /// Fails only on I/O errors.
    pub fn load(path: &Path) -> Result<LoadedJournal, JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(LoadedJournal::default())
            }
            Err(e) => return Err(JournalError::Io(format!("reading {}: {e}", path.display()))),
        };
        let mut records = Vec::new();
        let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        // A trailing newline yields one empty final chunk; drop it.
        if lines.last().is_some_and(|l| l.is_empty()) {
            lines.pop();
        }
        let mut iter = lines.iter().enumerate();
        let mut dropped = 0;
        for (i, raw) in iter.by_ref() {
            if raw.is_empty() || raw.first() == Some(&b'#') {
                continue;
            }
            let ok = std::str::from_utf8(raw)
                .map_err(|_| "not utf-8".to_string())
                .and_then(parse_line);
            match ok {
                Ok(payload) => records.push(payload),
                Err(_) => {
                    // First bad line: everything from here on is
                    // untrusted (record order matters to consumers).
                    dropped = 1;
                    let _ = i;
                    break;
                }
            }
        }
        dropped += iter.filter(|(_, raw)| !raw.is_empty()).count();
        Ok(LoadedJournal { records, dropped })
    }

    /// Strictly loads the journal: any malformed or CRC-mismatching
    /// record is an error instead of a truncation point.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] on the first bad record, or an I/O
    /// error.
    pub fn load_strict(path: &Path) -> Result<Vec<String>, JournalError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(JournalError::Io(format!("reading {}: {e}", path.display()))),
        };
        let mut records = Vec::new();
        let mut lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        if lines.last().is_some_and(|l| l.is_empty()) {
            lines.pop();
        }
        for (i, raw) in lines.iter().enumerate() {
            if raw.is_empty() || raw.first() == Some(&b'#') {
                continue;
            }
            let line = std::str::from_utf8(raw).map_err(|_| JournalError::Corrupt {
                line: i + 1,
                reason: "not utf-8".into(),
            })?;
            let payload = parse_line(line).map_err(|reason| JournalError::Corrupt {
                line: i + 1,
                reason,
            })?;
            records.push(payload);
        }
        Ok(records)
    }

    /// Appends one record and syncs it to disk.
    ///
    /// # Errors
    ///
    /// [`JournalError::InvalidPayload`] for payloads containing
    /// newlines, or an I/O error.
    pub fn append(&mut self, payload: &str) -> Result<(), JournalError> {
        if payload.contains('\n') || payload.contains('\r') {
            return Err(JournalError::InvalidPayload(payload.to_string()));
        }
        let file = self
            .file
            .as_mut()
            .ok_or_else(|| JournalError::Io("journal not open for appends".into()))?;
        file.write_all(frame(payload).as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data())
            .map_err(|e| JournalError::Io(format!("appending to {}: {e}", self.path.display())))
    }

    /// Atomically replaces the journal at `path` with exactly `records`
    /// (written to a temporary sibling, synced, then renamed over the
    /// original).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; `records` must be newline-free.
    pub fn rewrite(path: &Path, records: &[String]) -> Result<(), JournalError> {
        for r in records {
            if r.contains('\n') || r.contains('\r') {
                return Err(JournalError::InvalidPayload(r.clone()));
            }
        }
        let tmp = path.with_extension("journal.tmp");
        let io = |e: std::io::Error| JournalError::Io(format!("rewriting {}: {e}", path.display()));
        let mut f = File::create(&tmp).map_err(io)?;
        for r in records {
            f.write_all(frame(r).as_bytes()).map_err(io)?;
        }
        f.sync_all().map_err(io)?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// The on-disk path of this journal.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "spl_journal_test_{}_{name}.journal",
            std::process::id()
        ))
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_file(p);
    }

    #[test]
    fn round_trips_records() {
        let p = tmp_path("roundtrip");
        cleanup(&p);
        {
            let (mut j, loaded) = Journal::open(&p).unwrap();
            assert!(loaded.records.is_empty());
            j.append("small 2 3ff0000000000000 2").unwrap();
            j.append("small 4 4010000000000000 (ct 2 2)").unwrap();
        }
        let loaded = Journal::load(&p).unwrap();
        assert_eq!(loaded.dropped, 0);
        assert_eq!(
            loaded.records,
            vec![
                "small 2 3ff0000000000000 2".to_string(),
                "small 4 4010000000000000 (ct 2 2)".to_string()
            ]
        );
        cleanup(&p);
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let p = tmp_path("torn");
        cleanup(&p);
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            j.append("one").unwrap();
            j.append("two").unwrap();
        }
        // Simulate a torn final write: chop the file mid-record.
        let text = std::fs::read_to_string(&p).unwrap();
        std::fs::write(&p, &text[..text.len() - 5]).unwrap();
        let loaded = Journal::load(&p).unwrap();
        assert_eq!(loaded.records, vec!["one".to_string()]);
        assert_eq!(loaded.dropped, 1);
        cleanup(&p);
    }

    #[test]
    fn corrupt_crc_truncates_from_there() {
        let p = tmp_path("crc");
        cleanup(&p);
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            j.append("alpha").unwrap();
            j.append("beta").unwrap();
            j.append("gamma").unwrap();
        }
        // Flip one payload byte in the middle record.
        let mut bytes = std::fs::read(&p).unwrap();
        let pos = bytes
            .windows(4)
            .position(|w| w == b"beta")
            .expect("payload present");
        bytes[pos] = b'B';
        std::fs::write(&p, &bytes).unwrap();
        let loaded = Journal::load(&p).unwrap();
        // Middle corruption drops it AND everything after it.
        assert_eq!(loaded.records, vec!["alpha".to_string()]);
        assert_eq!(loaded.dropped, 2);
        assert!(matches!(
            Journal::load_strict(&p),
            Err(JournalError::Corrupt { line: 2, .. })
        ));
        cleanup(&p);
    }

    #[test]
    fn open_heals_corruption_and_appends_cleanly() {
        let p = tmp_path("heal");
        cleanup(&p);
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            j.append("keep").unwrap();
            j.append("lost").unwrap();
        }
        let text = std::fs::read_to_string(&p).unwrap();
        std::fs::write(&p, &text[..text.len() - 3]).unwrap();
        {
            let (mut j, loaded) = Journal::open(&p).unwrap();
            assert_eq!(loaded.records, vec!["keep".to_string()]);
            assert_eq!(loaded.dropped, 1);
            j.append("after-heal").unwrap();
        }
        // The healed file is now fully clean, even strictly.
        let strict = Journal::load_strict(&p).unwrap();
        assert_eq!(strict, vec!["keep".to_string(), "after-heal".to_string()]);
        cleanup(&p);
    }

    #[test]
    fn missing_file_is_empty() {
        let p = tmp_path("missing");
        cleanup(&p);
        let loaded = Journal::load(&p).unwrap();
        assert!(loaded.records.is_empty());
        assert_eq!(loaded.dropped, 0);
        assert!(Journal::load_strict(&p).unwrap().is_empty());
    }

    #[test]
    fn newline_payload_rejected() {
        let p = tmp_path("newline");
        cleanup(&p);
        let (mut j, _) = Journal::open(&p).unwrap();
        assert!(matches!(
            j.append("two\nlines"),
            Err(JournalError::InvalidPayload(_))
        ));
        cleanup(&p);
    }

    #[test]
    fn comments_and_blanks_tolerated() {
        let p = tmp_path("comments");
        cleanup(&p);
        {
            let (mut j, _) = Journal::open(&p).unwrap();
            j.append("real").unwrap();
        }
        let mut text = String::from("# header comment\n\n");
        text.push_str(&std::fs::read_to_string(&p).unwrap());
        std::fs::write(&p, text).unwrap();
        let loaded = Journal::load(&p).unwrap();
        assert_eq!(loaded.records, vec!["real".to_string()]);
        assert_eq!(loaded.dropped, 0);
        cleanup(&p);
    }

    #[test]
    fn rewrite_is_atomic_replacement() {
        let p = tmp_path("rewrite");
        cleanup(&p);
        Journal::rewrite(&p, &["a".into(), "b".into()]).unwrap();
        let loaded = Journal::load(&p).unwrap();
        assert_eq!(loaded.records, vec!["a".to_string(), "b".to_string()]);
        // No stray tmp file left behind.
        assert!(!p.with_extension("journal.tmp").exists());
        cleanup(&p);
    }
}
