//! Advisory whole-file locks for multi-process coordination.
//!
//! On-disk state shared between processes — the kernel cache directory,
//! a daemon's plan journal — needs a mutual-exclusion primitive that
//! survives `kill -9` (kernel-released, not lockfile-presence-based).
//! POSIX `flock` is exactly that: the lock dies with the process, so a
//! crashed holder never wedges its peers. [`FileLock`] wraps it RAII
//! style; dropping the guard releases the lock.
//!
//! On non-Unix platforms acquisition reports
//! [`LockError::Unsupported`]; callers that merely *prefer* exclusion
//! (single-process use is already safe) should treat that as a no-op
//! via [`FileLock::acquire_or_noop`].

use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

/// Why a lock could not be taken.
#[derive(Debug)]
pub enum LockError {
    /// Opening or creating the lock file failed.
    Io(io::Error),
    /// `flock` itself failed.
    Flock(io::Error),
    /// No advisory-lock support on this platform.
    Unsupported,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Io(e) => write!(f, "opening lock file: {e}"),
            LockError::Flock(e) => write!(f, "flock: {e}"),
            LockError::Unsupported => write!(f, "file locks unsupported on this platform"),
        }
    }
}

impl std::error::Error for LockError {}

/// An exclusive advisory lock on a file, held until drop.
///
/// The lock is per-open-file-description: two `FileLock`s on the same
/// path exclude each other across *and* within processes. It is
/// advisory — only cooperating lockers are serialized.
#[derive(Debug)]
pub struct FileLock {
    // Held only for its drop side effect: closing the fd releases the
    // flock.
    _file: Option<File>,
}

#[cfg(unix)]
mod imp {
    use std::io;
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_UN: i32 = 8;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    pub fn lock_exclusive(file: &std::fs::File) -> io::Result<()> {
        // Restart on EINTR: a signal during a contended acquire is
        // routine for a daemon.
        loop {
            if unsafe { flock(file.as_raw_fd(), LOCK_EX) } == 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    pub fn unlock(file: &std::fs::File) {
        // Best-effort; closing the fd releases the lock anyway.
        unsafe { flock(file.as_raw_fd(), LOCK_UN) };
    }
}

impl FileLock {
    /// Blocks until an exclusive lock on `path` is held, creating the
    /// file if needed.
    ///
    /// # Errors
    ///
    /// See [`LockError`].
    pub fn acquire(path: &Path) -> Result<FileLock, LockError> {
        #[cfg(unix)]
        {
            let file = OpenOptions::new()
                .create(true)
                .truncate(false)
                .read(true)
                .write(true)
                .open(path)
                .map_err(LockError::Io)?;
            imp::lock_exclusive(&file).map_err(LockError::Flock)?;
            Ok(FileLock { _file: Some(file) })
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Err(LockError::Unsupported)
        }
    }

    /// [`acquire`](FileLock::acquire), but degrades to an unlocked
    /// guard when the platform has no lock support or the lock file
    /// cannot be created (e.g. a read-only cache dir). Cross-process
    /// exclusion is then not guaranteed — callers use this where the
    /// lock is a hardening measure, not a correctness requirement
    /// within one process.
    pub fn acquire_or_noop(path: &Path) -> FileLock {
        match FileLock::acquire(path) {
            Ok(lock) => lock,
            Err(_) => FileLock { _file: None },
        }
    }

    /// Whether this guard actually holds a lock (false only on the
    /// degraded [`acquire_or_noop`](FileLock::acquire_or_noop) path).
    pub fn is_locked(&self) -> bool {
        self._file.is_some()
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Some(file) = &self._file {
            imp::unlock(file);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("spl-lockfile-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn acquire_creates_and_locks() {
        let dir = tmp_dir("basic");
        let path = dir.join("index.lock");
        let lock = FileLock::acquire(&path).unwrap();
        assert!(lock.is_locked());
        assert!(path.exists());
        drop(lock);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lock_excludes_second_acquirer_until_dropped() {
        let dir = tmp_dir("excl");
        let path = dir.join("index.lock");
        let held = FileLock::acquire(&path).unwrap();

        let (tx, rx) = mpsc::channel();
        let path2 = path.clone();
        let t = std::thread::spawn(move || {
            // Blocks until the main thread drops its lock.
            let _second = FileLock::acquire(&path2).unwrap();
            tx.send(()).unwrap();
        });
        // While held, the second acquirer must not get through.
        assert!(
            rx.recv_timeout(Duration::from_millis(200)).is_err(),
            "second lock acquired while first was held"
        );
        drop(held);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("second lock never acquired after release");
        t.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn acquire_or_noop_degrades_on_bad_path() {
        // A path whose parent doesn't exist cannot be created.
        let bogus = std::path::Path::new("/nonexistent-spl-lockfile-dir/x.lock");
        let guard = FileLock::acquire_or_noop(bogus);
        assert!(!guard.is_locked());
    }
}
