//! Executing untrusted code in a forked child process.
//!
//! Generated kernels are machine code produced from machine-generated C;
//! a miscompile can segfault or spin forever. Running each candidate in
//! a forked child turns those failure modes into *data* — a classified
//! [`SandboxError`] — instead of killing the whole search. The child
//! fills a caller-provided `f64` buffer and streams it back through a
//! pipe; the parent enforces a wall-clock deadline and reaps the child
//! on every path.
//!
//! The caller must do all allocation **before** calling
//! [`run_isolated`]: the child may be forked from a multithreaded
//! process, where only async-signal-safe work (and in practice,
//! allocation-free computation) is reliable between `fork` and `_exit`.

use std::time::{Duration, Instant};

/// Why sandboxed execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SandboxError {
    /// The child died on a signal (SIGSEGV, SIGABRT, ...).
    Crashed {
        /// The terminating signal number.
        signal: i32,
    },
    /// The child ran past the deadline and was killed.
    TimedOut {
        /// The budget that was exceeded.
        timeout: Duration,
    },
    /// The child exited voluntarily but unsuccessfully (e.g. the closure
    /// panicked).
    ChildFailed {
        /// The child's exit code.
        code: i32,
    },
    /// Pipe plumbing failed or the child exited cleanly without sending
    /// a complete result.
    Protocol(String),
    /// Process isolation is not available on this platform; the caller
    /// should fall back to in-process execution.
    Unsupported,
}

impl std::fmt::Display for SandboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SandboxError::Crashed { signal } => {
                write!(f, "sandboxed child crashed on signal {signal}")
            }
            SandboxError::TimedOut { timeout } => write!(
                f,
                "sandboxed child timed out after {:.1}s",
                timeout.as_secs_f64()
            ),
            SandboxError::ChildFailed { code } => {
                write!(f, "sandboxed child exited with code {code}")
            }
            SandboxError::Protocol(e) => write!(f, "sandbox protocol: {e}"),
            SandboxError::Unsupported => write!(f, "process sandbox unsupported on this platform"),
        }
    }
}

impl std::error::Error for SandboxError {}

/// Runs `f(out)` in a forked child under `timeout`, copying the filled
/// buffer back into `out` on success. Crashes, hangs, and failed exits
/// in `f` are contained and classified.
///
/// `out` must be fully allocated by the caller; `f` should neither
/// allocate nor touch locks (it runs in a fork of a possibly
/// multithreaded process).
///
/// # Errors
///
/// See [`SandboxError`].
#[cfg(unix)]
pub fn run_isolated(
    timeout: Duration,
    out: &mut [f64],
    f: impl FnOnce(&mut [f64]),
) -> Result<(), SandboxError> {
    imp::run_isolated(timeout, out, f)
}

/// Non-unix fallback: isolation is unavailable; callers should run the
/// closure in-process instead (and accept the weaker failure handling).
#[cfg(not(unix))]
pub fn run_isolated(
    _timeout: Duration,
    _out: &mut [f64],
    _f: impl FnOnce(&mut [f64]),
) -> Result<(), SandboxError> {
    Err(SandboxError::Unsupported)
}

#[cfg(unix)]
mod imp {
    use super::*;
    use std::ffi::c_int;

    extern "C" {
        fn fork() -> i32;
        fn waitpid(pid: i32, status: *mut c_int, options: c_int) -> i32;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn _exit(code: c_int) -> !;
        fn kill(pid: i32, sig: c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    const SIGKILL: c_int = 9;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;

    /// Exit code the child uses when the closure panicked.
    const CHILD_PANIC_EXIT: c_int = 3;
    /// Exit code the child uses when writing the result failed.
    const CHILD_WRITE_EXIT: c_int = 4;

    fn wifexited(status: c_int) -> bool {
        status & 0x7f == 0
    }

    fn wexitstatus(status: c_int) -> i32 {
        (status >> 8) & 0xff
    }

    fn wifsignaled(status: c_int) -> bool {
        let sig = status & 0x7f;
        sig != 0 && sig != 0x7f
    }

    fn wtermsig(status: c_int) -> i32 {
        status & 0x7f
    }

    /// Blocking reap; used once the child is known to be exiting.
    fn reap(pid: i32) -> c_int {
        let mut status: c_int = 0;
        // SAFETY: plain waitpid on a pid we forked.
        unsafe {
            waitpid(pid, &mut status, 0);
        }
        status
    }

    fn classify_exit(status: c_int, context: &str) -> SandboxError {
        if wifsignaled(status) {
            SandboxError::Crashed {
                signal: wtermsig(status),
            }
        } else if wifexited(status) && wexitstatus(status) != 0 {
            SandboxError::ChildFailed {
                code: wexitstatus(status),
            }
        } else {
            SandboxError::Protocol(context.to_string())
        }
    }

    pub fn run_isolated(
        timeout: Duration,
        out: &mut [f64],
        f: impl FnOnce(&mut [f64]),
    ) -> Result<(), SandboxError> {
        let mut fds: [c_int; 2] = [0; 2];
        // SAFETY: pipe writes two fds into the array on success.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(SandboxError::Protocol("pipe() failed".into()));
        }
        let (rd, wr) = (fds[0], fds[1]);
        // SAFETY: fork duplicates this process; every path below closes
        // its ends of the pipe and (in the parent) reaps the child.
        let pid = unsafe { fork() };
        if pid < 0 {
            unsafe {
                close(rd);
                close(wr);
            }
            return Err(SandboxError::Protocol("fork() failed".into()));
        }
        if pid == 0 {
            // Child: compute, stream the buffer, exit without running
            // atexit handlers. A panic in the closure becomes a
            // distinguishable exit code instead of an abort.
            unsafe {
                close(rd);
            }
            let panicked =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(out))).is_err();
            if panicked {
                unsafe {
                    close(wr);
                    _exit(CHILD_PANIC_EXIT);
                }
            }
            let bytes: &[u8] = unsafe {
                // SAFETY: reinterpreting the f64 buffer as bytes for the
                // pipe; alignment of u8 is trivially satisfied.
                std::slice::from_raw_parts(out.as_ptr().cast::<u8>(), out.len() * 8)
            };
            let mut sent = 0usize;
            while sent < bytes.len() {
                // SAFETY: writing a valid sub-slice to our pipe end.
                let n = unsafe { write(wr, bytes[sent..].as_ptr(), bytes.len() - sent) };
                if n <= 0 {
                    unsafe {
                        close(wr);
                        _exit(CHILD_WRITE_EXIT);
                    }
                }
                sent += n as usize;
            }
            unsafe {
                close(wr);
                _exit(0);
            }
        }
        // Parent.
        unsafe {
            close(wr);
            fcntl(rd, F_SETFL, O_NONBLOCK);
        }
        let want = out.len() * 8;
        let mut buf = vec![0u8; want];
        let mut got = 0usize;
        let deadline = Instant::now() + timeout;
        let result = loop {
            if got < want {
                // SAFETY: reading into the unfilled tail of our buffer.
                let n = unsafe { read(rd, buf[got..].as_mut_ptr(), want - got) };
                if n > 0 {
                    got += n as usize;
                    continue; // keep draining while data flows
                }
                if n == 0 {
                    // EOF with an incomplete payload: the child died or
                    // bailed before finishing its write.
                    let status = reap(pid);
                    break Err(classify_exit(
                        status,
                        &format!("child sent {got} of {want} bytes"),
                    ));
                }
                // n < 0: no data yet (EAGAIN) or a transient error —
                // either way, fall through to the deadline check.
            } else {
                // Full payload received; the child's next statement is
                // _exit, so a blocking reap terminates promptly.
                let status = reap(pid);
                if wifexited(status) && wexitstatus(status) == 0 {
                    break Ok(());
                }
                break Err(classify_exit(status, "child failed after full payload"));
            }
            if Instant::now() >= deadline {
                // SAFETY: killing the child we forked, then reaping it.
                unsafe {
                    kill(pid, SIGKILL);
                }
                reap(pid);
                break Err(SandboxError::TimedOut { timeout });
            }
            std::thread::sleep(Duration::from_micros(500));
        };
        unsafe {
            close(rd);
        }
        if result.is_ok() {
            // SAFETY: byte-for-byte copy back into the f64 buffer.
            unsafe {
                std::ptr::copy_nonoverlapping(buf.as_ptr(), out.as_mut_ptr().cast::<u8>(), want);
            }
        }
        result
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn healthy_closure_returns_buffer() {
        let mut out = vec![0.0f64; 4];
        run_isolated(Duration::from_secs(10), &mut out, |o| {
            for (i, v) in o.iter_mut().enumerate() {
                *v = (i as f64) * 1.5;
            }
        })
        .unwrap();
        assert_eq!(out, vec![0.0, 1.5, 3.0, 4.5]);
    }

    #[test]
    fn large_payload_streams_past_pipe_capacity() {
        // 160 KB — well past the 64 KB default pipe buffer.
        let mut out = vec![0.0f64; 20_000];
        run_isolated(Duration::from_secs(30), &mut out, |o| {
            for (i, v) in o.iter_mut().enumerate() {
                *v = i as f64;
            }
        })
        .unwrap();
        assert_eq!(out[19_999], 19_999.0);
        assert_eq!(out[123], 123.0);
    }

    #[test]
    fn crash_is_contained_and_classified() {
        let mut out = vec![0.0f64; 1];
        let err = run_isolated(Duration::from_secs(10), &mut out, |_| {
            std::process::abort(); // SIGABRT in the child only
        })
        .unwrap_err();
        assert!(matches!(err, SandboxError::Crashed { signal: 6 }), "{err}");
    }

    #[test]
    fn hang_is_killed_at_deadline() {
        let mut out = vec![0.0f64; 1];
        let start = Instant::now();
        let err = run_isolated(Duration::from_millis(200), &mut out, |_| loop {
            std::hint::spin_loop();
        })
        .unwrap_err();
        assert!(matches!(err, SandboxError::TimedOut { .. }), "{err}");
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn panic_becomes_child_failed() {
        let mut out = vec![0.0f64; 1];
        let err = run_isolated(Duration::from_secs(10), &mut out, |_| {
            panic!("injected panic");
        })
        .unwrap_err();
        assert!(
            matches!(err, SandboxError::ChildFailed { code: 3 }),
            "{err}"
        );
    }

    #[test]
    fn parent_buffer_untouched_on_failure() {
        let mut out = vec![7.0f64; 2];
        let _ = run_isolated(Duration::from_millis(200), &mut out, |o| {
            o[0] = 99.0;
            loop {
                std::hint::spin_loop();
            }
        });
        // The child's writes never reach the parent on failure.
        assert_eq!(out, vec![7.0, 7.0]);
    }
}
