#![warn(missing_docs)]

//! Fault-tolerance primitives for long-running SPL searches.
//!
//! The paper's evaluation (Section 4) rests on timing searches over
//! thousands of generated candidates — exactly the workload where one
//! miscompiled kernel, hung `cc` invocation, or process crash would
//! otherwise lose hours of work. This crate provides the substrate the
//! search and native-execution layers build their resilience on:
//!
//! * [`journal`] — an append-only, CRC-checked record log with tolerant
//!   recovery (a truncated or corrupt tail is dropped, not fatal) and
//!   atomic tmp+rename rewrites; the search persists its "wisdom"
//!   (FFTW-style saved plans) through it so a killed search resumes from
//!   the last completed size.
//! * [`retry`] — bounded retry with exponential backoff (plus optional
//!   seeded decorrelated jitter, so a fleet of workers retrying the
//!   same outage doesn't stampede in lockstep) for flaky external steps
//!   (spawning the host C compiler, filesystem races).
//! * [`lockfile`] — advisory whole-file locks (`flock`) so multiple
//!   processes can share on-disk state (e.g. a kernel cache directory)
//!   without corrupting each other's writes.
//! * [`command`] — running external commands under a wall-clock timeout,
//!   so a hung `cc` is killed and reported instead of wedging the search.
//! * [`sandbox`] — executing untrusted generated code in a forked child
//!   process, so a SIGSEGV or infinite loop in a candidate kernel is
//!   contained and classified (`Crashed` / `TimedOut`) rather than taking
//!   the whole search down.
//!
//! Everything is dependency-free; the process plumbing uses the same
//! direct `extern "C"` bindings the `spl-native` crate already uses for
//! `dlopen`.

pub mod command;
pub mod crc32;
pub mod journal;
pub mod lockfile;
pub mod retry;
pub mod sandbox;

pub use command::{run_command_with_timeout, CommandError};
pub use journal::{Journal, JournalError, LoadedJournal};
pub use lockfile::FileLock;
pub use retry::{with_backoff, Jitter, RetryPolicy};
pub use sandbox::{run_isolated, SandboxError};
