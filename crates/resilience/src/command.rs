//! Running external commands under a wall-clock timeout.
//!
//! A hung host compiler must not wedge a search that has thousands of
//! candidates left; the runner here polls the child and kills it when
//! the budget expires, draining stdout/stderr on threads so a chatty
//! child cannot deadlock on a full pipe either.

use std::io::Read;
use std::process::{Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

/// Why a command run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandError {
    /// The process could not be spawned at all.
    Spawn(String),
    /// The process ran past the timeout and was killed.
    TimedOut {
        /// The budget that was exceeded.
        timeout: Duration,
    },
    /// Waiting on the process failed.
    Wait(String),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Spawn(e) => write!(f, "spawning command: {e}"),
            CommandError::TimedOut { timeout } => {
                write!(f, "command timed out after {:.1}s", timeout.as_secs_f64())
            }
            CommandError::Wait(e) => write!(f, "waiting on command: {e}"),
        }
    }
}

impl std::error::Error for CommandError {}

/// A finished command: exit status plus captured output.
#[derive(Debug)]
pub struct CommandOutput {
    /// The child's exit status.
    pub status: ExitStatus,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
}

fn drain(mut r: impl Read + Send + 'static) -> std::thread::JoinHandle<Vec<u8>> {
    std::thread::spawn(move || {
        let mut buf = Vec::new();
        let _ = r.read_to_end(&mut buf);
        buf
    })
}

/// Runs `cmd` to completion with stdout/stderr captured, killing it if
/// it exceeds `timeout`.
///
/// # Errors
///
/// [`CommandError::Spawn`] when the binary cannot be started,
/// [`CommandError::TimedOut`] when the budget expires (the child is
/// killed and reaped first).
pub fn run_command_with_timeout(
    cmd: &mut Command,
    timeout: Duration,
) -> Result<CommandOutput, CommandError> {
    let mut child = cmd
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| CommandError::Spawn(e.to_string()))?;
    let out_h = child.stdout.take().map(drain);
    let err_h = child.stderr.take().map(drain);
    let deadline = Instant::now() + timeout;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    // Do NOT join the drain threads here: a grandchild
                    // (e.g. `sh -c` that forked rather than exec'd) may
                    // still hold the pipe open, and the output of a
                    // killed command is unwanted anyway. Dropping the
                    // handles detaches the drainers; they exit on EOF.
                    drop(out_h);
                    drop(err_h);
                    return Err(CommandError::TimedOut { timeout });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(CommandError::Wait(e.to_string()));
            }
        }
    };
    let stdout = out_h
        .map(|h| h.join().unwrap_or_default())
        .unwrap_or_default();
    let stderr = err_h
        .map(|h| h.join().unwrap_or_default())
        .unwrap_or_default();
    Ok(CommandOutput {
        status,
        stdout,
        stderr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_output_of_quick_command() {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg("echo out; echo err >&2");
        let out = run_command_with_timeout(&mut cmd, Duration::from_secs(10)).unwrap();
        assert!(out.status.success());
        assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "out");
        assert_eq!(String::from_utf8_lossy(&out.stderr).trim(), "err");
    }

    #[test]
    fn reports_nonzero_exit() {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg("exit 3");
        let out = run_command_with_timeout(&mut cmd, Duration::from_secs(10)).unwrap();
        assert!(!out.status.success());
    }

    #[test]
    fn kills_hung_command() {
        let mut cmd = Command::new("sh");
        cmd.arg("-c").arg("sleep 30");
        let start = Instant::now();
        let err = run_command_with_timeout(&mut cmd, Duration::from_millis(100)).unwrap_err();
        assert!(matches!(err, CommandError::TimedOut { .. }));
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn missing_binary_is_spawn_error() {
        let mut cmd = Command::new("/nonexistent/definitely-not-a-binary");
        let err = run_command_with_timeout(&mut cmd, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, CommandError::Spawn(_)));
    }
}
