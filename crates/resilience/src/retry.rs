//! Bounded retry with exponential backoff and optional decorrelated
//! jitter.
//!
//! The zero-jitter path ([`Jitter::None`]) sleeps pure exponential
//! delays and is fully deterministic — tests and journal replays rely
//! on that. Long-running daemons should enable
//! [`Jitter::Decorrelated`]: when N workers all hit the same outage
//! (say, `cc` temporarily unavailable) at once, pure exponential
//! backoff has them retrying in lockstep forever; decorrelated jitter
//! spreads each worker's retries over `[base_delay, 3·previous]`
//! (clamped to `max_delay`), so the stampede decays instead of
//! repeating.

use std::time::Duration;

/// Where retry delays come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jitter {
    /// Pure exponential backoff: deterministic, used by tests and
    /// anywhere reproducibility matters.
    None,
    /// AWS-style decorrelated jitter seeded by the given value: each
    /// delay is drawn uniformly from `[base_delay, 3·previous_delay]`
    /// and clamped to `max_delay`. Equal seeds give identical delay
    /// sequences, so even the jittered path is replayable.
    Decorrelated {
        /// SplitMix64 seed for the delay stream.
        seed: u64,
    },
}

/// How many times to attempt a flaky operation and how long to wait
/// between attempts (the delay doubles per retry, capped at
/// [`max_delay`](RetryPolicy::max_delay); with
/// [`Jitter::Decorrelated`] each delay is drawn from the decorrelated
/// jitter distribution instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries). Clamped to at least 1.
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
    /// Delay randomization (defaults to [`Jitter::None`]).
    pub jitter: Jitter,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: Jitter::None,
        }
    }
}

/// A freestanding SplitMix64 step, kept local so this crate stays
/// dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The stateful delay stream of one retry loop. [`Jitter::None`]
/// reproduces the classic doubling sequence; decorrelated jitter keeps
/// the previous delay as its state.
#[derive(Debug)]
pub struct DelayStream {
    policy: RetryPolicy,
    rng_state: Option<u64>,
    prev: Option<Duration>,
    attempt: u32,
}

impl DelayStream {
    /// The delay to sleep after the next failed attempt. Every returned
    /// delay lies in `[base_delay, max_delay]` (or is zero when
    /// `base_delay` is zero).
    pub fn next_delay(&mut self) -> Duration {
        let d = match self.rng_state.as_mut() {
            None => self.policy.delay_after(self.attempt),
            Some(state) => {
                let lo = self.policy.base_delay;
                // Decorrelated jitter: uniform in [base, 3 * previous].
                let hi = self
                    .prev
                    .unwrap_or(lo)
                    .saturating_mul(3)
                    .min(self.policy.max_delay)
                    .max(lo);
                let span = hi.saturating_sub(lo).as_nanos() as u64;
                let draw = if span == 0 {
                    0
                } else {
                    splitmix64(state) % (span + 1)
                };
                lo + Duration::from_nanos(draw)
            }
        };
        let d = d.min(self.policy.max_delay);
        self.prev = Some(d);
        self.attempt += 1;
        d
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: Jitter::None,
        }
    }

    /// This policy with decorrelated jitter enabled under `seed`.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter = Jitter::Decorrelated { seed };
        self
    }

    /// The deterministic (zero-jitter) delay to sleep after failed
    /// attempt `attempt` (0-based).
    pub fn delay_after(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        (self.base_delay * factor).min(self.max_delay)
    }

    /// The delay stream [`with_backoff`] sleeps through for this
    /// policy — public so tests (and capacity planning) can inspect the
    /// exact delays without sleeping through them.
    pub fn delays(&self) -> DelayStream {
        DelayStream {
            policy: *self,
            rng_state: match self.jitter {
                Jitter::None => None,
                Jitter::Decorrelated { seed } => Some(seed),
            },
            prev: None,
            attempt: 0,
        }
    }
}

/// Runs `f` up to `policy.attempts` times, sleeping between failures
/// with exponential backoff (decorrelated-jittered when the policy says
/// so). `f` receives the 0-based attempt index. Returns the first
/// success or the last error.
///
/// # Errors
///
/// Returns the error of the final attempt when every attempt fails.
pub fn with_backoff<T, E>(
    policy: &RetryPolicy,
    mut f: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.attempts.max(1);
    let mut delays = policy.delays();
    let mut last = None;
    for attempt in 0..attempts {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < attempts {
                    let d = delays.next_delay();
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter: Jitter::None,
        }
    }

    #[test]
    fn succeeds_first_try_without_retrying() {
        let mut calls = 0;
        let r: Result<i32, &str> = with_backoff(&fast(), |_| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_success() {
        let mut calls = 0;
        let r: Result<i32, &str> = with_backoff(&fast(), |attempt| {
            calls += 1;
            if attempt < 2 {
                Err("flaky")
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn gives_up_after_budget() {
        let mut calls = 0;
        let r: Result<(), String> = with_backoff(&fast(), |a| {
            calls += 1;
            Err(format!("attempt {a}"))
        });
        assert_eq!(r, Err("attempt 3".to_string()));
        assert_eq!(calls, 4);
    }

    #[test]
    fn delays_double_and_cap() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            jitter: Jitter::None,
        };
        assert_eq!(p.delay_after(0), Duration::from_millis(10));
        assert_eq!(p.delay_after(1), Duration::from_millis(20));
        assert_eq!(p.delay_after(2), Duration::from_millis(35)); // capped
        assert_eq!(p.delay_after(10), Duration::from_millis(35));
    }

    #[test]
    fn zero_jitter_stream_matches_delay_after() {
        let p = RetryPolicy {
            attempts: 6,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(300),
            jitter: Jitter::None,
        };
        let mut stream = p.delays();
        for attempt in 0..5 {
            assert_eq!(stream.next_delay(), p.delay_after(attempt));
        }
    }

    #[test]
    fn attempts_clamped_to_one() {
        let p = RetryPolicy {
            attempts: 0,
            ..fast()
        };
        let mut calls = 0;
        let _: Result<(), ()> = with_backoff(&p, |_| {
            calls += 1;
            Err(())
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn jittered_delays_stay_within_bounds() {
        let p = RetryPolicy {
            attempts: 32,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            jitter: Jitter::None,
        }
        .with_jitter(42);
        let mut stream = p.delays();
        let mut prev = p.base_delay;
        for i in 0..64 {
            let d = stream.next_delay();
            assert!(d >= p.base_delay, "delay {i} below base: {d:?}");
            assert!(d <= p.max_delay, "delay {i} above cap: {d:?}");
            // Decorrelated invariant: bounded by 3x the previous delay
            // (clamped to the policy window).
            let hi = prev.saturating_mul(3).min(p.max_delay).max(p.base_delay);
            assert!(d <= hi, "delay {i} {d:?} exceeds 3x previous {prev:?}");
            prev = d;
        }
    }

    #[test]
    fn jitter_is_seeded_and_varies() {
        let p = RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_secs(1),
            jitter: Jitter::None,
        };
        let seq = |seed: u64| -> Vec<Duration> {
            let mut s = p.with_jitter(seed).delays();
            (0..16).map(|_| s.next_delay()).collect()
        };
        // Equal seeds replay byte-identically.
        assert_eq!(seq(7), seq(7));
        // Distinct seeds decorrelate: two workers retrying the same
        // outage no longer share a delay schedule.
        assert_ne!(seq(7), seq(8));
        // And the draws are not all equal (actual randomization).
        let s = seq(7);
        assert!(s.iter().any(|d| d != &s[0]), "{s:?}");
    }

    #[test]
    fn with_backoff_works_under_jitter() {
        // Tiny delays so the test sleeps microseconds, not seconds.
        let p = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_nanos(100),
            max_delay: Duration::from_nanos(500),
            jitter: Jitter::None,
        }
        .with_jitter(99);
        let mut calls = 0;
        let r: Result<u32, &str> = with_backoff(&p, |attempt| {
            calls += 1;
            if attempt < 3 {
                Err("flaky")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r, Ok(3));
        assert_eq!(calls, 4);
    }
}
