//! Bounded retry with exponential backoff.

use std::time::Duration;

/// How many times to attempt a flaky operation and how long to wait
/// between attempts (the delay doubles per retry, capped at
/// [`max_delay`](RetryPolicy::max_delay)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries). Clamped to at least 1.
    pub attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The delay to sleep after failed attempt `attempt` (0-based).
    pub fn delay_after(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.min(16);
        (self.base_delay * factor).min(self.max_delay)
    }
}

/// Runs `f` up to `policy.attempts` times, sleeping with exponential
/// backoff between failures. `f` receives the 0-based attempt index.
/// Returns the first success or the last error.
///
/// # Errors
///
/// Returns the error of the final attempt when every attempt fails.
pub fn with_backoff<T, E>(
    policy: &RetryPolicy,
    mut f: impl FnMut(u32) -> Result<T, E>,
) -> Result<T, E> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = Some(e);
                if attempt + 1 < attempts {
                    let d = policy.delay_after(attempt);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    #[test]
    fn succeeds_first_try_without_retrying() {
        let mut calls = 0;
        let r: Result<i32, &str> = with_backoff(&fast(), |_| {
            calls += 1;
            Ok(7)
        });
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_success() {
        let mut calls = 0;
        let r: Result<i32, &str> = with_backoff(&fast(), |attempt| {
            calls += 1;
            if attempt < 2 {
                Err("flaky")
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn gives_up_after_budget() {
        let mut calls = 0;
        let r: Result<(), String> = with_backoff(&fast(), |a| {
            calls += 1;
            Err(format!("attempt {a}"))
        });
        assert_eq!(r, Err("attempt 3".to_string()));
        assert_eq!(calls, 4);
    }

    #[test]
    fn delays_double_and_cap() {
        let p = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
        };
        assert_eq!(p.delay_after(0), Duration::from_millis(10));
        assert_eq!(p.delay_after(1), Duration::from_millis(20));
        assert_eq!(p.delay_after(2), Duration::from_millis(35)); // capped
        assert_eq!(p.delay_after(10), Duration::from_millis(35));
    }

    #[test]
    fn attempts_clamped_to_one() {
        let p = RetryPolicy {
            attempts: 0,
            ..fast()
        };
        let mut calls = 0;
        let _: Result<(), ()> = with_backoff(&p, |_| {
            calls += 1;
            Err(())
        });
        assert_eq!(calls, 1);
    }
}
