//! CRC-32 (IEEE 802.3 polynomial) — the checksum framing every journal
//! record, implemented in-tree because the workspace builds offline.

/// The reflected IEEE polynomial used by zlib, PNG, and Ethernet.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data` (IEEE, reflected, init/final-xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"small 16 cafebabe (ct 2 8)");
        let b = crc32(b"small 16 cafebabf (ct 2 8)");
        assert_ne!(a, b);
    }
}
