//! Property-style tests of the front end: the lexer/parser never panic
//! on arbitrary input, and printing a parsed formula re-parses to the
//! same tree (display/parse round trip).
//!
//! Inputs are drawn deterministically from `spl_numeric::rng` with fixed
//! seeds so every run exercises the same case set.

use spl_frontend::parser::{parse_formula, parse_program};
use spl_frontend::sexp::Sexp;
use spl_numeric::rng::Rng;

/// A random string over `alphabet` with length in `[0, max_len]`.
fn random_text(rng: &mut Rng, alphabet: &[char], max_len: u64) -> String {
    let len = rng.below(max_len + 1) as usize;
    (0..len).map(|_| *rng.pick(alphabet)).collect()
}

/// Random S-expressions built from the formula vocabulary.
fn random_sexp(rng: &mut Rng, depth: u32) -> Sexp {
    const SYMS: [&str; 7] = ["F", "I", "compose", "tensor", "direct-sum", "A", "myname"];
    if depth == 0 || rng.chance(0.4) {
        return if rng.chance(0.5) {
            Sexp::Int(rng.range(1, 99) as i64)
        } else {
            // Not auto-deref: inference needs `T = &str`, not `T = str`.
            #[allow(clippy::explicit_auto_deref)]
            let sym: &str = *rng.pick(&SYMS);
            Sexp::sym(sym)
        };
    }
    let n = rng.range(1, 3) as usize;
    Sexp::List((0..n).map(|_| random_sexp(rng, depth - 1)).collect())
}

#[test]
fn parser_never_panics_on_arbitrary_text() {
    // Printable ASCII plus whitespace and a few multibyte characters.
    let mut alphabet: Vec<char> = (' '..='~').collect();
    alphabet.extend(['\n', '\t', 'π', 'é', '中', '\u{0}']);
    for seed in 0..256u64 {
        let mut rng = Rng::new(0xAB_0000 + seed);
        let src = random_text(&mut rng, &alphabet, 200);
        // Any outcome is fine; panics are not.
        let _ = parse_program(&src);
        let _ = parse_formula(&src);
    }
}

#[test]
fn parser_never_panics_on_spl_shaped_text() {
    let alphabet: Vec<char> = "()[]abcdefghijklmnopqrstuvwxyz0123456789_ #;.$=+*/<>!&|,-"
        .chars()
        .collect();
    for seed in 0..256u64 {
        let mut rng = Rng::new(0x5B_0000 + seed);
        let src = random_text(&mut rng, &alphabet, 200);
        let _ = parse_program(&src);
    }
}

#[test]
fn display_parse_round_trip() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(0xD15B_0000 + seed);
        let s = random_sexp(&mut rng, 3);
        // Only lists are formulas; wrap atoms.
        let formula = match &s {
            Sexp::List(_) => s.clone(),
            other => Sexp::List(vec![Sexp::sym("F"), other.clone()]),
        };
        let printed = formula.to_string();
        match parse_formula(&printed) {
            Ok(back) => assert_eq!(back, formula, "seed {seed}"),
            Err(e) => panic!("printed form {printed} failed to parse: {e}"),
        }
    }
}

#[test]
fn directive_lines_round_trip() {
    let mut fixed = vec![
        "unroll on".to_string(),
        "unroll off".to_string(),
        "datatype real".to_string(),
        "datatype complex".to_string(),
        "codetype real".to_string(),
        "codetype complex".to_string(),
        "language c".to_string(),
        "language fortran".to_string(),
    ];
    let mut rng = Rng::new(0xD1_4EC7);
    let first: Vec<char> = ('a'..='z').collect();
    let rest: Vec<char> = ('a'..='z').chain('0'..='9').chain(['_']).collect();
    for _ in 0..24 {
        let name: String = std::iter::once(*rng.pick(&first))
            .chain((0..rng.below(9)).map(|_| *rng.pick(&rest)))
            .collect();
        fixed.push(format!("subname {name}"));
    }
    for directive in fixed {
        let src = format!("#{directive}\n(F 2)");
        let prog = parse_program(&src).unwrap();
        assert_eq!(prog.items.len(), 2, "directive {directive:?}");
    }
}
