//! Property tests of the front end: the lexer/parser never panic on
//! arbitrary input, and printing a parsed formula re-parses to the same
//! tree (display/parse round trip).

use proptest::prelude::*;

use spl_frontend::parser::{parse_formula, parse_program};
use spl_frontend::sexp::Sexp;

/// Random S-expressions built from the formula vocabulary.
fn sexp_strategy(depth: u32) -> BoxedStrategy<Sexp> {
    let leaf = prop_oneof![
        (1i64..100).prop_map(Sexp::Int),
        prop_oneof![
            Just("F"),
            Just("I"),
            Just("compose"),
            Just("tensor"),
            Just("direct-sum"),
            Just("A"),
            Just("myname"),
        ]
        .prop_map(|s| Sexp::sym(s)),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = sexp_strategy(depth - 1);
    prop_oneof![
        leaf,
        proptest::collection::vec(inner, 1..4).prop_map(Sexp::List),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(src in ".{0,200}") {
        // Any outcome is fine; panics are not.
        let _ = parse_program(&src);
        let _ = parse_formula(&src);
    }

    #[test]
    fn parser_never_panics_on_spl_shaped_text(
        src in r"[()\[\]a-z0-9_ #;.$=+*/<>!&|,-]{0,200}",
    ) {
        let _ = parse_program(&src);
    }

    #[test]
    fn display_parse_round_trip(s in sexp_strategy(3)) {
        // Only lists are formulas; wrap atoms.
        let formula = match &s {
            Sexp::List(_) => s.clone(),
            other => Sexp::List(vec![Sexp::sym("F"), other.clone()]),
        };
        let printed = formula.to_string();
        match parse_formula(&printed) {
            Ok(back) => prop_assert_eq!(back, formula),
            Err(e) => prop_assert!(false, "printed form {} failed to parse: {e}", printed),
        }
    }

    #[test]
    fn directive_lines_round_trip(name in "(subname [a-z][a-z0-9_]{0,8})|(unroll on)|(unroll off)|(datatype real)|(datatype complex)|(codetype real)|(codetype complex)|(language c)|(language fortran)") {
        let src = format!("#{name}\n(F 2)");
        let prog = parse_program(&src).unwrap();
        prop_assert_eq!(prog.items.len(), 2);
    }
}
