//! The generic S-expression layer.
//!
//! SPL formulas are represented at this level before being given meaning:
//! the template matcher (crate `spl-templates`) pattern-matches directly on
//! [`Sexp`] values, and the formula algebra (crate `spl-formula`) converts
//! them into typed matrix expressions.

use std::fmt;

use crate::scalar::ScalarExpr;

/// A plain complex value used by the front end (kept dependency-free; the
/// formula crate converts it into `spl_numeric::Complex`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complexish {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complexish {
    /// Creates a complex value.
    pub const fn new(re: f64, im: f64) -> Self {
        Complexish { re, im }
    }

    /// Creates a purely real value.
    pub const fn real(re: f64) -> Self {
        Complexish { re, im: 0.0 }
    }
}

/// A parsed S-expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Sexp {
    /// A parenthesized list: `(compose A B)`.
    List(Vec<Sexp>),
    /// A bare identifier: `compose`, `F`, `n_`, a `define`d name, ...
    Symbol(String),
    /// An integer literal (kept distinct from general scalars because
    /// parameterized matrices take integer parameters).
    Int(i64),
    /// A non-integer constant scalar expression (`1.23`, `sqrt(2)`,
    /// `(0.7,-0.7)`, ...).
    Scalar(ScalarExpr),
}

impl Sexp {
    /// Convenience constructor for a list.
    pub fn list(items: Vec<Sexp>) -> Self {
        Sexp::List(items)
    }

    /// Convenience constructor for a symbol.
    pub fn sym(s: &str) -> Self {
        Sexp::Symbol(s.to_string())
    }

    /// Returns the head symbol of a list, if any: `(compose ...)` →
    /// `Some("compose")`.
    pub fn head(&self) -> Option<&str> {
        match self {
            Sexp::List(items) => match items.first() {
                Some(Sexp::Symbol(s)) => Some(s),
                _ => None,
            },
            _ => None,
        }
    }

    /// Returns the integer value if this is an [`Sexp::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Sexp::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the list elements if this is an [`Sexp::List`].
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::List(items) => Some(items),
            _ => None,
        }
    }

    /// Substitutes every occurrence of symbol `name` by `value`.
    ///
    /// Used to inline `define`d formulas before template matching
    /// (pattern variables cannot match undefined symbols — paper
    /// Section 3.2).
    pub fn substitute(&self, name: &str, value: &Sexp) -> Sexp {
        match self {
            Sexp::Symbol(s) if s == name => value.clone(),
            Sexp::List(items) => {
                Sexp::List(items.iter().map(|i| i.substitute(name, value)).collect())
            }
            other => other.clone(),
        }
    }

    /// Counts the nodes in the tree (used for size heuristics in tests).
    pub fn node_count(&self) -> usize {
        match self {
            Sexp::List(items) => 1 + items.iter().map(Sexp::node_count).sum::<usize>(),
            _ => 1,
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Sexp::Symbol(s) => write!(f, "{s}"),
            Sexp::Int(v) => write!(f, "{v}"),
            Sexp::Scalar(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_of_list() {
        let e = Sexp::list(vec![Sexp::sym("compose"), Sexp::sym("A")]);
        assert_eq!(e.head(), Some("compose"));
        assert_eq!(Sexp::sym("x").head(), None);
        assert_eq!(Sexp::List(vec![Sexp::Int(1)]).head(), None);
    }

    #[test]
    fn substitute_replaces_symbols() {
        let f4 = Sexp::list(vec![Sexp::sym("F"), Sexp::Int(4)]);
        let e = Sexp::list(vec![Sexp::sym("compose"), Sexp::sym("F4"), Sexp::sym("F4")]);
        let r = e.substitute("F4", &f4);
        assert_eq!(r.to_string(), "(compose (F 4) (F 4))");
    }

    #[test]
    fn display_round_trips_simple_formulas() {
        let e = Sexp::list(vec![
            Sexp::sym("tensor"),
            Sexp::list(vec![Sexp::sym("I"), Sexp::Int(2)]),
            Sexp::list(vec![Sexp::sym("F"), Sexp::Int(2)]),
        ]);
        assert_eq!(e.to_string(), "(tensor (I 2) (F 2))");
    }

    #[test]
    fn node_count() {
        let e = Sexp::list(vec![Sexp::sym("F"), Sexp::Int(2)]);
        assert_eq!(e.node_count(), 3);
    }
}
