//! The SPL lexer.
//!
//! Notable rules, all taken from the paper's description of the language:
//!
//! * `;` starts a comment running to the end of the line.
//! * A line whose first non-blank character is `#` is a compiler directive;
//!   the directive name and the rest of the line are captured verbatim.
//! * `$`-prefixed names are the template i-code variables
//!   (`$in`, `$out`, `$t0`, `$f0`, `$r0`, `$i0`, `$in_stride`, ...).
//! * Identifiers may contain `-` (as in `direct-sum`); a `-` continues an
//!   identifier only when it is followed by a letter **and** the identifier
//!   so far does not end with `_` (so the pattern-variable subtraction
//!   `m_-n_` lexes as three tokens).

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Token, TokenKind};

/// Lexes a complete SPL source string into tokens.
///
/// # Errors
///
/// Returns a [`ParseError`] for unknown characters or malformed numbers.
///
/// # Examples
///
/// ```
/// use spl_frontend::lexer::lex;
/// let toks = lex("(F 2) ; the 2-point DFT").unwrap();
/// assert_eq!(toks.len(), 4); // ( F 2 )
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    at_line_start: bool,
    spaced: bool,
    tokens: Vec<Token>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            at_line_start: true,
            spaced: true,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.at_line_start = true;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind, line: u32, col: u32) {
        let spaced = self.spaced;
        self.tokens.push(Token {
            kind,
            line,
            col,
            spaced,
        });
        self.spaced = false;
        self.at_line_start = false;
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        while let Some(c) = self.peek() {
            if c == '\n' || c == '\r' || c == ' ' || c == '\t' {
                self.bump();
                self.spaced = true;
                continue;
            }
            if c == ';' {
                while let Some(c) = self.peek() {
                    if c == '\n' {
                        break;
                    }
                    self.bump();
                }
                self.spaced = true;
                continue;
            }
            if c == '#' && self.at_line_start {
                self.lex_directive()?;
                continue;
            }
            let (line, col) = (self.line, self.col);
            match c {
                '(' => {
                    self.bump();
                    self.push(TokenKind::LParen, line, col);
                }
                ')' => {
                    self.bump();
                    self.push(TokenKind::RParen, line, col);
                }
                '[' => {
                    self.bump();
                    self.push(TokenKind::LBracket, line, col);
                }
                ']' => {
                    self.bump();
                    self.push(TokenKind::RBracket, line, col);
                }
                ',' => {
                    self.bump();
                    self.push(TokenKind::Comma, line, col);
                }
                '+' => {
                    self.bump();
                    self.push(TokenKind::Plus, line, col);
                }
                '-' => {
                    self.bump();
                    self.push(TokenKind::Minus, line, col);
                }
                '*' => {
                    self.bump();
                    self.push(TokenKind::Star, line, col);
                }
                '/' => {
                    self.bump();
                    self.push(TokenKind::Slash, line, col);
                }
                '%' => {
                    self.bump();
                    self.push(TokenKind::Percent, line, col);
                }
                '.' => {
                    // A leading dot starting a number (`.5`) is not used in
                    // the paper's programs; treat `.` as property access.
                    self.bump();
                    self.push(TokenKind::Dot, line, col);
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::EqEq, line, col);
                    } else {
                        self.push(TokenKind::Assign, line, col);
                    }
                }
                '!' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::NotEq, line, col);
                    } else {
                        self.push(TokenKind::Not, line, col);
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Le, line, col);
                    } else {
                        self.push(TokenKind::Lt, line, col);
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        self.push(TokenKind::Ge, line, col);
                    } else {
                        self.push(TokenKind::Gt, line, col);
                    }
                }
                '&' => {
                    self.bump();
                    if self.peek() == Some('&') {
                        self.bump();
                        self.push(TokenKind::AndAnd, line, col);
                    } else {
                        return Err(self.err(ParseErrorKind::UnexpectedChar('&')));
                    }
                }
                '|' => {
                    self.bump();
                    if self.peek() == Some('|') {
                        self.bump();
                        self.push(TokenKind::OrOr, line, col);
                    } else {
                        return Err(self.err(ParseErrorKind::UnexpectedChar('|')));
                    }
                }
                '$' => {
                    self.bump();
                    let mut name = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if name.is_empty() {
                        return Err(self.err(ParseErrorKind::UnexpectedChar('$')));
                    }
                    self.push(TokenKind::Dollar(name), line, col);
                }
                c if c.is_ascii_digit() => self.lex_number(line, col)?,
                c if c.is_ascii_alphabetic() || c == '_' => self.lex_symbol(line, col),
                other => return Err(self.err(ParseErrorKind::UnexpectedChar(other))),
            }
        }
        Ok(self.tokens)
    }

    fn lex_number(&mut self, line: u32, col: u32) -> Result<(), ParseError> {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                is_float = true;
                text.push(c);
                self.bump();
            } else if (c == 'e' || c == 'E')
                && self
                    .peek2()
                    .is_some_and(|d| d.is_ascii_digit() || d == '+' || d == '-')
            {
                is_float = true;
                text.push(c);
                self.bump();
                // optional sign
                if let Some(s) = self.peek() {
                    if s == '+' || s == '-' {
                        text.push(s);
                        self.bump();
                    }
                }
            } else {
                break;
            }
        }
        let kind = if is_float {
            TokenKind::Float(
                text.parse::<f64>()
                    .map_err(|_| self.err(ParseErrorKind::BadNumber(text.clone())))?,
            )
        } else {
            TokenKind::Int(
                text.parse::<i64>()
                    .map_err(|_| self.err(ParseErrorKind::BadNumber(text.clone())))?,
            )
        };
        self.push(kind, line, col);
        Ok(())
    }

    fn lex_symbol(&mut self, line: u32, col: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else if c == '-'
                && !name.ends_with('_')
                && self.peek2().is_some_and(|d| d.is_ascii_alphabetic())
            {
                // `direct-sum` stays one symbol, `m_-n_` splits.
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Symbol(name), line, col);
    }

    fn lex_directive(&mut self) -> Result<(), ParseError> {
        let (line, col) = (self.line, self.col);
        self.bump(); // '#'
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.err(ParseErrorKind::BadDirective("missing name".into())));
        }
        let mut rest = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            rest.push(c);
            self.bump();
        }
        // Strip a trailing comment from the directive argument.
        let rest = match rest.find(';') {
            Some(i) => rest[..i].trim().to_string(),
            None => rest.trim().to_string(),
        };
        self.push(TokenKind::Directive(name, rest), line, col);
        self.spaced = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as K;

    fn kinds(src: &str) -> Vec<K> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn parens_and_symbols() {
        assert_eq!(
            kinds("(compose A B)"),
            vec![
                K::LParen,
                K::Symbol("compose".into()),
                K::Symbol("A".into()),
                K::Symbol("B".into()),
                K::RParen
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("1 ; two three\n2"), vec![K::Int(1), K::Int(2)]);
    }

    #[test]
    fn direct_sum_is_one_symbol() {
        assert_eq!(kinds("direct-sum"), vec![K::Symbol("direct-sum".into())]);
    }

    #[test]
    fn pattern_var_subtraction_splits() {
        assert_eq!(
            kinds("m_-n_"),
            vec![K::Symbol("m_".into()), K::Minus, K::Symbol("n_".into())]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("12 1.23 2e3 1.5e-2"),
            vec![K::Int(12), K::Float(1.23), K::Float(2e3), K::Float(1.5e-2)]
        );
    }

    #[test]
    fn number_then_close_paren() {
        assert_eq!(
            kinds("(I 2)"),
            vec![K::LParen, K::Symbol("I".into()), K::Int(2), K::RParen]
        );
    }

    #[test]
    fn dollar_variables() {
        assert_eq!(
            kinds("$in $out $t0 $in_stride"),
            vec![
                K::Dollar("in".into()),
                K::Dollar("out".into()),
                K::Dollar("t0".into()),
                K::Dollar("in_stride".into())
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("== != <= >= < > && || !"),
            vec![
                K::EqEq,
                K::NotEq,
                K::Le,
                K::Ge,
                K::Lt,
                K::Gt,
                K::AndAnd,
                K::OrOr,
                K::Not
            ]
        );
    }

    #[test]
    fn directive_line() {
        assert_eq!(
            kinds("#subname fft16 ; name\n(F 2)"),
            vec![
                K::Directive("subname".into(), "fft16".into()),
                K::LParen,
                K::Symbol("F".into()),
                K::Int(2),
                K::RParen
            ]
        );
    }

    #[test]
    fn hash_mid_line_is_error() {
        assert!(lex("(F 2) #foo").is_err());
    }

    #[test]
    fn spacing_flag_tracks_whitespace() {
        let toks = lex("1 -1 1-1").unwrap();
        // tokens: 1, -, 1, 1, -, 1
        assert!(toks[0].spaced);
        assert!(toks[1].spaced); // "-" after space
        assert!(!toks[2].spaced); // "1" directly after "-"
        assert!(toks[3].spaced);
        assert!(!toks[4].spaced); // "-" glued to previous "1"
        assert!(!toks[5].spaced);
    }

    #[test]
    fn property_access() {
        assert_eq!(
            kinds("A_.in_size"),
            vec![K::Symbol("A_".into()), K::Dot, K::Symbol("in_size".into())]
        );
    }

    #[test]
    fn unknown_char_reports_position() {
        let err = lex("(F 2)\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
    }
}
