//! Parse-error reporting.

use std::error::Error;
use std::fmt;

/// Why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character the lexer does not understand.
    UnexpectedChar(char),
    /// A numeric literal that could not be parsed.
    BadNumber(String),
    /// A directive with an unknown name or malformed argument.
    BadDirective(String),
    /// The parser met a token it did not expect.
    UnexpectedToken(String),
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A malformed `define`, `template`, or other special form.
    BadForm(String),
    /// Input exceeded a configured resource limit (e.g. nesting depth).
    LimitExceeded(String),
}

/// An error produced by the SPL lexer or parser, with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The failure category.
    pub kind: ParseErrorKind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl ParseError {
    /// Creates an error at the given position.
    pub fn new(kind: ParseErrorKind, line: u32, col: u32) -> Self {
        ParseError { kind, line, col }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: ", self.line, self.col)?;
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseErrorKind::BadNumber(s) => write!(f, "malformed number {s:?}"),
            ParseErrorKind::BadDirective(s) => write!(f, "bad directive: {s}"),
            ParseErrorKind::UnexpectedToken(s) => write!(f, "unexpected token {s}"),
            ParseErrorKind::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseErrorKind::BadForm(s) => write!(f, "malformed form: {s}"),
            ParseErrorKind::LimitExceeded(s) => write!(f, "limit exceeded: {s}"),
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(ParseErrorKind::UnexpectedEof, 3, 7);
        assert_eq!(e.to_string(), "3:7: unexpected end of input");
    }

    #[test]
    fn display_char() {
        let e = ParseError::new(ParseErrorKind::UnexpectedChar('@'), 1, 1);
        assert!(e.to_string().contains("'@'"));
    }
}
