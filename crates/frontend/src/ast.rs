//! Typed AST for SPL programs: items, directives, and the template
//! mini-language (patterns, conditions, i-code bodies).

use std::fmt;

use crate::sexp::Sexp;

/// A complete SPL program: an ordered sequence of items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The items in source order.
    pub items: Vec<Item>,
}

/// One top-level item of an SPL program.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `(define name formula)` — binds a name to a formula for reuse.
    Define {
        /// The bound name.
        name: String,
        /// The formula body (unresolved; `define`s may reference earlier
        /// `define`s).
        body: Sexp,
    },
    /// A template definition (paper Section 3.2).
    Template(TemplateDef),
    /// A formula to compile, with the directive state in effect at its
    /// position and the unroll state captured for each `define` it uses.
    Formula {
        /// The formula.
        sexp: Sexp,
        /// Directive snapshot.
        directives: DirectiveState,
    },
    /// A bare directive line (also folded into [`DirectiveState`] by the
    /// parser; kept for faithful program reconstruction).
    Directive(Directive),
}

/// The data type of the vectors a formula operates on (`#datatype`), and of
/// the generated code's scalars (`#codetype`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// Real double-precision data.
    Real,
    /// Complex double-precision data.
    #[default]
    Complex,
}

/// The target language of the generated code (`#language`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Language {
    /// Fortran 77 style output (the paper's default).
    #[default]
    Fortran,
    /// C output.
    C,
}

/// The `#unroll` switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Unroll {
    /// `#unroll on`: fully unroll loops in the affected formulas.
    On,
    /// `#unroll off`: keep loops.
    #[default]
    Off,
}

/// A single compiler directive.
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `#subname <ident>` — the name of the generated subroutine.
    Subname(String),
    /// `#unroll on|off`.
    Unroll(Unroll),
    /// `#datatype real|complex`.
    Datatype(DataType),
    /// `#codetype real|complex`.
    Codetype(DataType),
    /// `#language fortran|c`.
    Language(Language),
}

/// The accumulated directive state at a program point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DirectiveState {
    /// Subroutine name for the next formula (consumed by it).
    pub subname: Option<String>,
    /// Current unroll switch.
    pub unroll: Unroll,
    /// Current `#datatype`.
    pub datatype: DataType,
    /// Current `#codetype`.
    pub codetype: DataType,
    /// Current `#language`.
    pub language: Language,
}

impl DirectiveState {
    /// Applies one directive, returning the updated state.
    pub fn apply(&mut self, d: &Directive) {
        match d {
            Directive::Subname(s) => self.subname = Some(s.clone()),
            Directive::Unroll(u) => self.unroll = *u,
            Directive::Datatype(t) => self.datatype = *t,
            Directive::Codetype(t) => self.codetype = *t,
            Directive::Language(l) => self.language = *l,
        }
    }
}

/// A template definition: pattern, optional condition, i-code body.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateDef {
    /// The pattern, as an S-expression containing pattern variables
    /// (symbols ending in `_`).
    pub pattern: Sexp,
    /// The optional C-style boolean condition.
    pub condition: Option<CondExpr>,
    /// The i-code statements.
    pub body: Vec<TemplateStmt>,
}

/// A statement in a template's i-code body.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateStmt {
    /// `do $i0 = lo, hi` — a Fortran-style loop header (inclusive bounds).
    Do {
        /// Loop variable name (`i0`, `i1`, ...).
        var: String,
        /// Lower bound.
        lo: TExpr,
        /// Upper bound (inclusive).
        hi: TExpr,
    },
    /// `end` — closes the innermost `do`.
    End,
    /// `lhs = expr`.
    Assign {
        /// The assigned location.
        lhs: TLval,
        /// The value expression (flattened into four-tuples downstream).
        rhs: TExpr,
    },
    /// `A_($in, $t0, 0, 0, 1, 1)` — expand the sub-formula bound to a
    /// formula pattern variable with explicit in/out vectors, offsets, and
    /// strides (paper Section 3.2).
    Call {
        /// The formula pattern variable (stored without trailing `_`
        /// normalization; e.g. `A_`).
        var: String,
        /// The six arguments: in, out, in_offset, out_offset, in_stride,
        /// out_stride. Vector arguments are `TExpr::Var` of `$in`, `$out`
        /// or `$t<k>`.
        args: Vec<TExpr>,
    },
}

/// An assignable location in template i-code.
#[derive(Debug, Clone, PartialEq)]
pub enum TLval {
    /// A scalar variable: `$f0`, `$r0`.
    Scalar(String),
    /// A vector element: `$out(expr)`, `$t0(expr)`.
    VecElem(String, Box<TExpr>),
}

/// The size properties accessible on formula pattern variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeProp {
    /// `X_.in_size` — the input-vector length of the matched sub-formula.
    InSize,
    /// `X_.out_size` — the output-vector length.
    OutSize,
}

/// Unary operators in template expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TUnOp {
    /// Arithmetic negation.
    Neg,
}

/// Binary operators in template expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// An expression in template i-code (used for both integer expressions —
/// loop bounds, subscripts — and floating/complex value expressions; the
/// expander type-checks by context).
#[derive(Debug, Clone, PartialEq)]
pub enum TExpr {
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// A complex literal `(re,im)` (components must be constant).
    Pair(f64, f64),
    /// An integer pattern variable (`n_`).
    PatVar(String),
    /// A size property of a formula pattern variable (`A_.in_size`).
    Prop(String, SizeProp),
    /// A `$`-variable: `$f0`, `$r0`, `$i0`, `$in_stride`, `$out_offset`,
    /// `$in_size`, `$out_size` (name stored without `$`).
    Var(String),
    /// A vector element read: `$in(expr)`, `$t0(expr)`.
    VecElem(String, Box<TExpr>),
    /// An intrinsic invocation: `W(n_ $r0)`.
    Intrinsic(String, Vec<TExpr>),
    /// Unary operation.
    Un(TUnOp, Box<TExpr>),
    /// Binary operation.
    Bin(TBinOp, Box<TExpr>, Box<TExpr>),
}

/// Comparison operators in template conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A C-style boolean condition attached to a template.
#[derive(Debug, Clone, PartialEq)]
pub enum CondExpr {
    /// A comparison between two integer expressions.
    Cmp(CmpOp, TExpr, TExpr),
    /// Logical conjunction.
    And(Box<CondExpr>, Box<CondExpr>),
    /// Logical disjunction.
    Or(Box<CondExpr>, Box<CondExpr>),
    /// Logical negation.
    Not(Box<CondExpr>),
}

impl fmt::Display for TExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TExpr::Int(v) => write!(f, "{v}"),
            TExpr::Float(v) => write!(f, "{v:?}"),
            TExpr::Pair(re, im) => write!(f, "({re:?},{im:?})"),
            TExpr::PatVar(s) => write!(f, "{s}"),
            TExpr::Prop(s, SizeProp::InSize) => write!(f, "{s}.in_size"),
            TExpr::Prop(s, SizeProp::OutSize) => write!(f, "{s}.out_size"),
            TExpr::Var(s) => write!(f, "${s}"),
            TExpr::VecElem(s, e) => write!(f, "${s}({e})"),
            TExpr::Intrinsic(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            TExpr::Un(TUnOp::Neg, e) => write!(f, "(-{e})"),
            TExpr::Bin(op, a, b) => {
                let sym = match op {
                    TBinOp::Add => "+",
                    TBinOp::Sub => "-",
                    TBinOp::Mul => "*",
                    TBinOp::Div => "/",
                    TBinOp::Mod => "%",
                };
                write!(f, "({a}{sym}{b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_state_applies() {
        let mut s = DirectiveState::default();
        s.apply(&Directive::Subname("fft16".into()));
        s.apply(&Directive::Unroll(Unroll::On));
        s.apply(&Directive::Datatype(DataType::Real));
        s.apply(&Directive::Language(Language::C));
        assert_eq!(s.subname.as_deref(), Some("fft16"));
        assert_eq!(s.unroll, Unroll::On);
        assert_eq!(s.datatype, DataType::Real);
        assert_eq!(s.language, Language::C);
    }

    #[test]
    fn texpr_display() {
        let e = TExpr::Bin(
            TBinOp::Mul,
            Box::new(TExpr::Int(4)),
            Box::new(TExpr::Var("i0".into())),
        );
        assert_eq!(e.to_string(), "(4*$i0)");
        let w = TExpr::Intrinsic(
            "W".into(),
            vec![TExpr::PatVar("n_".into()), TExpr::Var("r0".into())],
        );
        assert_eq!(w.to_string(), "W(n_ $r0)");
    }

    #[test]
    fn default_directives_match_paper() {
        let s = DirectiveState::default();
        assert_eq!(s.datatype, DataType::Complex);
        assert_eq!(s.language, Language::Fortran);
        assert_eq!(s.unroll, Unroll::Off);
    }
}
