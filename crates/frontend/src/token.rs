//! Token definitions for the SPL lexer.

use std::fmt;

/// A lexical token together with source position and spacing information.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the first character.
    pub col: u32,
    /// Whether whitespace (or a comment) immediately precedes this token.
    ///
    /// SPL scalar expressions are whitespace-sensitive: `(diagonal (1 -1))`
    /// has two elements, while `(diagonal (1-1))` would be the single
    /// element `0`. The parser uses this flag to decide whether an infix
    /// operator continues the current expression.
    pub spaced: bool,
}

/// The kinds of token the SPL lexer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[` — opens a template condition.
    LBracket,
    /// `]`
    RBracket,
    /// `,` — separates the components of a complex literal or call args.
    Comma,
    /// An identifier: `compose`, `F`, `n_`, `direct-sum`, `pi`, `do`, ...
    Symbol(String),
    /// A `$`-variable: `$in`, `$out`, `$t0`, `$f1`, `$r2`, `$i0`,
    /// `$in_stride`, ... (stored without the leading `$`).
    Dollar(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A compiler directive line: name (without `#`) and its argument text.
    Directive(String, String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `.` — property access in template conditions (`A_.in_size`).
    Dot,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBracket => write!(f, "["),
            RBracket => write!(f, "]"),
            Comma => write!(f, ","),
            Symbol(s) => write!(f, "{s}"),
            Dollar(s) => write!(f, "${s}"),
            Int(v) => write!(f, "{v}"),
            Float(v) => write!(f, "{v}"),
            Directive(name, rest) => write!(f, "#{name} {rest}"),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Assign => write!(f, "="),
            EqEq => write!(f, "=="),
            NotEq => write!(f, "!="),
            Lt => write!(f, "<"),
            Le => write!(f, "<="),
            Gt => write!(f, ">"),
            Ge => write!(f, ">="),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Not => write!(f, "!"),
            Dot => write!(f, "."),
        }
    }
}

impl TokenKind {
    /// Returns `true` for the binary arithmetic operators that may continue
    /// a scalar expression (`+ - * / %`).
    pub fn is_arith_op(&self) -> bool {
        matches!(
            self,
            TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::Star
                | TokenKind::Slash
                | TokenKind::Percent
        )
    }
}
