//! The SPL parser: tokens → [`Program`].
//!
//! Three sub-grammars share one token stream:
//!
//! 1. **Formulas** — S-expressions whose atoms may be constant scalar
//!    expressions. Scalar expressions are whitespace-sensitive: an infix
//!    operator continues the expression only when written without a
//!    preceding space (`(diagonal (1 -1))` vs `(diagonal (1-1))`).
//! 2. **Template conditions** — C-style boolean expressions in `[...]`.
//! 3. **Template bodies** — Fortran-style statements (`do`/`end`,
//!    assignments, sub-formula calls) over `$`-variables; here operators
//!    may be freely spaced and statement boundaries are recovered from the
//!    grammar.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::lex;
use crate::scalar::{ScalarBinOp, ScalarExpr};
use crate::sexp::Sexp;
use crate::token::{Token, TokenKind};

/// Names accepted as scalar functions inside formulas.
const SCALAR_FUNCTIONS: &[&str] = &["sqrt", "sin", "cos", "tan", "exp", "log", "w", "W"];

/// Default cap on expression nesting depth.
///
/// The parser recurses once per nesting level, so machine-generated
/// formulas with thousands of open parens would otherwise overflow the
/// stack. 200 is far beyond any hand- or search-written formula while
/// keeping worst-case recursion inside a 2 MiB (spawned-thread) stack
/// even in debug builds.
pub const DEFAULT_MAX_DEPTH: usize = 200;

/// Parses a complete SPL program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its source position.
///
/// # Examples
///
/// ```
/// use spl_frontend::parse_program;
/// let p = parse_program(
///     "(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))\n\
///      #subname fft4\n\
///      F4",
/// ).unwrap();
/// assert_eq!(p.items.len(), 3);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parse_program_with_depth(src, DEFAULT_MAX_DEPTH)
}

/// Like [`parse_program`], but with an explicit nesting-depth cap.
///
/// # Errors
///
/// Returns [`ParseErrorKind::LimitExceeded`] when the input nests more
/// than `max_depth` levels, in addition to ordinary parse errors.
pub fn parse_program_with_depth(src: &str, max_depth: usize) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser::with_depth(tokens, max_depth).program()
}

/// Parses a single formula (no directives, defines, or templates).
///
/// # Errors
///
/// Returns an error if the source is not exactly one formula.
pub fn parse_formula(src: &str) -> Result<Sexp, ParseError> {
    parse_formula_with_depth(src, DEFAULT_MAX_DEPTH)
}

/// Like [`parse_formula`], but with an explicit nesting-depth cap.
///
/// # Errors
///
/// Returns [`ParseErrorKind::LimitExceeded`] when the input nests more
/// than `max_depth` levels, in addition to ordinary parse errors.
pub fn parse_formula_with_depth(src: &str, max_depth: usize) -> Result<Sexp, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::with_depth(tokens, max_depth);
    let s = p.sexp()?;
    if !p.at_eof() {
        return Err(p.err_here(ParseErrorKind::UnexpectedToken(
            "trailing input after formula".into(),
        )));
    }
    Ok(s)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser {
    fn with_depth(tokens: Vec<Token>, max_depth: usize) -> Self {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
            max_depth,
        }
    }

    /// Enters one nesting level; callers must pair with [`Parser::ascend`].
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err_here(ParseErrorKind::LimitExceeded(format!(
                "nesting depth exceeds {} (use --max-depth to raise)",
                self.max_depth
            ))));
        }
        Ok(())
    }

    fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_kind(&self) -> Option<&TokenKind> {
        self.peek().map(|t| &t.kind)
    }

    fn peek_at(&self, k: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + k).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, kind: ParseErrorKind) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::new(kind, t.line, t.col),
            None => {
                let (line, col) = self
                    .tokens
                    .last()
                    .map(|t| (t.line, t.col))
                    .unwrap_or((1, 1));
                ParseError::new(kind, line, col)
            }
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => self
                .bump()
                .ok_or_else(|| self.err_here(ParseErrorKind::UnexpectedEof)),
            Some(t) => Err(ParseError::new(
                ParseErrorKind::UnexpectedToken(format!("{} (expected {})", t.kind, kind)),
                t.line,
                t.col,
            )),
            None => Err(self.err_here(ParseErrorKind::UnexpectedEof)),
        }
    }

    // ------------------------------------------------------------------
    // Program structure
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut items = Vec::new();
        let mut state = DirectiveState::default();
        while let Some(tok) = self.peek() {
            match &tok.kind {
                TokenKind::Directive(_, _) => {
                    let d = self.directive()?;
                    state.apply(&d);
                    items.push(Item::Directive(d));
                }
                TokenKind::LParen
                    if self.peek_at(1) == Some(&TokenKind::Symbol("define".into())) =>
                {
                    self.bump(); // (
                    self.bump(); // define
                    let name = match self.bump() {
                        Some(Token {
                            kind: TokenKind::Symbol(s),
                            ..
                        }) => s,
                        _ => {
                            return Err(self.err_here(ParseErrorKind::BadForm(
                                "define requires a name".into(),
                            )))
                        }
                    };
                    let body = self.sexp()?;
                    self.expect(&TokenKind::RParen)?;
                    items.push(Item::Define { name, body });
                }
                TokenKind::LParen
                    if self.peek_at(1) == Some(&TokenKind::Symbol("template".into())) =>
                {
                    let t = self.template()?;
                    items.push(Item::Template(t));
                }
                _ => {
                    let sexp = self.sexp()?;
                    let directives = state.clone();
                    state.subname = None; // consumed by this formula
                    items.push(Item::Formula { sexp, directives });
                }
            }
        }
        Ok(Program { items })
    }

    fn directive(&mut self) -> Result<Directive, ParseError> {
        let tok = self
            .bump()
            .ok_or_else(|| self.err_here(ParseErrorKind::UnexpectedEof))?;
        let (name, rest) = match tok.kind {
            TokenKind::Directive(n, r) => (n, r),
            other => {
                return Err(ParseError::new(
                    ParseErrorKind::UnexpectedToken(format!("{other} (expected a directive)")),
                    tok.line,
                    tok.col,
                ))
            }
        };
        let bad = |msg: &str| {
            Err(ParseError::new(
                ParseErrorKind::BadDirective(format!("#{name}: {msg}")),
                tok.line,
                tok.col,
            ))
        };
        match name.as_str() {
            "subname" => {
                if rest.is_empty() || !rest.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return bad("expected an identifier");
                }
                Ok(Directive::Subname(rest))
            }
            "unroll" => match rest.as_str() {
                "on" => Ok(Directive::Unroll(Unroll::On)),
                "off" => Ok(Directive::Unroll(Unroll::Off)),
                _ => bad("expected on or off"),
            },
            "datatype" => match rest.as_str() {
                "real" => Ok(Directive::Datatype(DataType::Real)),
                "complex" => Ok(Directive::Datatype(DataType::Complex)),
                _ => bad("expected real or complex"),
            },
            "codetype" => match rest.as_str() {
                "real" => Ok(Directive::Codetype(DataType::Real)),
                "complex" => Ok(Directive::Codetype(DataType::Complex)),
                _ => bad("expected real or complex"),
            },
            "language" => match rest.as_str() {
                "fortran" => Ok(Directive::Language(Language::Fortran)),
                "c" => Ok(Directive::Language(Language::C)),
                _ => bad("expected fortran or c"),
            },
            _ => bad("unknown directive"),
        }
    }

    // ------------------------------------------------------------------
    // Formulas (S-expressions with scalar atoms)
    // ------------------------------------------------------------------

    fn sexp(&mut self) -> Result<Sexp, ParseError> {
        self.descend()?;
        let r = self.sexp_inner();
        self.ascend();
        r
    }

    fn sexp_inner(&mut self) -> Result<Sexp, ParseError> {
        match self.peek_kind() {
            Some(TokenKind::LParen) => {
                // Try a complex-literal pair first: `(expr , expr)`.
                let save = self.pos;
                if let Ok(pair) = self.try_complex_pair() {
                    return Ok(pair);
                }
                self.pos = save;
                self.bump(); // (
                let mut items = Vec::new();
                loop {
                    match self.peek_kind() {
                        Some(TokenKind::RParen) => {
                            self.bump();
                            return Ok(Sexp::List(items));
                        }
                        Some(_) => items.push(self.sexp()?),
                        None => return Err(self.err_here(ParseErrorKind::UnexpectedEof)),
                    }
                }
            }
            Some(_) => self.atom(),
            None => Err(self.err_here(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn try_complex_pair(&mut self) -> Result<Sexp, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let re = self.scalar_expr(true)?;
        self.expect(&TokenKind::Comma)?;
        let im = self.scalar_expr(true)?;
        self.expect(&TokenKind::RParen)?;
        Ok(Sexp::Scalar(ScalarExpr::Pair(Box::new(re), Box::new(im))))
    }

    /// Parses an atom: either a symbol or a constant scalar expression.
    fn atom(&mut self) -> Result<Sexp, ParseError> {
        // A bare symbol that is not `pi` and not a function call is a
        // formula reference; anything else is a scalar expression.
        if let Some(TokenKind::Symbol(s)) = self.peek_kind() {
            let is_fn_call = SCALAR_FUNCTIONS.contains(&s.as_str())
                && self.peek_at(1) == Some(&TokenKind::LParen)
                && self.tokens.get(self.pos + 1).is_some_and(|t| !t.spaced);
            if s != "pi" && !is_fn_call {
                let name = s.clone();
                self.bump();
                return Ok(Sexp::Symbol(name));
            }
        }
        let start = self.pos;
        let e = self.scalar_expr(false)?;
        match e {
            ScalarExpr::Int(v) => Ok(Sexp::Int(v)),
            other => {
                // Fold `-3` to an integer atom as well.
                if let ScalarExpr::Neg(inner) = &other {
                    if let ScalarExpr::Int(v) = **inner {
                        return Ok(Sexp::Int(-v));
                    }
                }
                let _ = start;
                Ok(Sexp::Scalar(other))
            }
        }
    }

    /// Parses a constant scalar expression.
    ///
    /// With `spaced_ops = false` (formula context) an infix operator only
    /// continues the expression if it is written without preceding
    /// whitespace; with `true` (inside a complex pair) spacing is free.
    fn scalar_expr(&mut self, spaced_ops: bool) -> Result<ScalarExpr, ParseError> {
        self.scalar_additive(spaced_ops)
    }

    fn op_continues(&self, spaced_ops: bool) -> bool {
        match self.peek() {
            Some(t) => t.kind.is_arith_op() && (spaced_ops || !t.spaced),
            None => false,
        }
    }

    fn scalar_additive(&mut self, spaced_ops: bool) -> Result<ScalarExpr, ParseError> {
        let mut lhs = self.scalar_multiplicative(spaced_ops)?;
        while self.op_continues(spaced_ops) {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => ScalarBinOp::Add,
                Some(TokenKind::Minus) => ScalarBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.scalar_multiplicative(spaced_ops)?;
            lhs = ScalarExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn scalar_multiplicative(&mut self, spaced_ops: bool) -> Result<ScalarExpr, ParseError> {
        let mut lhs = self.scalar_primary(spaced_ops)?;
        while self.op_continues(spaced_ops) {
            let op = match self.peek_kind() {
                Some(TokenKind::Star) => ScalarBinOp::Mul,
                Some(TokenKind::Slash) => ScalarBinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.scalar_primary(spaced_ops)?;
            lhs = ScalarExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    #[allow(clippy::only_used_in_recursion)] // kept for grammar symmetry
    fn scalar_primary(&mut self, spaced_ops: bool) -> Result<ScalarExpr, ParseError> {
        self.descend()?;
        let r = self.scalar_primary_inner(spaced_ops);
        self.ascend();
        r
    }

    fn scalar_primary_inner(&mut self, spaced_ops: bool) -> Result<ScalarExpr, ParseError> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Int(v)) => {
                self.bump();
                Ok(ScalarExpr::Int(v))
            }
            Some(TokenKind::Float(v)) => {
                self.bump();
                Ok(ScalarExpr::Float(v))
            }
            Some(TokenKind::Minus) => {
                self.bump();
                let inner = self.scalar_primary(spaced_ops)?;
                Ok(ScalarExpr::Neg(Box::new(inner)))
            }
            Some(TokenKind::Symbol(s)) if s == "pi" => {
                self.bump();
                Ok(ScalarExpr::Pi)
            }
            Some(TokenKind::Symbol(s)) if SCALAR_FUNCTIONS.contains(&s.as_str()) => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                loop {
                    match self.peek_kind() {
                        Some(TokenKind::RParen) => {
                            self.bump();
                            break;
                        }
                        Some(TokenKind::Comma) => {
                            self.bump();
                        }
                        Some(_) => args.push(self.scalar_expr(true)?),
                        None => return Err(self.err_here(ParseErrorKind::UnexpectedEof)),
                    }
                }
                Ok(ScalarExpr::Call(s, args))
            }
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.scalar_expr(true)?;
                if self.peek_kind() == Some(&TokenKind::Comma) {
                    self.bump();
                    let im = self.scalar_expr(true)?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(ScalarExpr::Pair(Box::new(e), Box::new(im)));
                }
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(other) => Err(self.err_here(ParseErrorKind::UnexpectedToken(format!(
                "{other} (expected a scalar expression)"
            )))),
            None => Err(self.err_here(ParseErrorKind::UnexpectedEof)),
        }
    }

    // ------------------------------------------------------------------
    // Templates
    // ------------------------------------------------------------------

    fn template(&mut self) -> Result<TemplateDef, ParseError> {
        self.expect(&TokenKind::LParen)?;
        self.expect(&TokenKind::Symbol("template".into()))?;
        let pattern = self.sexp()?;
        let condition = if self.peek_kind() == Some(&TokenKind::LBracket) {
            self.bump();
            let c = self.cond_or()?;
            self.expect(&TokenKind::RBracket)?;
            Some(c)
        } else {
            None
        };
        self.expect(&TokenKind::LParen)?;
        let mut body = Vec::new();
        loop {
            match self.peek_kind() {
                Some(TokenKind::RParen) => {
                    self.bump();
                    break;
                }
                Some(_) => body.push(self.template_stmt()?),
                None => return Err(self.err_here(ParseErrorKind::UnexpectedEof)),
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(TemplateDef {
            pattern,
            condition,
            body,
        })
    }

    fn template_stmt(&mut self) -> Result<TemplateStmt, ParseError> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Symbol(s)) if s == "do" => {
                self.bump();
                let var = match self.bump() {
                    Some(Token {
                        kind: TokenKind::Dollar(v),
                        ..
                    }) => v,
                    _ => {
                        return Err(self.err_here(ParseErrorKind::BadForm(
                            "do requires a $-loop variable".into(),
                        )))
                    }
                };
                self.expect(&TokenKind::Assign)?;
                let lo = self.texpr()?;
                self.expect(&TokenKind::Comma)?;
                let hi = self.texpr()?;
                Ok(TemplateStmt::Do { var, lo, hi })
            }
            Some(TokenKind::Symbol(s)) if s == "end" => {
                self.bump();
                // Fortran-style "end do" — but a bare `end` may also be
                // followed by a *new* loop (`do $i0 = ...`); only consume
                // the `do` when it does not start a loop header.
                if self.peek_kind() == Some(&TokenKind::Symbol("do".into()))
                    && !matches!(self.peek_at(1), Some(TokenKind::Dollar(_)))
                {
                    self.bump();
                }
                Ok(TemplateStmt::End)
            }
            Some(TokenKind::Symbol(s)) if s.ends_with('_') => {
                // Sub-formula call: A_( in, out, io, oo, is, os )
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                loop {
                    match self.peek_kind() {
                        Some(TokenKind::RParen) => {
                            self.bump();
                            break;
                        }
                        Some(TokenKind::Comma) => {
                            self.bump();
                        }
                        Some(_) => args.push(self.texpr()?),
                        None => return Err(self.err_here(ParseErrorKind::UnexpectedEof)),
                    }
                }
                if args.len() != 6 {
                    return Err(self.err_here(ParseErrorKind::BadForm(format!(
                        "sub-formula call {s} requires 6 arguments, got {}",
                        args.len()
                    ))));
                }
                Ok(TemplateStmt::Call { var: s, args })
            }
            Some(TokenKind::Dollar(_)) => {
                let lhs = self.template_lval()?;
                self.expect(&TokenKind::Assign)?;
                let rhs = self.texpr()?;
                Ok(TemplateStmt::Assign { lhs, rhs })
            }
            Some(other) => Err(self.err_here(ParseErrorKind::UnexpectedToken(format!(
                "{other} (expected a template statement)"
            )))),
            None => Err(self.err_here(ParseErrorKind::UnexpectedEof)),
        }
    }

    fn template_lval(&mut self) -> Result<TLval, ParseError> {
        let name = match self.bump() {
            Some(Token {
                kind: TokenKind::Dollar(v),
                ..
            }) => v,
            _ => return Err(self.err_here(ParseErrorKind::BadForm("expected a $-variable".into()))),
        };
        if self.peek_kind() == Some(&TokenKind::LParen) {
            self.bump();
            let idx = self.texpr()?;
            self.expect(&TokenKind::RParen)?;
            Ok(TLval::VecElem(name, Box::new(idx)))
        } else {
            Ok(TLval::Scalar(name))
        }
    }

    // Template expressions: freely spaced operators, precedence climbing.

    fn texpr(&mut self) -> Result<TExpr, ParseError> {
        let mut lhs = self.texpr_mul()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Plus) => TBinOp::Add,
                Some(TokenKind::Minus) => TBinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.texpr_mul()?;
            lhs = TExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn texpr_mul(&mut self) -> Result<TExpr, ParseError> {
        let mut lhs = self.texpr_primary()?;
        loop {
            let op = match self.peek_kind() {
                Some(TokenKind::Star) => TBinOp::Mul,
                Some(TokenKind::Slash) => TBinOp::Div,
                Some(TokenKind::Percent) => TBinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.texpr_primary()?;
            lhs = TExpr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn texpr_primary(&mut self) -> Result<TExpr, ParseError> {
        self.descend()?;
        let r = self.texpr_primary_inner();
        self.ascend();
        r
    }

    fn texpr_primary_inner(&mut self) -> Result<TExpr, ParseError> {
        match self.peek_kind().cloned() {
            Some(TokenKind::Int(v)) => {
                self.bump();
                Ok(TExpr::Int(v))
            }
            Some(TokenKind::Float(v)) => {
                self.bump();
                Ok(TExpr::Float(v))
            }
            Some(TokenKind::Minus) => {
                self.bump();
                let e = self.texpr_primary()?;
                Ok(TExpr::Un(TUnOp::Neg, Box::new(e)))
            }
            Some(TokenKind::Dollar(v)) => {
                self.bump();
                if self.peek_kind() == Some(&TokenKind::LParen) {
                    self.bump();
                    let idx = self.texpr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(TExpr::VecElem(v, Box::new(idx)))
                } else {
                    Ok(TExpr::Var(v))
                }
            }
            Some(TokenKind::Symbol(s)) if s.ends_with('_') => {
                self.bump();
                if self.peek_kind() == Some(&TokenKind::Dot) {
                    self.bump();
                    let prop = match self.bump() {
                        Some(Token {
                            kind: TokenKind::Symbol(p),
                            ..
                        }) => match p.as_str() {
                            "in_size" => SizeProp::InSize,
                            "out_size" => SizeProp::OutSize,
                            other => {
                                return Err(self.err_here(ParseErrorKind::BadForm(format!(
                                    "unknown property .{other}"
                                ))))
                            }
                        },
                        _ => {
                            return Err(self.err_here(ParseErrorKind::BadForm(
                                "expected a property name after '.'".into(),
                            )))
                        }
                    };
                    Ok(TExpr::Prop(s, prop))
                } else {
                    Ok(TExpr::PatVar(s))
                }
            }
            Some(TokenKind::Symbol(s)) if self.peek_at(1) == Some(&TokenKind::LParen) => {
                // Intrinsic invocation, e.g. W(n_ $r0).
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                loop {
                    match self.peek_kind() {
                        Some(TokenKind::RParen) => {
                            self.bump();
                            break;
                        }
                        Some(TokenKind::Comma) => {
                            self.bump();
                        }
                        Some(_) => args.push(self.texpr()?),
                        None => return Err(self.err_here(ParseErrorKind::UnexpectedEof)),
                    }
                }
                Ok(TExpr::Intrinsic(s, args))
            }
            Some(TokenKind::Symbol(s)) if s == "pi" => {
                self.bump();
                Ok(TExpr::Float(std::f64::consts::PI))
            }
            Some(TokenKind::LParen) => {
                self.bump();
                let e = self.texpr()?;
                if self.peek_kind() == Some(&TokenKind::Comma) {
                    self.bump();
                    let im = self.texpr()?;
                    self.expect(&TokenKind::RParen)?;
                    let fold = |e: &TExpr| -> Option<f64> {
                        match e {
                            TExpr::Int(v) => Some(*v as f64),
                            TExpr::Float(v) => Some(*v),
                            TExpr::Un(TUnOp::Neg, inner) => match **inner {
                                TExpr::Int(v) => Some(-(v as f64)),
                                TExpr::Float(v) => Some(-v),
                                _ => None,
                            },
                            _ => None,
                        }
                    };
                    match (fold(&e), fold(&im)) {
                        (Some(re), Some(imv)) => Ok(TExpr::Pair(re, imv)),
                        _ => Err(self.err_here(ParseErrorKind::BadForm(
                            "complex literal components must be numeric constants".into(),
                        ))),
                    }
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(e)
                }
            }
            Some(other) => Err(self.err_here(ParseErrorKind::UnexpectedToken(format!(
                "{other} (expected a template expression)"
            )))),
            None => Err(self.err_here(ParseErrorKind::UnexpectedEof)),
        }
    }

    // Template conditions.

    fn cond_or(&mut self) -> Result<CondExpr, ParseError> {
        let mut lhs = self.cond_and()?;
        while self.peek_kind() == Some(&TokenKind::OrOr) {
            self.bump();
            let rhs = self.cond_and()?;
            lhs = CondExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<CondExpr, ParseError> {
        let mut lhs = self.cond_unary()?;
        while self.peek_kind() == Some(&TokenKind::AndAnd) {
            self.bump();
            let rhs = self.cond_unary()?;
            lhs = CondExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_unary(&mut self) -> Result<CondExpr, ParseError> {
        self.descend()?;
        let r = self.cond_unary_inner();
        self.ascend();
        r
    }

    fn cond_unary_inner(&mut self) -> Result<CondExpr, ParseError> {
        if self.peek_kind() == Some(&TokenKind::Not) {
            self.bump();
            let inner = self.cond_unary()?;
            return Ok(CondExpr::Not(Box::new(inner)));
        }
        if self.peek_kind() == Some(&TokenKind::LParen) {
            // Could be a parenthesized boolean group or a parenthesized
            // arithmetic expression starting a comparison; try the boolean
            // reading first and fall back on failure.
            let save = self.pos;
            self.bump();
            if let Ok(inner) = self.cond_or() {
                if self.peek_kind() == Some(&TokenKind::RParen) {
                    self.bump();
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        self.cond_cmp()
    }

    fn cond_cmp(&mut self) -> Result<CondExpr, ParseError> {
        let lhs = self.texpr()?;
        let op = match self.peek_kind() {
            Some(TokenKind::EqEq) => CmpOp::Eq,
            Some(TokenKind::NotEq) => CmpOp::Ne,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            _ => {
                return Err(self.err_here(ParseErrorKind::BadForm(
                    "template condition requires a comparison".into(),
                )))
            }
        };
        self.bump();
        let rhs = self.texpr()?;
        Ok(CondExpr::Cmp(op, lhs, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_fft16_program() {
        let src = "\
(define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))
#subname fft16
(compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.items.len(), 3);
        match &p.items[0] {
            Item::Define { name, body } => {
                assert_eq!(name, "F4");
                assert_eq!(body.head(), Some("compose"));
            }
            other => panic!("expected define, got {other:?}"),
        }
        match &p.items[2] {
            Item::Formula { sexp, directives } => {
                assert_eq!(directives.subname.as_deref(), Some("fft16"));
                assert_eq!(sexp.head(), Some("compose"));
            }
            other => panic!("expected formula, got {other:?}"),
        }
    }

    #[test]
    fn subname_is_consumed_by_first_formula() {
        let p = parse_program("#subname one\n(F 2)\n(F 4)").unwrap();
        let subnames: Vec<Option<String>> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Formula { directives, .. } => Some(directives.subname.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(subnames, vec![Some("one".into()), None]);
    }

    #[test]
    fn diagonal_with_negative_elements() {
        let s = parse_formula("(diagonal (1 -1 1 -1))").unwrap();
        let items = s.as_list().unwrap();
        assert_eq!(items.len(), 2);
        let elems = items[1].as_list().unwrap();
        assert_eq!(
            elems
                .iter()
                .map(|e| e.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, -1, 1, -1]
        );
    }

    #[test]
    fn adjacent_minus_is_subtraction() {
        let s = parse_formula("(diagonal (1-1))").unwrap();
        let elems = s.as_list().unwrap()[1].as_list().unwrap();
        assert_eq!(elems.len(), 1);
        match &elems[0] {
            Sexp::Scalar(e) => assert_eq!(e.eval().unwrap().re, 0.0),
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn complex_pair_literal() {
        let s = parse_formula("(diagonal ((0.7,-0.7) (0,-1)))").unwrap();
        let elems = s.as_list().unwrap()[1].as_list().unwrap();
        assert_eq!(elems.len(), 2);
        match &elems[0] {
            Sexp::Scalar(e) => {
                let v = e.eval().unwrap();
                assert_eq!((v.re, v.im), (0.7, -0.7));
            }
            other => panic!("expected scalar pair, got {other:?}"),
        }
    }

    #[test]
    fn scalar_function_call() {
        let s = parse_formula("(diagonal (sqrt(2) cos(2*pi/3.0)))").unwrap();
        let elems = s.as_list().unwrap()[1].as_list().unwrap();
        match &elems[1] {
            Sexp::Scalar(e) => assert!((e.eval().unwrap().re + 0.5).abs() < 1e-15),
            other => panic!("expected scalar, got {other:?}"),
        }
    }

    #[test]
    fn parses_f_template_from_paper() {
        let src = "\
(template (F n_) [n_>0]
  (do $i0 = 0,n_-1
       $out($i0) = 0
       do $i1 = 0,n_-1
            $r0 = $i0 * $i1
            $f0 = W(n_ $r0) * $in($i1)
            $out($i0) = $out($i0) + $f0
       end
   end))
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.items.len(), 1);
        match &p.items[0] {
            Item::Template(t) => {
                assert_eq!(t.pattern.to_string(), "(F n_)");
                assert!(t.condition.is_some());
                assert_eq!(t.body.len(), 8);
                assert!(matches!(t.body[0], TemplateStmt::Do { .. }));
                assert!(matches!(t.body[7], TemplateStmt::End));
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn end_followed_by_new_do_loop() {
        // `end` closing one loop directly followed by another `do` must
        // not be mis-read as "end do".
        let src = "\
(template (pad m_ n_) [m_>n_]
  (do $i0 = 0,n_-1
        $out($i0) = $in($i0)
   end
   do $i0 = n_,m_-1
        $out($i0) = 0
   end))
";
        let p = parse_program(src).unwrap();
        match &p.items[0] {
            Item::Template(t) => {
                let dos = t
                    .body
                    .iter()
                    .filter(|s| matches!(s, TemplateStmt::Do { .. }))
                    .count();
                let ends = t
                    .body
                    .iter()
                    .filter(|s| matches!(s, TemplateStmt::End))
                    .count();
                assert_eq!((dos, ends), (2, 2));
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn parses_compose_template_with_calls() {
        let src = "\
(template (compose A_ B_) [A_.in_size == B_.out_size]
  ( B_( $in, $t0, 0, 0, 1, 1 )
    A_( $t0, $out, 0, 0, 1, 1 )))
";
        let p = parse_program(src).unwrap();
        match &p.items[0] {
            Item::Template(t) => {
                assert_eq!(t.body.len(), 2);
                match &t.body[0] {
                    TemplateStmt::Call { var, args } => {
                        assert_eq!(var, "B_");
                        assert_eq!(args.len(), 6);
                        assert_eq!(args[0], TExpr::Var("in".into()));
                        assert_eq!(args[1], TExpr::Var("t0".into()));
                    }
                    other => panic!("expected call, got {other:?}"),
                }
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn template_condition_connectives() {
        let src = "(template (L mn_ n_) [mn_%n_==0 && !(n_==mn_) || mn_>=4] ($f0 = 0))";
        let p = parse_program(src).unwrap();
        match &p.items[0] {
            Item::Template(t) => {
                assert!(matches!(t.condition, Some(CondExpr::Or(_, _))));
            }
            other => panic!("expected template, got {other:?}"),
        }
    }

    #[test]
    fn directive_state_threading() {
        let src = "#datatype real\n#unroll on\n(F 2)\n#unroll off\n(F 4)";
        let p = parse_program(src).unwrap();
        let states: Vec<Unroll> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Formula { directives, .. } => Some(directives.unroll),
                _ => None,
            })
            .collect();
        assert_eq!(states, vec![Unroll::On, Unroll::Off]);
    }

    #[test]
    fn bad_directive_rejected() {
        assert!(parse_program("#unroll sideways\n(F 2)").is_err());
        assert!(parse_program("#frobnicate on\n(F 2)").is_err());
    }

    #[test]
    fn call_arity_checked() {
        let src = "(template (compose A_ B_) ( B_( $in, $t0, 0, 0, 1 ) ))";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn unbalanced_parens_rejected() {
        assert!(parse_formula("(compose (F 2)").is_err());
        assert!(parse_formula("(F 2))").is_err());
    }

    #[test]
    fn malformed_sexprs_error_not_panic() {
        // Every one of these once had a path to a panic or hit unwrap()s
        // inside the parser; they must all come back as ParseErrors.
        for src in [
            "",
            "(",
            ")",
            "((",
            "(F",
            "(F 2",
            "(diagonal (1 -",
            "(,)",
            "(1,",
            "(1,2",
            "sqrt(",
            "cos(2*",
            "(define",
            "(compose (F 2) (T 4",
        ] {
            assert!(parse_formula(src).is_err(), "{src:?}");
        }
    }

    #[test]
    fn malformed_programs_error_not_panic() {
        for src in [
            "(define)",
            "(define 3 (F 2))",
            "(define F4)",
            "(template (F n_) [n_>0]",
            "(template (F n_) (do $i0 = 0))",
            "(template (F n_) (do i0 = 0,1 end))",
            "#subname",
            "#subname bad-name",
            "#unroll",
            "#",
            "(F 2))",
            "(template (compose A_ B_) ( B_( $in ))",
        ] {
            assert!(parse_program(src).is_err(), "{src:?}");
        }
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        // 200k open parens would blow the stack without the depth guard.
        let depth = 200_000;
        let src = format!("{}(F 2){}", "(compose ".repeat(depth), ")".repeat(depth));
        let err = parse_formula(&src).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::LimitExceeded(_)),
            "{err}"
        );
    }

    #[test]
    fn depth_limit_is_configurable() {
        let src = "(compose (tensor (F 2) (I 2)) (L 4 2))";
        assert!(parse_formula_with_depth(src, 64).is_ok());
        let err = parse_formula_with_depth(src, 2).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::LimitExceeded(_)));
    }

    #[test]
    fn normal_formulas_stay_under_default_depth() {
        // A realistically deep search-produced formula parses fine.
        let mut src = String::from("(F 2)");
        for _ in 0..100 {
            src = format!("(compose {src} (I 2))");
        }
        assert!(parse_formula(&src).is_ok());
    }

    #[test]
    fn deep_scalar_nesting_is_limited() {
        let depth = 200_000;
        let src = format!("(diagonal ({}1{}))", "(".repeat(depth), ")".repeat(depth));
        let err = parse_formula(&src).unwrap_err();
        assert!(
            matches!(err.kind, ParseErrorKind::LimitExceeded(_)),
            "{err}"
        );
    }

    #[test]
    fn matrix_rows_parse() {
        let s = parse_formula("(matrix (1 0) (0 1))").unwrap();
        let items = s.as_list().unwrap();
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn permutation_parses() {
        let s = parse_formula("(permutation (1 3 2 4))").unwrap();
        assert_eq!(s.head(), Some("permutation"));
    }
}
