#![warn(missing_docs)]

//! Front end for the SPL language (lexer, parser, AST).
//!
//! SPL programs are sequences of *items*: compiler directives
//! (`#subname`, `#unroll`, `#datatype`, `#codetype`, `#language`),
//! `define` name bindings, `template` definitions, and formulas written in
//! Cambridge Polish notation:
//!
//! ```text
//! (define F4 (compose (tensor (F 2) (I 2)) (T 4 2) (tensor (I 2) (F 2)) (L 4 2)))
//! #subname fft16
//! (compose (tensor F4 (I 4)) (T 16 4) (tensor (I 4) F4) (L 16 4))
//! ```
//!
//! This crate owns *all* concrete syntax, including the template-body
//! mini-language (Fortran-style `do` loops and four-tuple assignments over
//! `$`-variables) and the C-style boolean template conditions. Semantic
//! analysis lives downstream: formulas in `spl-formula`, template expansion
//! in `spl-templates`.
//!
//! # Examples
//!
//! ```
//! use spl_frontend::{parse_program, ast::Item};
//!
//! let prog = parse_program("(compose (F 2) (I 2))").unwrap();
//! assert_eq!(prog.items.len(), 1);
//! assert!(matches!(prog.items[0], Item::Formula { .. }));
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod scalar;
pub mod sexp;
pub mod token;

pub use ast::{Directive, Item, Program, TemplateDef};
pub use error::{ParseError, ParseErrorKind};
pub use parser::{
    parse_formula, parse_formula_with_depth, parse_program, parse_program_with_depth,
    DEFAULT_MAX_DEPTH,
};
pub use sexp::Sexp;
